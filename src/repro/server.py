"""The asyncio serving front end: JSON-over-HTTP search for one `Soda`.

``repro serve`` answers the paper's deployment setting — SODA inside
the bank serving "heavy traffic" of interactive keyword searches —
with a deliberately dependency-free HTTP/1.1 server:

* ``GET/POST /search`` — run a search (``q``/``query``, ``limit``,
  ``execute``, ``trace`` parameters), returning the stable
  :meth:`~repro.core.pipeline.SearchResult.to_dict` wire shape;
* ``POST /sql`` — execute one SQL statement (body = the statement),
  returning columns/rows/rowcount;
* ``GET /metrics`` — the process metrics registry (``?format=
  prometheus`` for text exposition);
* ``GET /healthz`` — liveness plus engine configuration.

The asyncio event loop only parses requests and shuttles bytes; every
engine call runs on a thread pool (``workers`` threads), which is
exactly what the concurrent storage layer is for: SELECTs and searches
pin frozen-segment snapshots and proceed without blocking, repeated
query texts hit the engine-wide result cache, and DML statements
serialize on one writer lock so the single-writer storage model holds.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter
from urllib.parse import parse_qs, urlsplit

from repro.core.pipeline import _json_value
from repro.core.serving import SearchSession
from repro.core.soda import Soda
from repro.errors import SqlError
from repro.obs.metrics import registry as _metrics_registry
from repro.sqlengine.ast_nodes import Select, Union
from repro.sqlengine.parser import parse_sql

__all__ = ["SodaServer"]

#: request bodies larger than this are rejected (a service guard, not
#: a protocol limit)
MAX_BODY_BYTES = 1 << 20

_METRICS = _metrics_registry()
_HTTP_REQUESTS = _METRICS.counter("serving.http.requests")
_HTTP_ERRORS = _METRICS.counter("serving.http.errors")
_HTTP_SECONDS = _METRICS.histogram("serving.http.seconds")

_TRUE_WORDS = ("1", "true", "yes", "on")


class _HttpError(Exception):
    """An error that maps onto one HTTP status + JSON body."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class SodaServer:
    """Serve one warm `Soda` engine over HTTP (asyncio front end).

    ``port=0`` binds an ephemeral port; :attr:`port` reports the real
    one once the server is listening.  ``workers`` bounds the engine
    thread pool — the number of searches/SQL statements in flight at
    once.  Use :meth:`run` to serve blocking (the CLI), or
    :meth:`start_background` / :meth:`stop` from tests and benchmarks.
    """

    def __init__(
        self,
        soda: Soda,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 4,
        default_limit: "int | None" = 5,
    ) -> None:
        self.soda = soda
        self.host = host
        self.port = port
        self.default_limit = default_limit
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, workers), thread_name_prefix="soda-http"
        )
        #: DML statements serialize here (the storage model is
        #: single-writer; readers never take this lock)
        self._write_lock = threading.Lock()
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._stopping: "asyncio.Event | None" = None
        self._started = threading.Event()
        self._thread: "threading.Thread | None" = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Serve until interrupted (blocking; the CLI entry point)."""
        try:
            asyncio.run(self._serve())
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass

    def start_background(self) -> "SodaServer":
        """Serve on a daemon thread; returns once the port is bound."""
        self._thread = threading.Thread(
            target=self.run, name="soda-server", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):  # pragma: no cover - hang guard
            raise RuntimeError("server failed to start within 30s")
        return self

    def stop(self) -> None:
        """Shut the server down from any thread (idempotent)."""
        loop, stopping = self._loop, self._stopping
        if loop is not None and stopping is not None:
            try:
                loop.call_soon_threadsafe(stopping.set)
            except RuntimeError:  # pragma: no cover - loop already closed
                pass
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = server.sockets[0].getsockname()[1]
        self._started.set()
        try:
            async with server:
                await self._stopping.wait()
        finally:
            self._started.clear()
            self._pool.shutdown(wait=False)

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, body, keep_alive = request
                status, payload = await self._dispatch(method, target, body)
                blob = json.dumps(payload, sort_keys=True).encode()
                head = (
                    f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(blob)}\r\n"
                    f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
                    "\r\n"
                ).encode()
                writer.write(head + blob)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_request(self, reader):
        """Parse one request; None on a cleanly closed connection."""
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise asyncio.IncompleteReadError(request_line, None)
        method, target, version = parts
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, __, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise asyncio.IncompleteReadError(b"", None)
        body = await reader.readexactly(length) if length else b""
        keep_alive = headers.get("connection", "").lower() != "close" and (
            version.upper() != "HTTP/1.0"
        )
        return method.upper(), target, body, keep_alive

    async def _dispatch(self, method: str, target: str, body: bytes):
        started = perf_counter()
        if _METRICS.enabled:
            _HTTP_REQUESTS.inc()
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        params = {
            key: values[-1] for key, values in parse_qs(split.query).items()
        }
        try:
            if path == "/healthz":
                return 200, self._healthz()
            if path == "/metrics" and method == "GET":
                return 200, self._metrics_payload(params)
            if path == "/search" and method in ("GET", "POST"):
                if method == "POST" and body:
                    try:
                        posted = json.loads(body.decode())
                    except (ValueError, UnicodeDecodeError):
                        raise _HttpError(400, "POST /search expects JSON")
                    if not isinstance(posted, dict):
                        raise _HttpError(400, "POST /search expects an object")
                    params = {**posted, **params}
                handler = self._handle_search
            elif path == "/sql" and method == "POST":
                params["sql"] = body.decode(errors="replace")
                handler = self._handle_sql
            else:
                raise _HttpError(404, f"no route for {method} {split.path}")
            # engine work runs on the pool: the event loop stays free to
            # accept and parse other requests while searches execute
            loop = asyncio.get_running_loop()
            payload = await loop.run_in_executor(
                self._pool, handler, params
            )
            return 200, payload
        except _HttpError as exc:
            if _METRICS.enabled:
                _HTTP_ERRORS.inc()
            return exc.status, {"error": str(exc)}
        except SqlError as exc:
            if _METRICS.enabled:
                _HTTP_ERRORS.inc()
            return 400, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - the server must answer
            if _METRICS.enabled:
                _HTTP_ERRORS.inc()
            return 500, {"error": f"{type(exc).__name__}: {exc}"}
        finally:
            if _METRICS.enabled:
                _HTTP_SECONDS.observe(perf_counter() - started)

    # ------------------------------------------------------------------
    # handlers (run on the worker pool)
    # ------------------------------------------------------------------
    @staticmethod
    def _flag(params: dict, name: str, default: bool) -> bool:
        value = params.get(name)
        if value is None:
            return default
        if isinstance(value, bool):
            return value
        return str(value).lower() in _TRUE_WORDS

    def _handle_search(self, params: dict) -> dict:
        text = params.get("q") or params.get("query")
        if not text or not isinstance(text, str):
            raise _HttpError(400, "missing query parameter 'q'")
        limit = params.get("limit", self.default_limit)
        if limit is not None:
            try:
                limit = int(limit)
            except (TypeError, ValueError):
                raise _HttpError(400, f"bad limit {limit!r}")
            if limit < 0:
                raise _HttpError(400, "limit must be >= 0")
        execute = self._flag(params, "execute", True)
        if self._flag(params, "trace", False):
            # traced requests bypass the result cache (the trace is
            # per-request state) but still run concurrently: the active
            # tracer is thread-local
            result = self.soda.search(text, execute=execute, trace=True)
            return result.to_dict(limit=limit)
        session = SearchSession(self.soda, execute=execute, limit=limit)
        return session.search(text).to_dict()

    def _handle_sql(self, params: dict) -> dict:
        sql = (params.get("sql") or "").strip()
        if not sql:
            raise _HttpError(400, "POST /sql expects the statement as body")
        statement = parse_sql(sql)  # surface syntax errors before locking
        database = self.soda.warehouse.database
        if isinstance(statement, (Select, Union)):
            result = database.execute(sql)
        else:
            with self._write_lock:
                result = database.execute(sql)
        return {
            "columns": list(result.columns),
            "rows": [
                [_json_value(value) for value in row] for row in result.rows
            ],
            "rowcount": result.rowcount,
        }

    def _metrics_payload(self, params: dict) -> dict:
        metrics = self.soda.metrics()
        if params.get("format") == "prometheus":
            return {"prometheus": _metrics_registry().render_prometheus()}
        return metrics

    def _healthz(self) -> dict:
        database = self.soda.warehouse.database
        return {
            "status": "ok",
            "engine_config": {
                key: value
                for key, value in database.config.as_dict().items()
            },
            "tables": len(database.table_names()),
        }


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    500: "Internal Server Error",
}
