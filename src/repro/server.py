"""The asyncio serving front end: JSON-over-HTTP search for one `Soda`.

``repro serve`` answers the paper's deployment setting — SODA inside
the bank serving "heavy traffic" of interactive keyword searches —
with a deliberately dependency-free HTTP/1.1 server:

* ``GET/POST /search`` — run a search (``q``/``query``, ``limit``,
  ``execute``, ``trace``, ``timeout_ms`` parameters), returning the
  stable :meth:`~repro.core.pipeline.SearchResult.to_dict` wire shape;
* ``POST /sql`` — execute one SQL statement (body = the statement),
  returning columns/rows/rowcount;
* ``GET /metrics`` — the process metrics registry (``?format=
  prometheus`` for text exposition);
* ``GET /healthz`` — liveness, resilience state (``ok`` | ``degraded``
  | ``open``) and engine configuration.

The asyncio event loop only parses requests and shuttles bytes; every
engine call runs on a thread pool (``workers`` threads), which is
exactly what the concurrent storage layer is for: SELECTs and searches
pin frozen-segment snapshots and proceed without blocking, repeated
query texts hit the engine-wide result cache, and DML statements
serialize on one writer lock so the single-writer storage model holds.

Resilience (PR 10) — the server degrades instead of falling over:

* **request deadlines** — ``?timeout_ms=`` (or the engine's
  ``EngineConfig(request_timeout_ms=)`` default) budgets each request,
  including its queue wait; the engine cancels cooperatively at
  pipeline/batch/morsel boundaries and the client gets a structured
  503 (``kind: deadline_exceeded``) while the engine stays consistent;
* **admission control + load shedding** — at most ``max_inflight``
  engine calls run at once, at most ``queue_depth`` wait (for at most
  ``queue_timeout_ms``); everything beyond that is shed immediately
  with 429 + ``Retry-After`` instead of queueing unboundedly;
* **circuit breaker** — consecutive engine failures trip fast-fail
  503s (``kind: circuit_open``) for a cooldown, then half-open probes
  feel the engine out; state shows in ``/healthz`` and
  ``serving.breaker.*`` metrics;
* **per-connection limits** — request line / header / body sizes are
  bounded (413) and every read carries a timeout (408), so a stalled
  (slowloris) client cannot hold a connection slot forever;
* **graceful drain** — ``stop()`` / SIGTERM stops accepting, lets
  in-flight requests finish up to ``drain_timeout_s``, then cancels
  cooperatively; ``stop()`` is idempotent and thread-safe;
* **background maintenance** — an optional supervised
  :class:`~repro.resilience.maintenance.MaintenanceRunner` (stats
  refresh, index-snapshot saves) starts and stops with the server.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import math
import threading
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter
from urllib.parse import parse_qs, urlsplit

from repro.core.pipeline import _json_value
from repro.core.serving import SearchSession
from repro.core.soda import Soda
from repro.errors import SqlError
from repro.obs.metrics import registry as _metrics_registry
from repro.resilience.admission import AdmissionController, LoadShedError
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.deadline import (
    Deadline,
    DeadlineExceeded,
    deadline_scope,
)
from repro.sqlengine.ast_nodes import Select, Union
from repro.sqlengine.parser import parse_sql

__all__ = ["SodaServer"]

#: request bodies larger than this are rejected with 413 (a service
#: guard, not a protocol limit)
MAX_BODY_BYTES = 1 << 20

#: the request line is bounded separately (long URLs are client bugs)
MAX_REQUEST_LINE_BYTES = 8192

#: total header bytes / header count a request may carry
MAX_HEADER_BYTES = 16384
MAX_HEADER_COUNT = 100

_METRICS = _metrics_registry()
_HTTP_REQUESTS = _METRICS.counter("serving.http.requests")
_HTTP_ERRORS = _METRICS.counter("serving.http.errors")
_HTTP_SECONDS = _METRICS.histogram("serving.http.seconds")
_DEADLINES_EXCEEDED = _METRICS.counter("serving.deadline_exceeded")
_READ_TIMEOUTS = _METRICS.counter("serving.read_timeouts")
_OVERSIZE_REJECTED = _METRICS.counter("serving.oversize_rejected")

_TRUE_WORDS = ("1", "true", "yes", "on")


class _HttpError(Exception):
    """An error that maps onto one HTTP status + structured JSON body.

    ``kind`` is the machine-readable failure class carried in the body
    (the human text stays in ``error``); ``retry_after_s`` adds a
    ``Retry-After`` header; ``extra`` merges additional body fields.
    """

    def __init__(
        self,
        status: int,
        message: str,
        kind: str = "bad_request",
        retry_after_s: "float | None" = None,
        extra: "dict | None" = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.kind = kind
        self.retry_after_s = retry_after_s
        self.extra = extra or {}

    def payload(self) -> dict:
        body = {"error": str(self), "kind": self.kind}
        body.update(self.extra)
        return body

    def headers(self) -> dict:
        if self.retry_after_s is None:
            return {}
        return {"Retry-After": f"{max(0.0, self.retry_after_s):.0f}" or "0"}


class SodaServer:
    """Serve one warm `Soda` engine over HTTP (asyncio front end).

    ``port=0`` binds an ephemeral port; :attr:`port` reports the real
    one once the server is listening.  ``workers`` bounds the engine
    thread pool; ``max_inflight`` (default: ``workers``) bounds the
    engine calls admitted at once, ``queue_depth``/``queue_timeout_ms``
    the bounded admission queue behind them.  Use :meth:`run` to serve
    blocking (the CLI), or :meth:`start_background` / :meth:`stop` from
    tests and benchmarks.
    """

    def __init__(
        self,
        soda: Soda,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 4,
        default_limit: "int | None" = 5,
        request_timeout_ms: "float | None" = None,
        max_inflight: "int | None" = None,
        queue_depth: int = 16,
        queue_timeout_ms: float = 1000.0,
        read_timeout_s: float = 10.0,
        drain_timeout_s: float = 10.0,
        breaker: "CircuitBreaker | None" = None,
        maintenance=None,
        faults=None,
    ) -> None:
        self.soda = soda
        self.host = host
        self.port = port
        self.default_limit = default_limit
        #: per-request time budget when the client sends no
        #: ``?timeout_ms=``; falls back to the engine config's
        #: ``request_timeout_ms`` when None
        if request_timeout_ms is None:
            request_timeout_ms = (
                soda.warehouse.database.config.request_timeout_ms
            )
        self.request_timeout_ms = request_timeout_ms
        self.workers = max(1, workers)
        self.max_inflight = (
            self.workers if max_inflight is None else max(1, max_inflight)
        )
        self.queue_depth = queue_depth
        self.queue_timeout_ms = queue_timeout_ms
        self.read_timeout_s = read_timeout_s
        self.drain_timeout_s = drain_timeout_s
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        #: optional supervised MaintenanceRunner; starts/stops with the
        #: server so maintenance never outlives (or predates) serving
        self.maintenance = maintenance
        #: optional ServingFaultInjector consulted before engine calls
        self.faults = faults
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="soda-http"
        )
        #: DML statements serialize here (the storage model is
        #: single-writer; readers never take this lock)
        self._write_lock = threading.Lock()
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._stopping: "asyncio.Event | None" = None
        self._started = threading.Event()
        self._thread: "threading.Thread | None" = None
        #: guards thread/loop handoff between start_background and stop
        self._lifecycle = threading.Lock()
        self._admission: "AdmissionController | None" = None
        self._draining = False
        self._conn_tasks: set = set()
        self._busy_tasks: set = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Serve until interrupted (blocking; the CLI entry point)."""
        try:
            asyncio.run(self._serve())
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass

    def start_background(self) -> "SodaServer":
        """Serve on a daemon thread; returns once the port is bound.

        Idempotent: calling it on an already-running server returns the
        server untouched (one listener, one loop).
        """
        with self._lifecycle:
            if self._thread is not None and self._thread.is_alive():
                return self
            self._started.clear()
            self._thread = threading.Thread(
                target=self.run, name="soda-server", daemon=True
            )
            self._thread.start()
        if not self._started.wait(timeout=30):  # pragma: no cover - hang guard
            raise RuntimeError("server failed to start within 30s")
        return self

    def stop(self) -> dict:
        """Gracefully drain and stop from any thread (idempotent).

        Safe on a never-started or already-stopped server (a no-op),
        and safe to call concurrently with :meth:`start_background` or
        another :meth:`stop`.  Triggers the drain sequence — stop
        accepting, let in-flight requests finish for up to
        ``drain_timeout_s``, then cancel cooperatively — and joins the
        serving thread with a timeout.  Returns a report::

            {"stopped": bool, "stuck_threads": [thread names]}
        """
        with self._lifecycle:
            thread = self._thread
        if thread is not None and self._loop is None:
            # racing a start_background that hasn't bound yet: give the
            # loop a moment to exist so the stop signal has a target
            self._started.wait(timeout=5)
        loop, stopping = self._loop, self._stopping
        if loop is not None and stopping is not None:
            try:
                loop.call_soon_threadsafe(stopping.set)
            except RuntimeError:  # loop already closed
                pass
        stuck: list = []
        if thread is not None:
            thread.join(timeout=self.drain_timeout_s + 30)
            if thread.is_alive():  # pragma: no cover - hang reporting
                stuck.append(thread.name)
            else:
                with self._lifecycle:
                    if self._thread is thread:
                        self._thread = None
        return {"stopped": not stuck, "stuck_threads": stuck}

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        self._draining = False
        # fresh per serve: the previous serve's finally shut the pool
        # down, and a restarted server must not submit to a dead
        # executor (threads spawn lazily, so replacing an unused pool
        # costs nothing)
        self._pool.shutdown(wait=False)
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="soda-http"
        )
        # fresh per serve: asyncio primitives bind to the running loop
        self._admission = AdmissionController(
            max_concurrent=self.max_inflight,
            queue_depth=self.queue_depth,
            queue_timeout_ms=self.queue_timeout_ms,
        )
        server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = server.sockets[0].getsockname()[1]
        if self.maintenance is not None:
            self.maintenance.start()
        self._started.set()
        try:
            await self._stopping.wait()
            await self._drain(server)
        finally:
            server.close()
            if self.maintenance is not None:
                self.maintenance.stop(timeout=5)
            self._started.clear()
            self._pool.shutdown(wait=False)
            self._loop = None
            self._stopping = None

    async def _drain(self, server) -> None:
        """Stop accepting; finish in-flight work; cancel the rest."""
        self._draining = True
        server.close()
        # idle keep-alive connections are parked in _read_request —
        # nothing in flight, cancel them immediately
        for task in list(self._conn_tasks):
            if task not in self._busy_tasks:
                task.cancel()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.drain_timeout_s
        while self._busy_tasks and loop.time() < deadline:
            await asyncio.sleep(0.02)
        # past the drain deadline: cancel cooperatively (the await is
        # cancelled and the connection closed; a compute already on the
        # engine pool finishes on its thread, its result discarded)
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(
                *list(self._conn_tasks), return_exceptions=True
            )

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as exc:
                    if _METRICS.enabled:
                        _HTTP_ERRORS.inc()
                    await self._send(
                        writer, exc.status, exc.payload(), False,
                        exc.headers(),
                    )
                    break
                if request is None:
                    break
                method, target, body, keep_alive = request
                if self._draining:
                    await self._send(
                        writer, 503,
                        {"error": "server is draining", "kind": "draining"},
                        False, {"Retry-After": "1"},
                    )
                    break
                self._busy_tasks.add(task)
                try:
                    status, payload, headers = await self._dispatch(
                        method, target, body
                    )
                finally:
                    self._busy_tasks.discard(task)
                keep_alive = keep_alive and not self._draining
                await self._send(writer, status, payload, keep_alive, headers)
                if not keep_alive:
                    break
        except asyncio.CancelledError:
            pass  # drain cancelled the connection; just close it
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            self._conn_tasks.discard(task)
            self._busy_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _send(
        self, writer, status: int, payload: dict, keep_alive: bool,
        extra_headers: "dict | None" = None,
    ) -> None:
        blob = json.dumps(payload, sort_keys=True).encode()
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
            "Content-Type: application/json",
            f"Content-Length: {len(blob)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write("\r\n".join(lines).encode() + b"\r\n\r\n" + blob)
        await writer.drain()

    async def _read_line(self, reader, what: str) -> bytes:
        """One CRLF line under the read timeout and the stream limit."""
        try:
            return await asyncio.wait_for(
                reader.readline(), timeout=self.read_timeout_s
            )
        except asyncio.TimeoutError:
            if _METRICS.enabled:
                _READ_TIMEOUTS.inc()
            raise _HttpError(
                408,
                f"timed out after {self.read_timeout_s:g}s waiting for "
                f"{what} (stalled client)",
                kind="read_timeout",
            ) from None
        except ValueError:  # stream-limit overrun: a line with no end
            if _METRICS.enabled:
                _OVERSIZE_REJECTED.inc()
            raise _HttpError(
                413, f"{what} too large", kind="oversize"
            ) from None

    async def _read_request(self, reader):
        """Parse one request; None on a cleanly closed connection.

        Raises :class:`_HttpError` — 400 for malformed requests, 408
        for stalled reads, 413 for oversized request line / headers /
        body — so one slow or hostile client degrades into one error
        response instead of a held connection slot.
        """
        try:
            request_line = await self._read_line(reader, "the request line")
        except ConnectionError:
            return None
        if not request_line:
            return None
        if len(request_line) > MAX_REQUEST_LINE_BYTES:
            if _METRICS.enabled:
                _OVERSIZE_REJECTED.inc()
            raise _HttpError(
                413,
                f"request line exceeds {MAX_REQUEST_LINE_BYTES} bytes",
                kind="oversize",
            )
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise _HttpError(
                400, "malformed request line", kind="malformed_request"
            )
        method, target, version = parts
        headers = {}
        header_bytes = 0
        while True:
            line = await self._read_line(reader, "request headers")
            if line in (b"\r\n", b"\n", b""):
                break
            header_bytes += len(line)
            if (
                len(headers) >= MAX_HEADER_COUNT
                or header_bytes > MAX_HEADER_BYTES
            ):
                if _METRICS.enabled:
                    _OVERSIZE_REJECTED.inc()
                raise _HttpError(
                    413,
                    f"headers exceed {MAX_HEADER_COUNT} fields / "
                    f"{MAX_HEADER_BYTES} bytes",
                    kind="oversize",
                )
            name, __, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise _HttpError(
                400, "bad Content-Length header", kind="malformed_request"
            ) from None
        if length > MAX_BODY_BYTES:
            if _METRICS.enabled:
                _OVERSIZE_REJECTED.inc()
            raise _HttpError(
                413,
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit",
                kind="oversize",
            )
        if length:
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length), timeout=self.read_timeout_s
                )
            except asyncio.TimeoutError:
                if _METRICS.enabled:
                    _READ_TIMEOUTS.inc()
                raise _HttpError(
                    408,
                    f"timed out after {self.read_timeout_s:g}s reading the "
                    f"request body (stalled client)",
                    kind="read_timeout",
                ) from None
        else:
            body = b""
        keep_alive = headers.get("connection", "").lower() != "close" and (
            version.upper() != "HTTP/1.0"
        )
        return method.upper(), target, body, keep_alive

    async def _dispatch(self, method: str, target: str, body: bytes):
        started = perf_counter()
        if _METRICS.enabled:
            _HTTP_REQUESTS.inc()
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        params = {
            key: values[-1] for key, values in parse_qs(split.query).items()
        }
        headers: dict = {}
        try:
            if path == "/healthz":
                return 200, self._healthz(), headers
            if path == "/metrics" and method == "GET":
                return 200, self._metrics_payload(params), headers
            if path == "/search" and method in ("GET", "POST"):
                if method == "POST" and body:
                    try:
                        posted = json.loads(body.decode())
                    except (ValueError, UnicodeDecodeError):
                        raise _HttpError(400, "POST /search expects JSON")
                    if not isinstance(posted, dict):
                        raise _HttpError(400, "POST /search expects an object")
                    params = {**posted, **params}
                handler, what = self._handle_search, "search"
            elif path == "/sql" and method == "POST":
                params["sql"] = body.decode(errors="replace")
                handler, what = self._handle_sql, "sql"
            else:
                raise _HttpError(
                    404, f"no route for {method} {split.path}",
                    kind="not_found",
                )
            payload = await self._run_engine_route(handler, params, what)
            return 200, payload, headers
        except _HttpError as exc:
            if _METRICS.enabled:
                _HTTP_ERRORS.inc()
            return exc.status, exc.payload(), exc.headers()
        except LoadShedError as exc:
            if _METRICS.enabled:
                _HTTP_ERRORS.inc()
            return (
                429,
                {
                    "error": str(exc),
                    "kind": "load_shed",
                    "reason": exc.reason,
                    "retry_after_s": exc.retry_after_s,
                },
                {"Retry-After": f"{max(1, round(exc.retry_after_s))}"},
            )
        except DeadlineExceeded as exc:
            if _METRICS.enabled:
                _HTTP_ERRORS.inc()
                _DEADLINES_EXCEEDED.inc()
            return (
                503,
                {
                    "error": str(exc),
                    "kind": "deadline_exceeded",
                    "timeout_ms": exc.timeout_ms,
                    "elapsed_ms": round(exc.elapsed_ms, 3),
                    "where": exc.where,
                },
                {"Retry-After": "1"},
            )
        except SqlError as exc:
            if _METRICS.enabled:
                _HTTP_ERRORS.inc()
            return 400, {"error": str(exc), "kind": "sql_error"}, headers
        except Exception as exc:  # noqa: BLE001 - the server must answer
            if _METRICS.enabled:
                _HTTP_ERRORS.inc()
            return (
                500,
                {
                    "error": f"{type(exc).__name__}: {exc}",
                    "kind": "engine_failure",
                },
                headers,
            )
        finally:
            if _METRICS.enabled:
                _HTTP_SECONDS.observe(perf_counter() - started)

    async def _run_engine_route(self, handler, params: dict, what: str):
        """Breaker + admission + deadline around one engine call."""
        breaker = self.breaker
        if not breaker.allow():
            snap = breaker.snapshot()
            raise _HttpError(
                503,
                "circuit breaker open: the engine is failing; request "
                "fast-failed",
                kind="circuit_open",
                retry_after_s=snap["retry_after_s"] or breaker.cooldown_s,
                extra={"breaker": snap},
            )
        try:
            timeout_ms = self._timeout_ms(params)
            # the deadline starts *before* the queue wait: time spent
            # queued is part of the request's budget, so a request that
            # waited its deadline away sheds at admission instead of
            # running anyway
            deadline = Deadline(timeout_ms) if timeout_ms else None
            admission = self._admission
            if admission is not None:
                await admission.acquire()
        except BaseException:
            # rejected before the engine ran (bad timeout_ms, load
            # shed, cancellation): no health verdict, but the half-open
            # probe slot allow() may have claimed must be released or
            # the breaker wedges open
            breaker.record_abandoned()
            raise
        try:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                self._pool, self._run_engine, handler, params, deadline, what
            )
        except (asyncio.CancelledError, RuntimeError):
            # _run_engine records only when it runs on the pool; here
            # it may never have started (task cancelled during drain
            # before a worker picked it up, or the pool shut down by a
            # racing stop()).  Releasing the probe slot is harmless if
            # it did run — a real record already cleared the flag
            breaker.record_abandoned()
            raise
        finally:
            if admission is not None:
                admission.release()

    def _timeout_ms(self, params: dict) -> "float | None":
        raw = params.get("timeout_ms")
        if raw is None:
            return self.request_timeout_ms
        try:
            timeout_ms = float(raw)
        except (TypeError, ValueError):
            raise _HttpError(400, f"bad timeout_ms {raw!r}") from None
        # `not >` (rather than `<=`) also rejects NaN; isfinite rejects
        # inf, which would silently mean "no timeout"
        if not timeout_ms > 0 or not math.isfinite(timeout_ms):
            raise _HttpError(400, "timeout_ms must be a finite number > 0")
        return timeout_ms

    def _run_engine(self, handler, params: dict, deadline, what: str):
        """One engine call on the worker pool, breaker-accounted.

        Client errors (`_HttpError`, `SqlError`) prove the engine is
        answering and count as breaker successes; a `DeadlineExceeded`
        is overload, not ill health, and counts as neither success nor
        failure — but it still releases a half-open probe slot, else a
        deadline-exceeded probe (likely when a slow engine is exactly
        what tripped the breaker) wedges the breaker open forever;
        everything else is an engine failure.
        """
        try:
            with deadline_scope(deadline):
                if deadline is not None:
                    # admitted but already over budget (queue wait ate
                    # it): don't start engine work at all
                    deadline.check("admission")
                if self.faults is not None:
                    self.faults.before_engine_call(what)
                result = handler(params)
        except (_HttpError, SqlError):
            self.breaker.record_success()
            raise
        except DeadlineExceeded:
            self.breaker.record_abandoned()
            raise
        except Exception:
            self.breaker.record_failure()
            raise
        self.breaker.record_success()
        return result

    # ------------------------------------------------------------------
    # handlers (run on the worker pool)
    # ------------------------------------------------------------------
    @staticmethod
    def _flag(params: dict, name: str, default: bool) -> bool:
        value = params.get(name)
        if value is None:
            return default
        if isinstance(value, bool):
            return value
        return str(value).lower() in _TRUE_WORDS

    def _handle_search(self, params: dict) -> dict:
        text = params.get("q") or params.get("query")
        if not text or not isinstance(text, str):
            raise _HttpError(400, "missing query parameter 'q'")
        limit = params.get("limit", self.default_limit)
        if limit is not None:
            try:
                limit = int(limit)
            except (TypeError, ValueError):
                raise _HttpError(400, f"bad limit {limit!r}")
            if limit < 0:
                raise _HttpError(400, "limit must be >= 0")
        execute = self._flag(params, "execute", True)
        if self._flag(params, "trace", False):
            # traced requests bypass the result cache (the trace is
            # per-request state) but still run concurrently: the active
            # tracer is thread-local
            result = self.soda.search(text, execute=execute, trace=True)
            return result.to_dict(limit=limit)
        session = SearchSession(self.soda, execute=execute, limit=limit)
        return session.search(text).to_dict()

    def _handle_sql(self, params: dict) -> dict:
        sql = (params.get("sql") or "").strip()
        if not sql:
            raise _HttpError(400, "POST /sql expects the statement as body")
        statement = parse_sql(sql)  # surface syntax errors before locking
        database = self.soda.warehouse.database
        if isinstance(statement, (Select, Union)):
            result = database.execute(sql)
        else:
            with self._write_lock:
                result = database.execute(sql)
        return {
            "columns": list(result.columns),
            "rows": [
                [_json_value(value) for value in row] for row in result.rows
            ],
            "rowcount": result.rowcount,
        }

    def _metrics_payload(self, params: dict) -> dict:
        metrics = self.soda.metrics()
        if params.get("format") == "prometheus":
            return {"prometheus": _metrics_registry().render_prometheus()}
        return metrics

    def _healthz(self) -> dict:
        """Liveness + resilience state (part of the wire contract).

        ``status`` is ``"ok"`` (breaker closed), ``"degraded"`` (breaker
        half-open — probing its way back — or the server is draining),
        or ``"open"`` (breaker open: engine calls fast-fail).
        """
        database = self.soda.warehouse.database
        breaker = self.breaker.snapshot()
        status = {"closed": "ok", "half_open": "degraded", "open": "open"}[
            breaker["state"]
        ]
        if self._draining and status == "ok":
            status = "degraded"
        payload = {
            "status": status,
            "draining": self._draining,
            "breaker": breaker,
            "engine_config": {
                key: value
                for key, value in database.config.as_dict().items()
            },
            "tables": len(database.table_names()),
        }
        admission = self._admission
        if admission is not None:
            payload["admission"] = admission.snapshot()
        if self.maintenance is not None:
            payload["maintenance"] = self.maintenance.stats()
        return payload


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}
