"""The `Warehouse` facade: definition + database + metadata graph + indexes.

Bundles everything SODA needs about one data warehouse:

* the declarative :class:`~repro.warehouse.model.WarehouseDefinition`,
* the populated relational :class:`~repro.sqlengine.database.Database`,
* the metadata graph (a :class:`~repro.graph.triples.TripleStore`),
* the base-data inverted index.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.errors import WarehouseError
from repro.graph.node import Text, Vocab
from repro.graph.triples import TripleStore
from repro.index.inverted import InvertedIndex
from repro.sqlengine.database import Database
from repro.warehouse.graphbuilder import (
    build_metadata_graph,
    column_uri,
    graph_statistics,
    join_uri,
)
from repro.warehouse.model import WarehouseDefinition, build_database


class Warehouse:
    """One fully materialised data warehouse."""

    def __init__(
        self,
        definition: WarehouseDefinition,
        database: Database,
        graph: TripleStore,
        inverted: InvertedIndex,
    ) -> None:
        self.definition = definition
        self.database = database
        self.graph = graph
        self.inverted = inverted

    @classmethod
    def build(
        cls,
        definition: WarehouseDefinition,
        populate: "Callable[[Database], None] | None" = None,
    ) -> "Warehouse":
        """Create tables, load data, build graph and inverted index."""
        database = build_database(definition)
        if populate is not None:
            populate(database)
        graph = build_metadata_graph(definition)
        inverted = InvertedIndex.build(database.catalog)
        return cls(
            definition=definition,
            database=database,
            graph=graph,
            inverted=inverted,
        )

    # ------------------------------------------------------------------
    # metadata repair (the paper's war stories, Section 5.3.1)
    # ------------------------------------------------------------------
    def annotate_join(self, join_name: str) -> None:
        """Add a previously unannotated join relationship to the graph.

        This is the paper's remedy for the bi-temporal historization
        recall loss: *"the schema graph needs to be annotated with join
        relationships that reflect bi-temporal historization"*.  The next
        `Soda` built on this warehouse immediately uses the join.
        """
        join = self._join_by_name(join_name)
        node = join_uri(join.name)
        if list(self.graph.outgoing(node)):
            raise WarehouseError(f"join {join_name!r} is already annotated")
        left = column_uri(join.left_table, join.left_column)
        right = column_uri(join.right_table, join.right_column)
        self.graph.add(node, Vocab.TYPE, Vocab.JOIN_NODE)
        self.graph.add(node, Vocab.JOIN_LEFT, left)
        self.graph.add(node, Vocab.JOIN_RIGHT, right)
        self.graph.add(left, Vocab.HAS_JOIN, node)
        self.graph.add(right, Vocab.HAS_JOIN, node)
        index = self.definition.join_relationships.index(join)
        self.definition.join_relationships[index] = dataclasses.replace(
            join, annotated=True
        )

    def ignore_join(self, join_name: str) -> None:
        """Annotate a join relationship as ignored.

        The paper: *"if some database tables that are part of a bridge
        table between siblings are not populated yet, the schema can be
        annotated indicating that the respective relationship should be
        ignored"*.  SODA's join discovery skips ignored join nodes.
        """
        join = self._join_by_name(join_name)
        node = join_uri(join.name)
        if not list(self.graph.outgoing(node)):
            raise WarehouseError(
                f"join {join_name!r} is not annotated in the graph"
            )
        self.graph.add(node, Vocab.IGNORED, Text("true"))

    def unignore_join(self, join_name: str) -> None:
        """Remove the ignore annotation from a join relationship."""
        join = self._join_by_name(join_name)
        node = join_uri(join.name)
        try:
            self.graph.remove(node, Vocab.IGNORED, Text("true"))
        except Exception as exc:  # GraphError: not ignored
            raise WarehouseError(
                f"join {join_name!r} is not ignored"
            ) from exc

    def _join_by_name(self, join_name: str):
        for join in self.definition.join_relationships:
            if join.name == join_name:
                return join
        raise WarehouseError(f"no join relationship named {join_name!r}")

    # ------------------------------------------------------------------
    def row_counts(self) -> dict:
        """Table name -> row count."""
        return {
            name: self.database.row_count(name)
            for name in self.database.table_names()
        }

    def statistics(self) -> dict:
        """Combined schema/graph/index statistics."""
        stats = dict(self.definition.schema_statistics())
        stats.update({f"graph_{k}": v for k, v in graph_statistics(self.graph).items()})
        stats.update(
            {f"index_{k}": v for k, v in self.inverted.size_summary().items()}
        )
        stats["total_rows"] = sum(self.row_counts().values())
        return stats
