"""The `Warehouse` facade: definition + database + metadata graph + indexes.

Bundles everything SODA needs about one data warehouse:

* the declarative :class:`~repro.warehouse.model.WarehouseDefinition`,
* the populated relational :class:`~repro.sqlengine.database.Database`,
* the metadata graph (a :class:`~repro.graph.triples.TripleStore`),
* the base-data inverted index (incrementally maintained: an
  :class:`~repro.index.maintenance.InvertedIndexMaintainer` is
  registered on the catalog, so INSERT/UPDATE/DELETE/DDL keep the
  index fresh without rebuilds),
* a cache of classification-index variants shared by every `Soda`
  built on this warehouse.

A warehouse can persist its built indexes as a versioned snapshot
(:meth:`save_index_snapshot`) and warm-start from it
(:meth:`Warehouse.build` with ``snapshot=path``), skipping the
full catalog scan that the paper reports as a 24-hour build.
"""

from __future__ import annotations

import dataclasses
import logging
from typing import Callable

from repro.errors import WarehouseError
from repro.graph.node import Text, Vocab
from repro.graph.triples import TripleStore
from repro.index.inverted import InvertedIndex
from repro.index.maintenance import InvertedIndexMaintainer
from repro.index.snapshot import (
    IndexSnapshot,
    catalog_digest,
    load_snapshot,
    save_snapshot,
)
from repro.sqlengine.database import Database
from repro.warehouse.graphbuilder import (
    build_classification_index,
    build_metadata_graph,
    column_uri,
    graph_statistics,
    join_uri,
)
from repro.warehouse.model import WarehouseDefinition, build_database

logger = logging.getLogger(__name__)


class Warehouse:
    """One fully materialised data warehouse."""

    def __init__(
        self,
        definition: WarehouseDefinition,
        database: Database,
        graph: TripleStore,
        inverted: InvertedIndex,
        maintain_indexes: bool = True,
    ) -> None:
        self.definition = definition
        self.database = database
        self.graph = graph
        self.inverted = inverted
        self.maintainer: "InvertedIndexMaintainer | None" = None
        # (include_dbpedia, include_physical) -> (graph version, index)
        self._classification_cache: dict = {}
        if maintain_indexes:
            self.enable_index_maintenance()

    @classmethod
    def build(
        cls,
        definition: WarehouseDefinition,
        populate: "Callable[[Database], None] | None" = None,
        snapshot: "str | None" = None,
        engine_config=None,
    ) -> "Warehouse":
        """Create tables, load data, build graph and build/load indexes.

        With *snapshot*, the inverted and classification indexes are
        warm-started from that file instead of scanned from the catalog;
        a missing, malformed or stale snapshot falls back to the cold
        build with a logged warning saying why (use
        :meth:`load_index_snapshot` for strict loading).  With
        *engine_config*, the underlying SQL engine uses those settings
        (segmented storage, parallel workers, …) instead of defaults.
        """
        database = build_database(definition, engine_config=engine_config)
        if populate is not None:
            populate(database)
        graph = build_metadata_graph(definition)
        loaded: "IndexSnapshot | None" = None
        if snapshot is not None:
            try:
                candidate = load_snapshot(snapshot)
                candidate.verify(
                    definition.name,
                    database.catalog.fingerprint(),
                    catalog_digest(database.catalog),
                )
                loaded = candidate
            except WarehouseError as exc:
                kind = getattr(exc, "kind", "") or "stale"
                logger.warning(
                    "index snapshot %s unusable (%s): %s -- "
                    "falling back to cold index build",
                    snapshot,
                    kind,
                    exc,
                )
                loaded = None
        inverted = (
            loaded.inverted if loaded is not None
            else InvertedIndex.build(database.catalog)
        )
        warehouse = cls(
            definition=definition,
            database=database,
            graph=graph,
            inverted=inverted,
        )
        if loaded is not None:
            warehouse._adopt_classifications(loaded)
        return warehouse

    # ------------------------------------------------------------------
    # long-lived index maintenance and warm-start snapshots
    # ------------------------------------------------------------------
    def enable_index_maintenance(self) -> InvertedIndexMaintainer:
        """Register write-through maintenance of the inverted index."""
        if self.maintainer is not None:
            self.database.catalog.unregister_observer(self.maintainer)
        self.maintainer = InvertedIndexMaintainer(self.inverted)
        self.database.catalog.register_observer(self.maintainer)
        return self.maintainer

    def classification_index(
        self,
        include_dbpedia: bool = True,
        include_physical: bool = False,
    ):
        """The classification index for one flag combination, memoized.

        The cache key includes the metadata-graph version, so graph
        repairs (:meth:`annotate_join` and friends) invalidate
        naturally while every `Soda` built on an unchanged warehouse
        shares one index build.
        """
        key = (include_dbpedia, include_physical)
        cached = self._classification_cache.get(key)
        if cached is not None and cached[0] == self.graph.version:
            return cached[1]
        index = build_classification_index(
            self.graph,
            include_dbpedia=include_dbpedia,
            include_physical=include_physical,
        )
        self._classification_cache[key] = (self.graph.version, index)
        return index

    def index_snapshot(self) -> IndexSnapshot:
        """The current indexes bundled for serialization."""
        return IndexSnapshot(
            name=self.definition.name,
            fingerprint=self.database.catalog.fingerprint(),
            content_digest=catalog_digest(self.database.catalog),
            inverted=self.inverted,
            classifications={
                key: index
                for key, (version, index) in sorted(
                    self._classification_cache.items()
                )
                if version == self.graph.version
            },
        )

    def save_index_snapshot(self, path) -> None:
        """Persist the built indexes, stamped with the catalog fingerprint."""
        save_snapshot(self.index_snapshot(), path)

    def load_index_snapshot(self, path) -> IndexSnapshot:
        """Replace the live indexes with a snapshot's (strict).

        Raises :class:`WarehouseError` when the snapshot does not match
        this warehouse's name and catalog fingerprint.  `Soda` instances
        constructed before the load keep the old index objects; build
        new ones to serve from the snapshot.
        """
        snapshot = load_snapshot(path)
        snapshot.verify(
            self.definition.name,
            self.database.catalog.fingerprint(),
            catalog_digest(self.database.catalog),
        )
        self.inverted = snapshot.inverted
        if self.maintainer is not None:
            self.enable_index_maintenance()  # re-point at the new index
        self._adopt_classifications(snapshot)
        return snapshot

    def _adopt_classifications(self, snapshot: IndexSnapshot) -> None:
        for key, index in snapshot.classifications.items():
            self._classification_cache[key] = (self.graph.version, index)

    # ------------------------------------------------------------------
    # metadata repair (the paper's war stories, Section 5.3.1)
    # ------------------------------------------------------------------
    def annotate_join(self, join_name: str) -> None:
        """Add a previously unannotated join relationship to the graph.

        This is the paper's remedy for the bi-temporal historization
        recall loss: *"the schema graph needs to be annotated with join
        relationships that reflect bi-temporal historization"*.  The next
        `Soda` built on this warehouse immediately uses the join.
        """
        join = self._join_by_name(join_name)
        node = join_uri(join.name)
        if list(self.graph.outgoing(node)):
            raise WarehouseError(f"join {join_name!r} is already annotated")
        left = column_uri(join.left_table, join.left_column)
        right = column_uri(join.right_table, join.right_column)
        self.graph.add(node, Vocab.TYPE, Vocab.JOIN_NODE)
        self.graph.add(node, Vocab.JOIN_LEFT, left)
        self.graph.add(node, Vocab.JOIN_RIGHT, right)
        self.graph.add(left, Vocab.HAS_JOIN, node)
        self.graph.add(right, Vocab.HAS_JOIN, node)
        index = self.definition.join_relationships.index(join)
        self.definition.join_relationships[index] = dataclasses.replace(
            join, annotated=True
        )

    def ignore_join(self, join_name: str) -> None:
        """Annotate a join relationship as ignored.

        The paper: *"if some database tables that are part of a bridge
        table between siblings are not populated yet, the schema can be
        annotated indicating that the respective relationship should be
        ignored"*.  SODA's join discovery skips ignored join nodes.
        """
        join = self._join_by_name(join_name)
        node = join_uri(join.name)
        if not list(self.graph.outgoing(node)):
            raise WarehouseError(
                f"join {join_name!r} is not annotated in the graph"
            )
        self.graph.add(node, Vocab.IGNORED, Text("true"))

    def unignore_join(self, join_name: str) -> None:
        """Remove the ignore annotation from a join relationship."""
        join = self._join_by_name(join_name)
        node = join_uri(join.name)
        try:
            self.graph.remove(node, Vocab.IGNORED, Text("true"))
        except Exception as exc:  # GraphError: not ignored
            raise WarehouseError(
                f"join {join_name!r} is not ignored"
            ) from exc

    def _join_by_name(self, join_name: str):
        for join in self.definition.join_relationships:
            if join.name == join_name:
                return join
        raise WarehouseError(f"no join relationship named {join_name!r}")

    # ------------------------------------------------------------------
    def row_counts(self) -> dict:
        """Table name -> row count."""
        return {
            name: self.database.row_count(name)
            for name in self.database.table_names()
        }

    def statistics(self) -> dict:
        """Combined schema/graph/index statistics."""
        stats = dict(self.definition.schema_statistics())
        stats.update({f"graph_{k}": v for k, v in graph_statistics(self.graph).items()})
        stats.update(
            {f"index_{k}": v for k, v in self.inverted.size_summary().items()}
        )
        stats["total_rows"] = sum(self.row_counts().values())
        return stats
