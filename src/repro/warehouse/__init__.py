"""Warehouse substrate: schema model, ontologies, graph builder, data."""

from repro.warehouse.browser import SchemaBrowser, TableDescription, TermDescription
from repro.warehouse.dbpedia import DbpediaEntry
from repro.warehouse.graphbuilder import (
    JOIN_EDGES,
    SCHEMA_EDGES,
    build_classification_index,
    build_metadata_graph,
    column_uri,
    conceptual_entity_uri,
    graph_statistics,
    logical_entity_uri,
    ontology_term_uri,
    table_uri,
)
from repro.warehouse.minibank import build_definition, build_minibank, populate
from repro.warehouse.model import (
    ConceptualEntity,
    EntityRelationship,
    Inheritance,
    JoinRelationship,
    LogicalEntity,
    PhysicalColumn,
    PhysicalTable,
    WarehouseDefinition,
    build_database,
)
from repro.warehouse.ontology import AggSpec, FilterSpec, Ontology, OntologyTerm
from repro.warehouse.synthetic import SyntheticConfig, generate_definition
from repro.warehouse.warehouse import Warehouse

__all__ = [
    "AggSpec",
    "ConceptualEntity",
    "DbpediaEntry",
    "EntityRelationship",
    "FilterSpec",
    "Inheritance",
    "JOIN_EDGES",
    "JoinRelationship",
    "LogicalEntity",
    "Ontology",
    "OntologyTerm",
    "PhysicalColumn",
    "PhysicalTable",
    "SCHEMA_EDGES",
    "SchemaBrowser",
    "SyntheticConfig",
    "TableDescription",
    "TermDescription",
    "Warehouse",
    "WarehouseDefinition",
    "build_classification_index",
    "build_database",
    "build_definition",
    "build_metadata_graph",
    "build_minibank",
    "column_uri",
    "conceptual_entity_uri",
    "generate_definition",
    "graph_statistics",
    "logical_entity_uri",
    "ontology_term_uri",
    "populate",
    "table_uri",
]
