"""DBpedia synonym entries (paper Section 2.2).

Credit Suisse *"only maintains DBpedia entries that have direct
connections to the terms stored in the integrated schema"* — e.g. for
"Parties" the extracted entries are *customer, client, political
organization, ...*.  We model exactly that: a curated list of synonym
terms, each pointing at the schema/ontology terms it is a synonym of.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DbpediaEntry:
    """One DBpedia synonym: *term* is a synonym of the *synonym_of* targets.

    Targets use the same spec syntax as ontology terms
    (``conceptual:Parties``, ``ontology:customers``, ...).
    """

    term: str
    synonym_of: tuple = ()
