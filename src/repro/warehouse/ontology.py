"""Domain ontologies (paper Section 2.2).

A domain ontology classifies data for a specific domain: *"At Credit
Suisse, customers are divided into private and corporate customers"*.
Ontology terms point at schema elements (``classifies``) and may carry

* a metadata-defined **filter** — the paper's "wealthy customers":
  customers whose salary exceeds a threshold defined in the metadata,
* a metadata-defined **aggregation** — the paper's "trading volume":
  the sum of transaction amounts (Section 4.4.2 discusses inferring
  "aggregation of transaction amount" from "trading volume").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FilterSpec:
    """A metadata-defined predicate: ``table.column <op> value``."""

    table: str
    column: str
    op: str  # one of: = <> < <= > >= like
    value: object

    def describe(self) -> str:
        return f"{self.table}.{self.column} {self.op} {self.value!r}"


@dataclass(frozen=True)
class AggSpec:
    """A metadata-defined aggregation: ``func(table.column)``."""

    func: str  # 'sum' | 'count' | 'avg' | 'min' | 'max'
    table: str
    column: str

    def describe(self) -> str:
        return f"{self.func}({self.table}.{self.column})"


@dataclass(frozen=True)
class OntologyTerm:
    """One term of a domain ontology.

    *classifies* lists target specs: ``conceptual:Name``,
    ``logical:Name``, ``physical:table``, ``column:table.column`` or
    ``ontology:term`` (term hierarchies).
    """

    term: str
    classifies: tuple = ()
    filter: FilterSpec | None = None
    aggregation: AggSpec | None = None

    @property
    def is_business_term(self) -> bool:
        """Business terms carry executable semantics (filter/aggregation)."""
        return self.filter is not None or self.aggregation is not None


@dataclass(frozen=True)
class Ontology:
    """A named domain ontology: a collection of terms."""

    name: str
    terms: tuple = ()

    def term(self, name: str) -> OntologyTerm:
        for term in self.terms:
            if term.term == name:
                return term
        raise KeyError(f"no term {name!r} in ontology {self.name!r}")
