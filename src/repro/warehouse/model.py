"""Declarative warehouse schema model (conceptual / logical / physical).

A :class:`WarehouseDefinition` captures everything the paper's metadata
warehouse knows about a data warehouse:

* the three schema layers and how they refine into each other,
* inheritance structures (at the logical and physical layer),
* join relationships — including whether they are *annotated* in the
  metadata graph (the paper's war story: bi-temporal historization keys
  that are missing from the schema graph cause low recall),
* domain ontologies with business terms (including metadata-defined
  filters such as "wealthy customers" and metadata-defined aggregations
  such as "trading volume"),
* DBpedia synonym entries.

The definition is consumed by :mod:`repro.warehouse.graphbuilder` (to
produce the metadata graph) and by :func:`build_database` (to create the
physical tables in the relational engine).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import WarehouseError
from repro.sqlengine.database import Database


# ---------------------------------------------------------------------------
# schema layers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ConceptualEntity:
    """A business-layer entity (Fig. 1), e.g. ``Parties``."""

    name: str
    attributes: tuple = ()
    label: str | None = None  # search label; defaults to the name


@dataclass(frozen=True)
class LogicalEntity:
    """A logical-layer entity (Fig. 2); refines a conceptual entity."""

    name: str
    attributes: tuple = ()
    refines: str | None = None  # conceptual entity name
    label: str | None = None


@dataclass(frozen=True)
class PhysicalColumn:
    """One column of a physical table.

    *label* is the human term registered in the classification index
    (``birth_dt`` carries the label "birth date" — the paper notes
    physical names "never correspond" to documented names).  *refines*
    names the logical ``(entity, attribute)`` this column implements.
    """

    name: str
    sql_type: str
    label: str | None = None
    refines: tuple | None = None  # (logical entity, attribute)
    primary_key: bool = False
    indexed_for_search: bool = True  # participate in the inverted index


@dataclass(frozen=True)
class PhysicalTable:
    """A physical table; refines a logical entity."""

    name: str
    columns: tuple
    refines: str | None = None  # logical entity name
    label: str | None = None

    def column(self, name: str) -> PhysicalColumn:
        for column in self.columns:
            if column.name == name:
                return column
        raise WarehouseError(f"no column {name!r} in physical table {self.name!r}")

    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]


@dataclass(frozen=True)
class EntityRelationship:
    """An entity-level relationship (for schema statistics / documentation)."""

    name: str
    layer: str  # 'conceptual' | 'logical'
    left: str
    right: str
    kind: str = "n1"  # 'n1' | 'nn'


@dataclass(frozen=True)
class JoinRelationship:
    """A physical join edge, modelled as the paper's explicit join node.

    ``annotated=False`` join relationships exist in the database (the
    gold standard uses them) but are **absent from the metadata graph**
    — reproducing the paper's bi-temporal historization gap.
    """

    name: str
    left_table: str
    left_column: str
    right_table: str
    right_column: str
    kind: str = "fk"  # 'fk' | 'inheritance' | 'bridge'
    annotated: bool = True
    ignored: bool = False  # schema annotation: skip during SQL generation


@dataclass(frozen=True)
class Inheritance:
    """An inheritance structure with an explicit inheritance node.

    *layer* is ``physical`` (parent/children are tables) or ``logical``
    (parent/children are logical entities).
    """

    name: str
    parent: str
    children: tuple
    layer: str = "physical"

    def __post_init__(self) -> None:
        if len(self.children) < 1:
            raise WarehouseError(f"inheritance {self.name!r} needs children")


# ---------------------------------------------------------------------------
# ontologies / synonyms (imported from sibling modules for re-export)
# ---------------------------------------------------------------------------

from repro.warehouse.dbpedia import DbpediaEntry  # noqa: E402
from repro.warehouse.ontology import Ontology, OntologyTerm  # noqa: E402


# ---------------------------------------------------------------------------
# the definition object
# ---------------------------------------------------------------------------


@dataclass
class WarehouseDefinition:
    """The complete metadata description of one data warehouse."""

    name: str
    conceptual_entities: list = field(default_factory=list)
    conceptual_relationships: list = field(default_factory=list)
    logical_entities: list = field(default_factory=list)
    logical_relationships: list = field(default_factory=list)
    physical_tables: list = field(default_factory=list)
    join_relationships: list = field(default_factory=list)
    inheritances: list = field(default_factory=list)
    ontologies: list = field(default_factory=list)
    dbpedia: list = field(default_factory=list)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def physical_table(self, name: str) -> PhysicalTable:
        for table in self.physical_tables:
            if table.name == name:
                return table
        raise WarehouseError(f"no physical table {name!r} in {self.name!r}")

    def has_physical_table(self, name: str) -> bool:
        return any(table.name == name for table in self.physical_tables)

    def logical_entity(self, name: str) -> LogicalEntity:
        for entity in self.logical_entities:
            if entity.name == name:
                return entity
        raise WarehouseError(f"no logical entity {name!r} in {self.name!r}")

    def conceptual_entity(self, name: str) -> ConceptualEntity:
        for entity in self.conceptual_entities:
            if entity.name == name:
                return entity
        raise WarehouseError(f"no conceptual entity {name!r} in {self.name!r}")

    def joins_of_table(self, table_name: str) -> list:
        return [
            join
            for join in self.join_relationships
            if table_name in (join.left_table, join.right_table)
        ]

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check referential integrity of the definition; raise on errors."""
        conceptual = {entity.name for entity in self.conceptual_entities}
        logical = {entity.name for entity in self.logical_entities}
        physical = {table.name for table in self.physical_tables}

        for entity in self.logical_entities:
            if entity.refines is not None and entity.refines not in conceptual:
                raise WarehouseError(
                    f"logical entity {entity.name!r} refines unknown "
                    f"conceptual entity {entity.refines!r}"
                )
        for table in self.physical_tables:
            if table.refines is not None and table.refines not in logical:
                raise WarehouseError(
                    f"physical table {table.name!r} refines unknown "
                    f"logical entity {table.refines!r}"
                )
            names = table.column_names()
            if len(set(names)) != len(names):
                raise WarehouseError(f"duplicate columns in table {table.name!r}")
        for join in self.join_relationships:
            for table_name, column_name in (
                (join.left_table, join.left_column),
                (join.right_table, join.right_column),
            ):
                if table_name not in physical:
                    raise WarehouseError(
                        f"join {join.name!r} references unknown table "
                        f"{table_name!r}"
                    )
                self.physical_table(table_name).column(column_name)
        for inheritance in self.inheritances:
            pool = physical if inheritance.layer == "physical" else logical
            if inheritance.parent not in pool:
                raise WarehouseError(
                    f"inheritance {inheritance.name!r} has unknown parent "
                    f"{inheritance.parent!r}"
                )
            for child in inheritance.children:
                if child not in pool:
                    raise WarehouseError(
                        f"inheritance {inheritance.name!r} has unknown child "
                        f"{child!r}"
                    )
        for ontology in self.ontologies:
            for term in ontology.terms:
                for target in term.classifies:
                    self._validate_target(target)
        for entry in self.dbpedia:
            for target in entry.synonym_of:
                self._validate_target(target)

    def _validate_target(self, target: str) -> None:
        """Targets are ``layer:name`` or ``column:table.column`` specs."""
        if ":" not in target:
            raise WarehouseError(f"malformed target spec: {target!r}")
        layer, name = target.split(":", 1)
        if layer == "conceptual":
            self.conceptual_entity(name)
        elif layer == "logical":
            self.logical_entity(name)
        elif layer == "physical":
            self.physical_table(name)
        elif layer == "column":
            table_name, __, column_name = name.partition(".")
            self.physical_table(table_name).column(column_name)
        elif layer == "ontology":
            found = any(
                term.term == name
                for ontology in self.ontologies
                for term in ontology.terms
            )
            if not found:
                raise WarehouseError(f"unknown ontology term target: {name!r}")
        else:
            raise WarehouseError(f"unknown target layer: {layer!r}")

    # ------------------------------------------------------------------
    # statistics (Table 1)
    # ------------------------------------------------------------------
    def schema_statistics(self) -> dict:
        """Cardinalities in the shape of the paper's Table 1."""
        return {
            "conceptual_entities": len(self.conceptual_entities),
            "conceptual_attributes": sum(
                len(entity.attributes) for entity in self.conceptual_entities
            ),
            "conceptual_relationships": len(self.conceptual_relationships),
            "logical_entities": len(self.logical_entities),
            "logical_attributes": sum(
                len(entity.attributes) for entity in self.logical_entities
            ),
            "logical_relationships": len(self.logical_relationships),
            "physical_tables": len(self.physical_tables),
            "physical_columns": sum(
                len(table.columns) for table in self.physical_tables
            ),
        }


def build_database(
    definition: WarehouseDefinition, engine_config=None
) -> Database:
    """Create the physical tables of *definition* in a fresh engine."""
    database = Database(config=engine_config)
    # every join relationship is a real foreign key in the database — the
    # paper's historization gap is a *metadata graph* gap, not a DB one
    for table in definition.physical_tables:
        foreign_keys = []
        for join in definition.join_relationships:
            if join.left_table == table.name:
                foreign_keys.append(
                    ((join.left_column,), join.right_table, (join.right_column,))
                )
        database.create_table(
            table.name,
            [(column.name, column.sql_type) for column in table.columns],
            primary_key=[
                column.name for column in table.columns if column.primary_key
            ],
            foreign_keys=foreign_keys,
        )
    return database
