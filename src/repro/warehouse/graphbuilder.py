"""Build the metadata graph (Fig. 3) from a warehouse definition.

The produced :class:`~repro.graph.triples.TripleStore` contains, layer by
layer: DBpedia synonyms -> domain ontologies -> conceptual schema ->
logical schema -> physical schema -> (implicitly, via table/column names)
the base data.  Edge directions always point from the more abstract to
the more concrete element, so that SODA's Step 3 traversal — "recursively
follow all outgoing edges" — moves towards physical tables.

Two families of edges exist:

* *schema edges* (synonym_of, classifies, refines, has_attribute,
  has_inheritance, inheritance_child/parent) — followed by the Tables
  pass of Step 3;
* *join edges* (column, belongs_to, has_join, join_left/right) —
  additionally followed by the join-discovery pass, which needs to cross
  from table to table.
"""

from __future__ import annotations

from repro.errors import WarehouseError
from repro.graph.node import Text, Vocab, uri
from repro.graph.triples import TripleStore
from repro.index.classification import ClassificationIndex, EntrySource
from repro.warehouse.model import WarehouseDefinition


# ---------------------------------------------------------------------------
# URI helpers — single authoritative spelling for every element kind
# ---------------------------------------------------------------------------


def conceptual_entity_uri(name: str) -> str:
    return uri("conceptual", "entity", name)


def conceptual_attr_uri(entity: str, attr: str) -> str:
    return uri("conceptual", "attr", entity, attr)


def logical_entity_uri(name: str) -> str:
    return uri("logical", "entity", name)


def logical_attr_uri(entity: str, attr: str) -> str:
    return uri("logical", "attr", entity, attr)


def table_uri(name: str) -> str:
    return uri("physical", "table", name)


def column_uri(table: str, column: str) -> str:
    return uri("physical", "column", table, column)


def join_uri(name: str) -> str:
    return uri("physical", "join", name)


def inheritance_uri(layer: str, name: str) -> str:
    return uri("inh", layer, name)


def ontology_term_uri(ontology: str, term: str) -> str:
    return uri("ontology", ontology, term)


def dbpedia_uri(term: str) -> str:
    return uri("dbpedia", term)


#: Edges followed by the Tables pass of Step 3 (schema-level traversal).
SCHEMA_EDGES = frozenset(
    {
        Vocab.SYNONYM_OF,
        Vocab.CLASSIFIES,
        Vocab.REFINES,
        Vocab.HAS_ATTRIBUTE,
        Vocab.HAS_INHERITANCE,
        Vocab.INHERITANCE_CHILD,
        Vocab.INHERITANCE_PARENT,
    }
)

#: Additional edges followed by the join-discovery pass of Step 3.
JOIN_EDGES = frozenset(
    {
        Vocab.COLUMN,
        Vocab.BELONGS_TO,
        Vocab.HAS_JOIN,
        Vocab.JOIN_LEFT,
        Vocab.JOIN_RIGHT,
    }
)


def resolve_target(definition: WarehouseDefinition, spec: str) -> str:
    """Resolve a ``layer:name`` target spec to its graph URI."""
    if ":" not in spec:
        raise WarehouseError(f"malformed target spec: {spec!r}")
    layer, name = spec.split(":", 1)
    if layer == "conceptual":
        return conceptual_entity_uri(name)
    if layer == "logical":
        return logical_entity_uri(name)
    if layer == "physical":
        return table_uri(name)
    if layer == "column":
        table_name, __, column_name = name.partition(".")
        return column_uri(table_name, column_name)
    if layer == "ontology":
        for ontology in definition.ontologies:
            for term in ontology.terms:
                if term.term == name:
                    return ontology_term_uri(ontology.name, name)
        raise WarehouseError(f"unknown ontology term: {name!r}")
    raise WarehouseError(f"unknown target layer: {layer!r}")


def _default_label(name: str) -> str:
    """Human-readable label from an element name (underscores -> spaces)."""
    return name.replace("_", " ").strip().lower()


def build_metadata_graph(definition: WarehouseDefinition) -> TripleStore:
    """Emit the full metadata graph for *definition*."""
    definition.validate()
    store = TripleStore()

    # -- conceptual layer ------------------------------------------------
    for entity in definition.conceptual_entities:
        node = conceptual_entity_uri(entity.name)
        store.add(node, Vocab.TYPE, Vocab.CONCEPTUAL_ENTITY)
        store.add(node, Vocab.LABEL, Text(entity.label or _default_label(entity.name)))
        for attr in entity.attributes:
            attr_node = conceptual_attr_uri(entity.name, attr)
            store.add(attr_node, Vocab.TYPE, Vocab.CONCEPTUAL_ATTRIBUTE)
            store.add(attr_node, Vocab.LABEL, Text(_default_label(attr)))
            store.add(node, Vocab.HAS_ATTRIBUTE, attr_node)

    # -- logical layer -----------------------------------------------------
    for entity in definition.logical_entities:
        node = logical_entity_uri(entity.name)
        store.add(node, Vocab.TYPE, Vocab.LOGICAL_ENTITY)
        store.add(node, Vocab.LABEL, Text(entity.label or _default_label(entity.name)))
        for attr in entity.attributes:
            attr_node = logical_attr_uri(entity.name, attr)
            store.add(attr_node, Vocab.TYPE, Vocab.LOGICAL_ATTRIBUTE)
            store.add(attr_node, Vocab.LABEL, Text(_default_label(attr)))
            store.add(node, Vocab.HAS_ATTRIBUTE, attr_node)
        if entity.refines is not None:
            conceptual = definition.conceptual_entity(entity.refines)
            store.add(conceptual_entity_uri(conceptual.name), Vocab.REFINES, node)
            shared = set(conceptual.attributes) & set(entity.attributes)
            for attr in shared:
                store.add(
                    conceptual_attr_uri(conceptual.name, attr),
                    Vocab.REFINES,
                    logical_attr_uri(entity.name, attr),
                )

    # -- physical layer ----------------------------------------------------
    for table in definition.physical_tables:
        node = table_uri(table.name)
        store.add(node, Vocab.TYPE, Vocab.PHYSICAL_TABLE)
        store.add(node, Vocab.TABLENAME, Text(table.name))
        store.add(node, Vocab.LABEL, Text(table.label or _default_label(table.name)))
        if table.refines is not None:
            store.add(logical_entity_uri(table.refines), Vocab.REFINES, node)
        for column in table.columns:
            col_node = column_uri(table.name, column.name)
            store.add(col_node, Vocab.TYPE, Vocab.PHYSICAL_COLUMN)
            store.add(col_node, Vocab.COLUMNNAME, Text(column.name))
            store.add(node, Vocab.COLUMN, col_node)
            store.add(col_node, Vocab.BELONGS_TO, node)
            if column.label is not None:
                store.add(col_node, Vocab.LABEL, Text(column.label))
            if column.refines is not None:
                logical_entity, attr = column.refines
                store.add(
                    logical_attr_uri(logical_entity, attr), Vocab.REFINES, col_node
                )

    # -- join relationships (annotated only!) -------------------------------
    for join in definition.join_relationships:
        if not join.annotated:
            continue  # the paper's historization gap: key missing from graph
        node = join_uri(join.name)
        left = column_uri(join.left_table, join.left_column)
        right = column_uri(join.right_table, join.right_column)
        store.add(node, Vocab.TYPE, Vocab.JOIN_NODE)
        store.add(node, Vocab.JOIN_LEFT, left)
        store.add(node, Vocab.JOIN_RIGHT, right)
        store.add(left, Vocab.HAS_JOIN, node)
        store.add(right, Vocab.HAS_JOIN, node)
        if join.ignored:
            store.add(node, Vocab.IGNORED, Text("true"))

    # -- inheritance structures ---------------------------------------------
    for inheritance in definition.inheritances:
        node = inheritance_uri(inheritance.layer, inheritance.name)
        if inheritance.layer == "physical":
            parent = table_uri(inheritance.parent)
            children = [table_uri(child) for child in inheritance.children]
        else:
            parent = logical_entity_uri(inheritance.parent)
            children = [
                logical_entity_uri(child) for child in inheritance.children
            ]
        store.add(node, Vocab.TYPE, Vocab.INHERITANCE_NODE)
        store.add(node, Vocab.INHERITANCE_PARENT, parent)
        store.add(parent, Vocab.HAS_INHERITANCE, node)
        for child in children:
            store.add(node, Vocab.INHERITANCE_CHILD, child)

    # -- domain ontologies -------------------------------------------------
    for ontology in definition.ontologies:
        for term in ontology.terms:
            node = ontology_term_uri(ontology.name, term.term)
            store.add(node, Vocab.TYPE, Vocab.ONTOLOGY_TERM)
            store.add(node, Vocab.LABEL, Text(term.term))
            for target in term.classifies:
                store.add(node, Vocab.CLASSIFIES, resolve_target(definition, target))
            if term.filter is not None:
                store.add(node, Vocab.TYPE, Vocab.BUSINESS_TERM)
                store.add(
                    node,
                    Vocab.FILTER_COLUMN,
                    column_uri(term.filter.table, term.filter.column),
                )
                store.add(node, Vocab.FILTER_OP, Text(term.filter.op))
                store.add(node, Vocab.FILTER_VALUE, Text(str(term.filter.value)))
            if term.aggregation is not None:
                store.add(node, Vocab.TYPE, Vocab.BUSINESS_TERM)
                store.add(node, Vocab.AGG_FUNC, Text(term.aggregation.func))
                store.add(
                    node,
                    Vocab.AGG_COLUMN,
                    column_uri(term.aggregation.table, term.aggregation.column),
                )

    # -- DBpedia -------------------------------------------------------------
    for entry in definition.dbpedia:
        node = dbpedia_uri(entry.term)
        store.add(node, Vocab.TYPE, Vocab.DBPEDIA_TERM)
        store.add(node, Vocab.LABEL, Text(entry.term))
        for target in entry.synonym_of:
            store.add(node, Vocab.SYNONYM_OF, resolve_target(definition, target))

    return store


_SOURCE_BY_TYPE = {
    Vocab.ONTOLOGY_TERM: EntrySource.DOMAIN_ONTOLOGY,
    Vocab.BUSINESS_TERM: EntrySource.DOMAIN_ONTOLOGY,
    Vocab.CONCEPTUAL_ENTITY: EntrySource.CONCEPTUAL_SCHEMA,
    Vocab.CONCEPTUAL_ATTRIBUTE: EntrySource.CONCEPTUAL_SCHEMA,
    Vocab.LOGICAL_ENTITY: EntrySource.LOGICAL_SCHEMA,
    Vocab.LOGICAL_ATTRIBUTE: EntrySource.LOGICAL_SCHEMA,
    Vocab.PHYSICAL_TABLE: EntrySource.PHYSICAL_SCHEMA,
    Vocab.PHYSICAL_COLUMN: EntrySource.PHYSICAL_SCHEMA,
    Vocab.DBPEDIA_TERM: EntrySource.DBPEDIA,
}


def build_classification_index(
    store: TripleStore,
    include_dbpedia: bool = True,
    include_physical: bool = False,
) -> ClassificationIndex:
    """Register every labelled metadata node in a classification index.

    *include_dbpedia=False* drops the DBpedia layer — the ablation the
    paper proposes as future work ("the use of DBpedia will naturally
    increase the number of possible query results").

    *include_physical* is off by default: physical names are cryptic at
    Credit Suisse ("birth date" is ``birth_dt``), so business keywords
    match the conceptual/logical/ontology layers and patterns map them
    down — the paper's Fig. 5 finds "financial instruments" exactly
    twice (conceptual + logical), never in the physical layer.
    """
    index = ClassificationIndex()
    for triple in store.match(predicate=Vocab.LABEL):
        label = triple.obj
        if not isinstance(label, Text):
            continue
        node = triple.subject
        source = None
        for type_node in store.objects(node, Vocab.TYPE):
            if isinstance(type_node, str) and type_node in _SOURCE_BY_TYPE:
                candidate = _SOURCE_BY_TYPE[type_node]
                if source is None or candidate is EntrySource.DOMAIN_ONTOLOGY:
                    source = candidate
        if source is None:
            continue
        if source is EntrySource.DBPEDIA and not include_dbpedia:
            continue
        if source is EntrySource.PHYSICAL_SCHEMA and not include_physical:
            continue
        index.add_term(label.value, node, source)
    return index


def graph_statistics(store: TripleStore) -> dict:
    """Node counts by metadata type (for Table 1 and Fig. 3 benches)."""

    def count(type_uri: str) -> int:
        return len(store.subjects(Vocab.TYPE, type_uri))

    return {
        "conceptual_entities": count(Vocab.CONCEPTUAL_ENTITY),
        "conceptual_attributes": count(Vocab.CONCEPTUAL_ATTRIBUTE),
        "logical_entities": count(Vocab.LOGICAL_ENTITY),
        "logical_attributes": count(Vocab.LOGICAL_ATTRIBUTE),
        "physical_tables": count(Vocab.PHYSICAL_TABLE),
        "physical_columns": count(Vocab.PHYSICAL_COLUMN),
        "join_nodes": count(Vocab.JOIN_NODE),
        "inheritance_nodes": count(Vocab.INHERITANCE_NODE),
        "ontology_terms": count(Vocab.ONTOLOGY_TERM),
        "business_terms": count(Vocab.BUSINESS_TERM),
        "dbpedia_terms": count(Vocab.DBPEDIA_TERM),
        "triples": len(store),
    }
