"""Deterministic synthetic data generators for the finbank warehouse.

All generators take a seeded :class:`random.Random`, so every build of
the warehouse is bit-for-bit reproducible.  The pools deliberately avoid
the sentinel values used by the experiment queries ("Sara", "Guttinger",
"Credit Suisse", "Gold", "Lehman", "YEN") so that those keywords hit
exactly the rows the gold standards expect.
"""

from __future__ import annotations

import datetime
import random
from typing import Sequence

GIVEN_NAMES = [
    "Anna", "Beat", "Carla", "Daniel", "Elena", "Felix", "Gina", "Hans",
    "Iris", "Jonas", "Karin", "Luca", "Maria", "Nico", "Olivia", "Paul",
    "Regula", "Stefan", "Tanja", "Urs", "Vera", "Walter", "Xenia", "Yves",
    "Zita", "Marco", "Petra", "Reto", "Silvia", "Thomas",
]

FAMILY_NAMES = [
    "Meier", "Mueller", "Schmid", "Keller", "Weber", "Huber", "Schneider",
    "Steiner", "Fischer", "Gerber", "Brunner", "Baumann", "Frei", "Zimmermann",
    "Moser", "Widmer", "Graf", "Roth", "Suter", "Kunz", "Wyss", "Lehmann",
    "Marti", "Berger", "Kaufmann", "Hofer", "Arnold", "Bucher",
]

ORG_NAMES = [
    "Alpine Trading AG", "Helvetia Partners", "Limmat Capital", "Uetliberg Fonds",
    "Sihl Ventures", "Glarus Metals AG", "Bernina Textiles", "Jungfrau Logistics",
    "Rigi Insurance Group", "Pilatus Engineering", "Matterhorn Foods",
    "Aare Chemicals", "Ticino Motors", "Basilea Pharma", "Geneva Watchworks",
    "Lausanne Robotics", "Lugano Shipping", "St Gallen Textil AG",
    "Winterthur Tools", "Zug Commodities", "Baden Energie", "Chur Holzbau",
    "Thun Optics", "Biel Precision", "Fribourg Dairy", "Neuchatel Horlogerie",
    "Schwyz Timber", "Uri Granit AG", "Davos Tourism Group", "Arosa Hotels",
    "Engadin Rail", "Valposchiavo Wines", "Jura Springs", "Solothurn Steel",
    "Appenzell Creamery", "Glattbrugg Aviation", "Oerlikon Gears",
    "Altstetten Media",
]

CITIES = [
    "Zurich", "Geneva", "Basel", "Bern", "Lausanne", "Lucerne", "Lugano",
    "St Gallen", "Winterthur", "Zug", "Chur", "Thun", "Munich", "Frankfurt",
    "Vienna", "Milan", "Paris", "London", "Tokyo", "Singapore",
]

COUNTRIES_BY_CITY = {
    "Zurich": "Switzerland", "Geneva": "Switzerland", "Basel": "Switzerland",
    "Bern": "Switzerland", "Lausanne": "Switzerland", "Lucerne": "Switzerland",
    "Lugano": "Switzerland", "St Gallen": "Switzerland",
    "Winterthur": "Switzerland", "Zug": "Switzerland", "Chur": "Switzerland",
    "Thun": "Switzerland", "Munich": "Germany", "Frankfurt": "Germany",
    "Vienna": "Austria", "Milan": "Italy", "Paris": "France",
    "London": "United Kingdom", "Tokyo": "Japan", "Singapore": "Singapore",
}

STREETS = [
    "Bahnhofstrasse", "Seestrasse", "Hauptstrasse", "Dorfstrasse",
    "Industriestrasse", "Museumstrasse", "Gartenweg", "Lindenhof",
    "Limmatquai", "Paradeplatz", "Marktgasse", "Schulhausweg",
]

INSTRUMENT_NAMES = [
    "Helvetia Equity Basket", "Alpine Bond Ladder", "Limmat Growth Fund",
    "Rigi Balanced Portfolio", "Pilatus Hedge Certificate", "Aare Income Note",
    "Matterhorn Momentum Fund", "Jungfrau Dividend Basket",
    "Sihl Convertible Note", "Uetliberg Index Tracker", "Ticino Credit Note",
    "Bernina Commodity Basket", "Glarus Real Estate Fund",
    "Engadin Infrastructure Fund", "Jura Small Cap Fund",
]

PRODUCT_NAMES = [
    "Helvetia Capital Note", "Alpine Protected Note", "Limmat Yield Booster",
    "Rigi Autocallable", "Pilatus Twin Win", "Aare Reverse Convertible",
    "Matterhorn Tracker", "Jungfrau Outperformance Note",
    "Sihl Barrier Note", "Uetliberg Bonus Certificate", "Ticino Step Down",
    "Bernina Capital Guarantee", "Glarus Express Note",
    "Engadin Income Builder", "Jura Participation Note",
    "Davos Multi Barrier", "Arosa Lookback Note", "Valposchiavo Digital Note",
    "Solothurn Range Accrual", "Appenzell Ladder Note",
]

AGREEMENT_KINDS = [
    "Custody Agreement", "Loan Agreement", "Framework Agreement",
    "Service Agreement", "Brokerage Agreement", "Advisory Agreement",
    "Clearing Agreement", "Settlement Agreement", "Escrow Agreement",
    "Collateral Agreement",
]

AGREEMENT_QUALIFIERS = [
    "Alpha", "Beta", "Gamma", "Delta", "Epsilon", "Omega", "Prime",
    "Select", "Global", "Swiss", "European", "Pacific",
]

CURRENCIES = [
    ("CHF", "Swiss Franc"),
    ("USD", "US Dollar"),
    ("EUR", "Euro"),
    ("GBP", "British Pound"),
    ("YEN", "Japanese Yen"),
    ("SEK", "Swedish Krona"),
]

LEGAL_FORMS = ["AG", "GmbH", "SA", "Ltd", "Cooperative"]

ROLES = ["EMPLOYEE", "DIRECTOR", "ADVISOR", "OWNER"]

ORDER_STATUSES = ["EXECUTED", "PENDING", "CANCELLED"]


def pick(rng: random.Random, pool: Sequence):
    """Deterministic random choice."""
    return pool[rng.randrange(len(pool))]


def random_date(
    rng: random.Random, start: datetime.date, end: datetime.date
) -> datetime.date:
    """Uniform date in [start, end]."""
    span = (end - start).days
    return start + datetime.timedelta(days=rng.randrange(span + 1))


def person_name(rng: random.Random) -> tuple:
    """A (given, family) pair from the pools (never a sentinel name)."""
    return pick(rng, GIVEN_NAMES), pick(rng, FAMILY_NAMES)


def org_name(rng: random.Random, used: set) -> str:
    """An organization name not used before (suffix numbers if exhausted)."""
    base = pick(rng, ORG_NAMES)
    if base not in used:
        used.add(base)
        return base
    counter = 2
    while f"{base} {counter}" in used:
        counter += 1
    name = f"{base} {counter}"
    used.add(name)
    return name


def address_row(rng: random.Random, address_id: int) -> tuple:
    """(id, street, city, country) with Swiss cities over-represented."""
    city = pick(rng, CITIES)
    street = f"{pick(rng, STREETS)} {rng.randrange(1, 120)}"
    return (address_id, street, city, COUNTRIES_BY_CITY[city])


def salary(rng: random.Random, wealthy: bool = False) -> float:
    """Annual salary; wealthy customers exceed the ontology threshold."""
    if wealthy:
        return float(rng.randrange(1_000_000, 5_000_000, 10_000))
    return float(rng.randrange(45_000, 400_000, 1_000))


def agreement_name(rng: random.Random) -> str:
    return f"{pick(rng, AGREEMENT_QUALIFIERS)} {pick(rng, AGREEMENT_KINDS)}"
