"""The *finbank* warehouse: the paper's running example, fully populated.

This is the mini-bank of Section 2 (Figs. 1, 2 and 10) extended just
enough to support all thirteen experiment queries of Table 2:

* three schema layers with refinement edges and cryptic physical names
  (``birth_dt``, ``agreements_td`` — the paper: physical names "never
  correspond" to the documented ones),
* mutually exclusive inheritance (parties / transactions / orders),
* bridge tables, including the ``associate_employment`` bridge *between
  inheritance siblings* of Fig. 10,
* a bi-temporal name-history table whose join key is **not annotated**
  in the metadata graph (the paper's explanation for Q2.x low recall),
* a customer domain ontology (with the "wealthy customers" metadata
  filter), a names ontology, metadata-defined aggregations ("trading
  volume", "investments") and a curated DBpedia synonym set.

Data is deterministic for a given seed; sentinel rows (Sara Guttinger,
Credit Suisse, the Gold Purchase Agreement, Lehman XYZ, YEN trades)
anchor the experiment queries.
"""

from __future__ import annotations

import datetime
import random

from repro.sqlengine.database import Database
from repro.warehouse import datagen
from repro.warehouse.dbpedia import DbpediaEntry
from repro.warehouse.model import (
    ConceptualEntity,
    EntityRelationship,
    Inheritance,
    JoinRelationship,
    LogicalEntity,
    PhysicalColumn,
    PhysicalTable,
    WarehouseDefinition,
)
from repro.warehouse.ontology import AggSpec, FilterSpec, Ontology, OntologyTerm
from repro.warehouse.warehouse import Warehouse


def _col(name, sql_type, refines=None, pk=False):
    return PhysicalColumn(
        name=name, sql_type=sql_type, refines=refines, primary_key=pk
    )


def build_definition() -> WarehouseDefinition:
    """The full metadata definition of the finbank warehouse."""
    conceptual = [
        ConceptualEntity("Parties", attributes=("party type",)),
        ConceptualEntity(
            "Individuals",
            attributes=("given name", "family name", "birth date", "salary"),
        ),
        ConceptualEntity(
            "Organizations", attributes=("company name", "legal form")
        ),
        ConceptualEntity("Addresses", attributes=("street", "city", "country")),
        ConceptualEntity(
            "Transactions", attributes=("transaction date", "amount")
        ),
        ConceptualEntity(
            "FinancialInstruments",
            attributes=("instrument name", "instrument type"),
            label="financial instruments",
        ),
        ConceptualEntity("Orders", attributes=("period", "status")),
        ConceptualEntity(
            "Agreements", attributes=("agreement name", "signing date")
        ),
        ConceptualEntity(
            "InvestmentProducts",
            attributes=("product name",),
            label="investment products",
        ),
        ConceptualEntity(
            "Investments", attributes=("amount", "currency", "investment date")
        ),
        ConceptualEntity("Currencies", attributes=("currency", "currency name")),
    ]

    logical = [
        LogicalEntity("Parties", attributes=("party type",), refines="Parties"),
        LogicalEntity(
            "Individuals",
            attributes=("given name", "family name", "birth date", "salary"),
            refines="Individuals",
        ),
        LogicalEntity(
            "Organizations",
            attributes=("company name", "legal form"),
            refines="Organizations",
        ),
        LogicalEntity(
            "IndividualNames",
            attributes=("given name", "family name", "valid from", "valid to"),
            label="individual names",
        ),
        LogicalEntity(
            "OrganizationNames",
            attributes=("company name", "valid from", "valid to"),
            label="organization names",
        ),
        LogicalEntity("Addresses", attributes=("street", "city", "country"),
                      refines="Addresses"),
        LogicalEntity(
            "Transactions", attributes=("transaction date",),
            refines="Transactions",
        ),
        LogicalEntity(
            "FinancialInstrumentTransactions",
            attributes=("amount", "transaction date"),
            refines="Transactions",
            label="financial instrument transactions",
        ),
        LogicalEntity(
            "MoneyTransactions",
            attributes=("amount", "currency"),
            refines="Transactions",
            label="money transactions",
        ),
        LogicalEntity(
            "FinancialInstruments",
            attributes=("instrument name", "instrument type"),
            refines="FinancialInstruments",
            label="financial instruments",
        ),
        LogicalEntity(
            "Securities", attributes=("isin",), refines="FinancialInstruments"
        ),
        LogicalEntity("Orders", attributes=("period", "status"), refines="Orders"),
        LogicalEntity(
            "TradeOrders",
            attributes=("quantity", "currency"),
            label="trade orders",
        ),
        LogicalEntity(
            "PaymentOrders",
            attributes=("amount", "currency"),
            label="payment orders",
        ),
        LogicalEntity(
            "Agreements",
            attributes=("agreement name", "signing date"),
            refines="Agreements",
        ),
        LogicalEntity(
            "InvestmentProducts",
            attributes=("product name",),
            refines="InvestmentProducts",
            label="investment products",
        ),
        LogicalEntity(
            "Investments",
            attributes=("amount", "currency", "investment date"),
            refines="Investments",
        ),
        LogicalEntity(
            "Currencies",
            attributes=("currency", "currency name"),
            refines="Currencies",
        ),
        LogicalEntity(
            "AssociateEmployment",
            attributes=("role",),
            label="associate employment",
        ),
    ]

    tables = [
        PhysicalTable(
            "parties",
            refines="Parties",
            columns=(
                _col("id", "INT", pk=True),
                _col("party_type_cd", "TEXT", refines=("Parties", "party type")),
                _col("created_dt", "DATE"),
            ),
        ),
        PhysicalTable(
            "individuals",
            refines="Individuals",
            columns=(
                _col("id", "INT", pk=True),
                _col("given_nm", "TEXT", refines=("Individuals", "given name")),
                _col("family_nm", "TEXT", refines=("Individuals", "family name")),
                _col("birth_dt", "DATE", refines=("Individuals", "birth date")),
                _col("salary", "REAL", refines=("Individuals", "salary")),
                _col("domicile_adr_id", "INT"),
            ),
        ),
        PhysicalTable(
            "organizations",
            refines="Organizations",
            columns=(
                _col("id", "INT", pk=True),
                _col("org_nm", "TEXT", refines=("Organizations", "company name")),
                _col(
                    "legal_form_cd", "TEXT",
                    refines=("Organizations", "legal form"),
                ),
                _col("domicile_adr_id", "INT"),
            ),
        ),
        PhysicalTable(
            "individual_name_hist",
            refines="IndividualNames",
            columns=(
                _col("hist_id", "INT", pk=True),
                _col("indiv_id", "INT"),
                _col("given_nm", "TEXT", refines=("IndividualNames", "given name")),
                _col(
                    "family_nm", "TEXT", refines=("IndividualNames", "family name")
                ),
                _col("valid_from_dt", "DATE",
                     refines=("IndividualNames", "valid from")),
                _col("valid_to_dt", "DATE", refines=("IndividualNames", "valid to")),
            ),
        ),
        PhysicalTable(
            "organization_name_hist",
            refines="OrganizationNames",
            columns=(
                _col("hist_id", "INT", pk=True),
                _col("org_id", "INT"),
                _col(
                    "org_nm", "TEXT", refines=("OrganizationNames", "company name")
                ),
                _col("valid_from_dt", "DATE",
                     refines=("OrganizationNames", "valid from")),
                _col("valid_to_dt", "DATE",
                     refines=("OrganizationNames", "valid to")),
            ),
        ),
        PhysicalTable(
            "associate_employment",
            refines="AssociateEmployment",
            columns=(
                _col("indiv_id", "INT"),
                _col("org_id", "INT"),
                _col("role_cd", "TEXT", refines=("AssociateEmployment", "role")),
            ),
        ),
        PhysicalTable(
            "addresses",
            refines="Addresses",
            columns=(
                _col("id", "INT", pk=True),
                _col("street", "TEXT", refines=("Addresses", "street")),
                _col("city", "TEXT", refines=("Addresses", "city")),
                _col("country", "TEXT", refines=("Addresses", "country")),
            ),
        ),
        PhysicalTable(
            "party_address",
            columns=(
                _col("party_id", "INT"),
                _col("adr_id", "INT"),
                _col("adr_type_cd", "TEXT"),
            ),
        ),
        PhysicalTable(
            "transactions",
            refines="Transactions",
            columns=(
                _col("id", "INT", pk=True),
                _col("from_party_id", "INT"),
                _col("to_party_id", "INT"),
                _col("trx_dt", "DATE", refines=("Transactions", "transaction date")),
            ),
        ),
        PhysicalTable(
            "fi_transactions",
            refines="FinancialInstrumentTransactions",
            columns=(
                _col("id", "INT", pk=True),
                _col("instr_id", "INT"),
                _col(
                    "amount", "REAL",
                    refines=("FinancialInstrumentTransactions", "amount"),
                ),
                _col(
                    "transactiondate", "DATE",
                    refines=("FinancialInstrumentTransactions", "transaction date"),
                ),
            ),
        ),
        PhysicalTable(
            "money_transactions",
            refines="MoneyTransactions",
            columns=(
                _col("id", "INT", pk=True),
                _col("currency_cd", "TEXT",
                     refines=("MoneyTransactions", "currency")),
                _col("amount", "REAL", refines=("MoneyTransactions", "amount")),
            ),
        ),
        PhysicalTable(
            "financial_instruments",
            refines="FinancialInstruments",
            columns=(
                _col("id", "INT", pk=True),
                _col(
                    "instr_nm", "TEXT",
                    refines=("FinancialInstruments", "instrument name"),
                ),
                _col(
                    "instr_type_cd", "TEXT",
                    refines=("FinancialInstruments", "instrument type"),
                ),
            ),
        ),
        PhysicalTable(
            "securities",
            refines="Securities",
            columns=(
                _col("id", "INT", pk=True),
                _col("isin", "TEXT", refines=("Securities", "isin")),
                _col("issuer_org_id", "INT"),
            ),
        ),
        PhysicalTable(
            "fi_contains_sec",
            columns=(
                _col("fi_id", "INT"),
                _col("sec_id", "INT"),
            ),
        ),
        PhysicalTable(
            "orders_td",
            refines="Orders",
            columns=(
                _col("id", "INT", pk=True),
                _col("party_id", "INT"),
                _col("order_period_dt", "DATE", refines=("Orders", "period")),
                _col("status_cd", "TEXT", refines=("Orders", "status")),
            ),
        ),
        PhysicalTable(
            "trade_orders",
            refines="TradeOrders",
            columns=(
                _col("id", "INT", pk=True),
                _col("instr_id", "INT"),
                _col("currency_cd", "TEXT", refines=("TradeOrders", "currency")),
                _col("quantity", "INT", refines=("TradeOrders", "quantity")),
            ),
        ),
        PhysicalTable(
            "payment_orders",
            refines="PaymentOrders",
            columns=(
                _col("id", "INT", pk=True),
                _col("currency_cd", "TEXT", refines=("PaymentOrders", "currency")),
                _col("amount", "REAL", refines=("PaymentOrders", "amount")),
            ),
        ),
        PhysicalTable(
            "currencies",
            refines="Currencies",
            columns=(
                _col("currency_cd", "TEXT", refines=("Currencies", "currency"),
                     pk=True),
                _col("currency_nm", "TEXT",
                     refines=("Currencies", "currency name")),
            ),
        ),
        PhysicalTable(
            "agreements_td",
            refines="Agreements",
            columns=(
                _col("id", "INT", pk=True),
                _col("party_id", "INT"),
                _col(
                    "agreement_nm", "TEXT",
                    refines=("Agreements", "agreement name"),
                ),
                _col("signed_dt", "DATE", refines=("Agreements", "signing date")),
            ),
        ),
        PhysicalTable(
            "investment_products",
            refines="InvestmentProducts",
            columns=(
                _col("id", "INT", pk=True),
                _col(
                    "product_nm", "TEXT",
                    refines=("InvestmentProducts", "product name"),
                ),
                _col("issuer_org_id", "INT"),
            ),
        ),
        PhysicalTable(
            "investments_td",
            refines="Investments",
            columns=(
                _col("id", "INT", pk=True),
                _col("party_id", "INT"),
                _col("currency_cd", "TEXT", refines=("Investments", "currency")),
                _col("amount", "REAL", refines=("Investments", "amount")),
                _col("invest_dt", "DATE", refines=("Investments",
                                                   "investment date")),
            ),
        ),
    ]

    joins = [
        JoinRelationship("j_individuals_parties", "individuals", "id",
                         "parties", "id", kind="inheritance"),
        JoinRelationship("j_organizations_parties", "organizations", "id",
                         "parties", "id", kind="inheritance"),
        # the paper's bi-temporal historization gap: this key exists in the
        # database but is NOT annotated in the schema graph
        JoinRelationship("j_indiv_name_hist", "individual_name_hist", "indiv_id",
                         "individuals", "id", annotated=False),
        JoinRelationship("j_org_name_hist", "organization_name_hist", "org_id",
                         "organizations", "id"),
        JoinRelationship("j_assoc_indiv", "associate_employment", "indiv_id",
                         "individuals", "id", kind="bridge"),
        JoinRelationship("j_assoc_org", "associate_employment", "org_id",
                         "organizations", "id", kind="bridge"),
        JoinRelationship("j_indiv_domicile", "individuals", "domicile_adr_id",
                         "addresses", "id"),
        JoinRelationship("j_org_domicile", "organizations", "domicile_adr_id",
                         "addresses", "id"),
        JoinRelationship("j_party_address_party", "party_address", "party_id",
                         "parties", "id", kind="bridge"),
        JoinRelationship("j_party_address_adr", "party_address", "adr_id",
                         "addresses", "id", kind="bridge"),
        JoinRelationship("j_trx_from_party", "transactions", "from_party_id",
                         "parties", "id"),
        JoinRelationship("j_trx_to_party", "transactions", "to_party_id",
                         "parties", "id"),
        JoinRelationship("j_fi_trx_trx", "fi_transactions", "id",
                         "transactions", "id", kind="inheritance"),
        JoinRelationship("j_money_trx_trx", "money_transactions", "id",
                         "transactions", "id", kind="inheritance"),
        JoinRelationship("j_fi_trx_instr", "fi_transactions", "instr_id",
                         "financial_instruments", "id"),
        JoinRelationship("j_money_trx_ccy", "money_transactions", "currency_cd",
                         "currencies", "currency_cd"),
        JoinRelationship("j_fics_fi", "fi_contains_sec", "fi_id",
                         "financial_instruments", "id", kind="bridge"),
        JoinRelationship("j_fics_sec", "fi_contains_sec", "sec_id",
                         "securities", "id", kind="bridge"),
        JoinRelationship("j_sec_issuer", "securities", "issuer_org_id",
                         "organizations", "id"),
        JoinRelationship("j_orders_party", "orders_td", "party_id",
                         "parties", "id"),
        JoinRelationship("j_trade_orders_orders", "trade_orders", "id",
                         "orders_td", "id", kind="inheritance"),
        JoinRelationship("j_payment_orders_orders", "payment_orders", "id",
                         "orders_td", "id", kind="inheritance"),
        JoinRelationship("j_trade_orders_instr", "trade_orders", "instr_id",
                         "investment_products", "id"),
        JoinRelationship("j_trade_orders_ccy", "trade_orders", "currency_cd",
                         "currencies", "currency_cd"),
        JoinRelationship("j_payment_orders_ccy", "payment_orders", "currency_cd",
                         "currencies", "currency_cd"),
        JoinRelationship("j_agreements_party", "agreements_td", "party_id",
                         "parties", "id"),
        JoinRelationship("j_inv_party", "investments_td", "party_id",
                         "parties", "id"),
        JoinRelationship("j_inv_ccy", "investments_td", "currency_cd",
                         "currencies", "currency_cd"),
        JoinRelationship("j_invprod_issuer", "investment_products",
                         "issuer_org_id", "organizations", "id"),
    ]

    inheritances = [
        Inheritance("inh_parties", "parties",
                    ("individuals", "organizations"), layer="physical"),
        Inheritance("inh_transactions", "transactions",
                    ("fi_transactions", "money_transactions"), layer="physical"),
        Inheritance("inh_orders", "orders_td",
                    ("trade_orders", "payment_orders"), layer="physical"),
        Inheritance("inh_l_parties", "Parties",
                    ("Individuals", "Organizations"), layer="logical"),
        Inheritance("inh_l_transactions", "Transactions",
                    ("FinancialInstrumentTransactions", "MoneyTransactions"),
                    layer="logical"),
        Inheritance("inh_l_orders", "Orders",
                    ("TradeOrders", "PaymentOrders"), layer="logical"),
    ]

    ontologies = [
        Ontology(
            name="customer_ontology",
            terms=(
                OntologyTerm("customers", classifies=("conceptual:Parties",)),
                OntologyTerm(
                    "private customers", classifies=("logical:Individuals",)
                ),
                OntologyTerm(
                    "corporate customers", classifies=("logical:Organizations",)
                ),
                OntologyTerm(
                    "wealthy customers",
                    classifies=("logical:Individuals",),
                    filter=FilterSpec("individuals", "salary", ">=", 1_000_000),
                ),
            ),
        ),
        Ontology(
            name="names_ontology",
            terms=(
                OntologyTerm(
                    "names",
                    classifies=(
                        "column:individuals.family_nm",
                        "column:organization_name_hist.org_nm",
                    ),
                ),
            ),
        ),
        Ontology(
            name="product_ontology",
            terms=(
                OntologyTerm(
                    "trading volume",
                    classifies=("column:fi_transactions.amount",),
                    aggregation=AggSpec("sum", "fi_transactions", "amount"),
                ),
                OntologyTerm(
                    "investments",
                    classifies=("column:investments_td.amount",),
                    aggregation=AggSpec("sum", "investments_td", "amount"),
                ),
            ),
        ),
    ]

    dbpedia = [
        DbpediaEntry("client", synonym_of=("ontology:customers",)),
        DbpediaEntry("political organization",
                     synonym_of=("logical:Organizations",)),
        DbpediaEntry("company", synonym_of=("logical:Organizations",)),
        DbpediaEntry("firm", synonym_of=("logical:Organizations",)),
        DbpediaEntry("stock", synonym_of=("logical:Securities",)),
        DbpediaEntry("share", synonym_of=("logical:Securities",)),
        DbpediaEntry("payment", synonym_of=("logical:PaymentOrders",)),
        DbpediaEntry("birthday", synonym_of=("column:individuals.birth_dt",)),
        DbpediaEntry("wage", synonym_of=("column:individuals.salary",)),
        DbpediaEntry("revenue", synonym_of=("ontology:trading volume",)),
    ]

    conceptual_relationships = [
        EntityRelationship("r_parties_transactions", "conceptual", "Parties",
                           "Transactions", kind="nn"),
        EntityRelationship("r_transactions_fi", "conceptual", "Transactions",
                           "FinancialInstruments", kind="n1"),
        EntityRelationship("r_fi_fi", "conceptual", "FinancialInstruments",
                           "FinancialInstruments", kind="nn"),
        EntityRelationship("r_parties_agreements", "conceptual", "Parties",
                           "Agreements", kind="n1"),
        EntityRelationship("r_parties_orders", "conceptual", "Parties",
                           "Orders", kind="n1"),
        EntityRelationship("r_parties_investments", "conceptual", "Parties",
                           "Investments", kind="n1"),
    ]
    logical_relationships = [
        EntityRelationship("r_l_indiv_addresses", "logical", "Individuals",
                           "Addresses", kind="n1"),
        EntityRelationship("r_l_parties_addresses", "logical", "Parties",
                           "Addresses", kind="nn"),
        EntityRelationship("r_l_fi_securities", "logical",
                           "FinancialInstruments", "Securities", kind="nn"),
        EntityRelationship("r_l_assoc", "logical", "Individuals",
                           "Organizations", kind="nn"),
        EntityRelationship("r_l_orders_products", "logical", "TradeOrders",
                           "InvestmentProducts", kind="n1"),
        EntityRelationship("r_l_inv_ccy", "logical", "Investments",
                           "Currencies", kind="n1"),
    ]

    definition = WarehouseDefinition(
        name="finbank",
        conceptual_entities=conceptual,
        conceptual_relationships=conceptual_relationships,
        logical_entities=logical,
        logical_relationships=logical_relationships,
        physical_tables=tables,
        join_relationships=joins,
        inheritances=inheritances,
        ontologies=ontologies,
        dbpedia=dbpedia,
    )
    definition.validate()
    return definition


# ---------------------------------------------------------------------------
# data population
# ---------------------------------------------------------------------------

#: Fixed ids of the sentinel rows used by the experiment queries.
SARA_ID = 1
CREDIT_SUISSE_ORG_ID = 1001
SARA_CONSULTING_ORG_ID = 1002
GOLD_AGREEMENT_ID = 30001
LEHMAN_PRODUCT_ID = 40001


def populate(
    database: Database,
    seed: int = 42,
    scale: float = 1.0,
) -> None:
    """Load deterministic synthetic data into the finbank tables."""
    rng = random.Random(seed)
    n_individuals = max(20, int(120 * scale))
    n_orgs = max(8, int(40 * scale))
    n_addresses = max(20, int(150 * scale))
    n_transactions = max(60, int(600 * scale))
    n_orders = max(40, int(300 * scale))
    n_agreements = max(12, int(60 * scale))
    n_investments = max(30, int(200 * scale))
    n_instruments = max(15, int(60 * scale))
    n_securities = max(8, int(35 * scale))
    n_products = max(8, int(20 * scale))

    individual_ids = list(range(1, n_individuals + 1))
    org_ids = list(range(1001, 1001 + n_orgs))
    address_ids = list(range(1, n_addresses + 1))

    # -- addresses --------------------------------------------------------
    addresses = []
    for address_id in address_ids:
        addresses.append(datagen.address_row(rng, address_id))
    # address 1 is pinned: Sara lives in Zurich, Switzerland
    addresses[0] = (1, "Bahnhofstrasse 21", "Zurich", "Switzerland")
    database.insert_rows("addresses", addresses)

    # -- parties / individuals / organizations -----------------------------
    party_rows = []
    individual_rows = []
    hist_rows = []
    hist_id = 1
    wealthy = set(rng.sample(individual_ids, max(2, n_individuals // 15)))
    for indiv_id in individual_ids:
        given, family = datagen.person_name(rng)
        birth = datagen.random_date(
            rng, datetime.date(1950, 1, 1), datetime.date(1995, 12, 31)
        )
        pay = datagen.salary(rng, wealthy=indiv_id in wealthy)
        domicile = (
            datagen.pick(rng, address_ids) if rng.random() < 0.4 else None
        )
        if indiv_id == SARA_ID:
            given, family = "Sara", "Guttinger"
            birth = datetime.date(1981, 4, 23)
            pay = 120_000.0
            domicile = 1
        individual_rows.append((indiv_id, given, family, birth, pay, domicile))
        party_rows.append(
            (indiv_id, "I",
             datagen.random_date(rng, datetime.date(1990, 1, 1),
                                 datetime.date(2011, 12, 31)))
        )
        # current name row
        hist_rows.append(
            (hist_id, indiv_id, given, family,
             birth + datetime.timedelta(days=365 * 18), None)
        )
        hist_id += 1
        # individuals 2..5 carried the given name "Sara" in the past:
        # the gold standard finds five Saras, the snapshot only one
        if indiv_id in (2, 3, 4, 5):
            hist_rows.append(
                (hist_id, indiv_id, "Sara", family,
                 birth + datetime.timedelta(days=365 * 18),
                 datetime.date(2005, 6, 30))
            )
            hist_id += 1
        elif rng.random() < 0.3:
            __, old_family = datagen.person_name(rng)
            hist_rows.append(
                (hist_id, indiv_id, given, old_family,
                 birth + datetime.timedelta(days=365 * 18),
                 datetime.date(2008, 1, 1))
            )
            hist_id += 1

    used_org_names: set = set()
    org_rows = []
    org_hist_rows = []
    org_hist_id = 1
    for org_id in org_ids:
        name = datagen.org_name(rng, used_org_names)
        if org_id == CREDIT_SUISSE_ORG_ID:
            name = "Credit Suisse"
        elif org_id == SARA_CONSULTING_ORG_ID:
            name = "Sara Consulting GmbH"
        legal_form = datagen.pick(rng, datagen.LEGAL_FORMS)
        domicile = (
            datagen.pick(rng, address_ids) if rng.random() < 0.9 else None
        )
        org_rows.append((org_id, name, legal_form, domicile))
        party_rows.append(
            (org_id, "O",
             datagen.random_date(rng, datetime.date(1990, 1, 1),
                                 datetime.date(2011, 12, 31)))
        )
        # name history: one current row plus two historical names
        org_hist_rows.append(
            (org_hist_id, org_id, name, datetime.date(2009, 1, 1), None)
        )
        org_hist_id += 1
        old_names = (
            ["Schweizerische Kreditanstalt", "CS Holding"]
            if org_id == CREDIT_SUISSE_ORG_ID
            else [f"{name} Holding", f"{name} Group"]
        )
        for position, old_name in enumerate(old_names):
            org_hist_rows.append(
                (org_hist_id, org_id, old_name,
                 datetime.date(1995 + 5 * position, 1, 1),
                 datetime.date(2000 + 4 * position, 12, 31))
            )
            org_hist_id += 1

    database.insert_rows("parties", party_rows)
    database.insert_rows("individuals", individual_rows)
    database.insert_rows("organizations", org_rows)
    database.insert_rows("individual_name_hist", hist_rows)
    database.insert_rows("organization_name_hist", org_hist_rows)

    # -- party_address (the authoritative link, used by the gold standard) --
    party_address_rows = []
    for indiv_id, __, __, __, __, domicile in individual_rows:
        adr = domicile if domicile is not None else datagen.pick(rng, address_ids)
        party_address_rows.append((indiv_id, adr, "HOME"))
    for org_id, __, __, domicile in org_rows:
        adr = domicile if domicile is not None else datagen.pick(rng, address_ids)
        party_address_rows.append((org_id, adr, "REGISTERED"))
    database.insert_rows("party_address", party_address_rows)

    # -- associate employment (Fig. 10: bridge between siblings) -----------
    employment_pairs = set()
    employment_rows = []
    while len(employment_rows) < max(10, int(35 * scale)):
        pair = (datagen.pick(rng, individual_ids), datagen.pick(rng, org_ids))
        if pair in employment_pairs:
            continue
        employment_pairs.add(pair)
        employment_rows.append((*pair, datagen.pick(rng, datagen.ROLES)))
    database.insert_rows("associate_employment", employment_rows)

    # -- currencies ----------------------------------------------------------
    database.insert_rows("currencies", datagen.CURRENCIES)
    currency_codes = [code for code, __ in datagen.CURRENCIES]

    # -- financial instruments / securities ---------------------------------
    instrument_ids = list(range(3001, 3001 + n_instruments))
    instrument_rows = []
    for position, instr_id in enumerate(instrument_ids):
        base = datagen.INSTRUMENT_NAMES[position % len(datagen.INSTRUMENT_NAMES)]
        suffix = "" if position < len(datagen.INSTRUMENT_NAMES) else f" {position}"
        instr_type = datagen.pick(rng, ["FUND", "SHARE", "CERT"])
        instrument_rows.append((instr_id, base + suffix, instr_type))
    database.insert_rows("financial_instruments", instrument_rows)

    security_ids = list(range(7001, 7001 + n_securities))
    security_rows = [
        (sec_id, f"CH{sec_id:010d}", datagen.pick(rng, org_ids))
        for sec_id in security_ids
    ]
    database.insert_rows("securities", security_rows)

    contains_rows = set()
    while len(contains_rows) < max(20, int(80 * scale)):
        contains_rows.add(
            (datagen.pick(rng, instrument_ids), datagen.pick(rng, security_ids))
        )
    database.insert_rows("fi_contains_sec", sorted(contains_rows))

    # -- transactions ---------------------------------------------------------
    transaction_ids = list(range(9001, 9001 + n_transactions))
    n_fi_trx = (2 * n_transactions) // 3
    transaction_rows = []
    fi_trx_rows = []
    money_trx_rows = []
    for position, trx_id in enumerate(transaction_ids):
        trx_date = datagen.random_date(
            rng, datetime.date(2009, 1, 1), datetime.date(2011, 12, 31)
        )
        transaction_rows.append(
            (trx_id, datagen.pick(rng, individual_ids),
             datagen.pick(rng, org_ids), trx_date)
        )
        if position < n_fi_trx:
            fi_trx_rows.append(
                (trx_id, datagen.pick(rng, instrument_ids),
                 float(rng.randrange(1_000, 500_000, 500)), trx_date)
            )
        else:
            money_trx_rows.append(
                (trx_id, datagen.pick(rng, currency_codes),
                 float(rng.randrange(100, 80_000, 50)))
            )
    database.insert_rows("transactions", transaction_rows)
    database.insert_rows("fi_transactions", fi_trx_rows)
    database.insert_rows("money_transactions", money_trx_rows)

    # -- investment products ---------------------------------------------------
    product_ids = list(range(40001, 40001 + n_products))
    product_rows = []
    for position, product_id in enumerate(product_ids):
        if product_id == LEHMAN_PRODUCT_ID:
            name = "Lehman XYZ Certificate"
        else:
            name = datagen.PRODUCT_NAMES[position % len(datagen.PRODUCT_NAMES)]
            if position >= len(datagen.PRODUCT_NAMES):
                name = f"{name} {position}"
        product_rows.append((product_id, name, datagen.pick(rng, org_ids)))
    database.insert_rows("investment_products", product_rows)

    # -- orders -----------------------------------------------------------------
    order_ids = list(range(20001, 20001 + n_orders))
    n_trade_orders = (2 * n_orders) // 3
    order_rows = []
    trade_order_rows = []
    payment_order_rows = []
    all_party_ids = individual_ids + org_ids
    for position, order_id in enumerate(order_ids):
        period = datagen.random_date(
            rng, datetime.date(2011, 1, 1), datetime.date(2011, 12, 31)
        )
        status = "EXECUTED" if rng.random() < 0.5 else datagen.pick(
            rng, ["PENDING", "CANCELLED"]
        )
        order_rows.append(
            (order_id, datagen.pick(rng, all_party_ids), period, status)
        )
        if position < n_trade_orders:
            currency = "YEN" if rng.random() < 0.15 else datagen.pick(
                rng, currency_codes
            )
            trade_order_rows.append(
                (order_id, datagen.pick(rng, product_ids), currency,
                 rng.randrange(1, 5_000))
            )
        else:
            payment_order_rows.append(
                (order_id, datagen.pick(rng, currency_codes),
                 float(rng.randrange(100, 50_000, 50)))
            )
    database.insert_rows("orders_td", order_rows)
    database.insert_rows("trade_orders", trade_order_rows)
    database.insert_rows("payment_orders", payment_order_rows)

    # -- agreements ---------------------------------------------------------------
    agreement_ids = list(range(30001, 30001 + n_agreements))
    agreement_rows = []
    special_names = {
        GOLD_AGREEMENT_ID: "Gold Purchase Agreement",
        30002: "Credit Suisse Master Agreement",
        30003: "Credit Suisse Loan Agreement 2011",
        30004: "Credit Suisse Custody Agreement",
    }
    for agreement_id in agreement_ids:
        name = special_names.get(agreement_id) or datagen.agreement_name(rng)
        agreement_rows.append(
            (agreement_id, datagen.pick(rng, all_party_ids), name,
             datagen.random_date(rng, datetime.date(2005, 1, 1),
                                 datetime.date(2011, 12, 31)))
        )
    database.insert_rows("agreements_td", agreement_rows)

    # -- investments -----------------------------------------------------------------
    investment_ids = list(range(50001, 50001 + n_investments))
    investment_rows = [
        (investment_id, datagen.pick(rng, all_party_ids),
         datagen.pick(rng, currency_codes),
         float(rng.randrange(1_000, 900_000, 500)),
         datagen.random_date(rng, datetime.date(2008, 1, 1),
                             datetime.date(2011, 12, 31)))
        for investment_id in investment_ids
    ]
    database.insert_rows("investments_td", investment_rows)


def build_minibank(
    seed: int = 42,
    scale: float = 1.0,
    snapshot: "str | None" = None,
    engine_config=None,
) -> Warehouse:
    """Build the fully populated finbank warehouse.

    *snapshot* warm-starts the indexes from a saved snapshot file when
    it matches the populated catalog (see :meth:`Warehouse.build`);
    *engine_config* (an :class:`~repro.sqlengine.config.EngineConfig`)
    configures the SQL engine the warehouse is built on.

    >>> warehouse = build_minibank(scale=0.2)
    >>> warehouse.database.row_count('currencies')
    6
    """
    definition = build_definition()
    return Warehouse.build(
        definition,
        populate=lambda db: populate(db, seed=seed, scale=scale),
        snapshot=snapshot,
        engine_config=engine_config,
    )
