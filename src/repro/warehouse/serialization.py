"""JSON (de)serialization of warehouse definitions.

A :class:`~repro.warehouse.model.WarehouseDefinition` is a plain
declarative object, so real deployments would maintain it as a document
next to their metadata warehouse.  This module converts a definition to
a JSON-compatible dict and back, round-trip safe, so that warehouses can
be defined in files rather than code::

    definition = load_definition("my_warehouse.json")
    warehouse = Warehouse.build(definition)
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import WarehouseError
from repro.warehouse.dbpedia import DbpediaEntry
from repro.warehouse.model import (
    ConceptualEntity,
    EntityRelationship,
    Inheritance,
    JoinRelationship,
    LogicalEntity,
    PhysicalColumn,
    PhysicalTable,
    WarehouseDefinition,
)
from repro.warehouse.ontology import AggSpec, FilterSpec, Ontology, OntologyTerm

FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# to dict
# ---------------------------------------------------------------------------


def definition_to_dict(definition: WarehouseDefinition) -> dict:
    """A JSON-compatible representation of *definition*."""
    return {
        "format_version": FORMAT_VERSION,
        "name": definition.name,
        "conceptual_entities": [
            {
                "name": entity.name,
                "attributes": list(entity.attributes),
                "label": entity.label,
            }
            for entity in definition.conceptual_entities
        ],
        "conceptual_relationships": [
            _relationship_to_dict(rel)
            for rel in definition.conceptual_relationships
        ],
        "logical_entities": [
            {
                "name": entity.name,
                "attributes": list(entity.attributes),
                "refines": entity.refines,
                "label": entity.label,
            }
            for entity in definition.logical_entities
        ],
        "logical_relationships": [
            _relationship_to_dict(rel)
            for rel in definition.logical_relationships
        ],
        "physical_tables": [
            {
                "name": table.name,
                "refines": table.refines,
                "label": table.label,
                "columns": [
                    {
                        "name": column.name,
                        "sql_type": column.sql_type,
                        "label": column.label,
                        "refines": list(column.refines)
                        if column.refines
                        else None,
                        "primary_key": column.primary_key,
                    }
                    for column in table.columns
                ],
            }
            for table in definition.physical_tables
        ],
        "join_relationships": [
            {
                "name": join.name,
                "left_table": join.left_table,
                "left_column": join.left_column,
                "right_table": join.right_table,
                "right_column": join.right_column,
                "kind": join.kind,
                "annotated": join.annotated,
                "ignored": join.ignored,
            }
            for join in definition.join_relationships
        ],
        "inheritances": [
            {
                "name": inheritance.name,
                "parent": inheritance.parent,
                "children": list(inheritance.children),
                "layer": inheritance.layer,
            }
            for inheritance in definition.inheritances
        ],
        "ontologies": [
            {
                "name": ontology.name,
                "terms": [_term_to_dict(term) for term in ontology.terms],
            }
            for ontology in definition.ontologies
        ],
        "dbpedia": [
            {"term": entry.term, "synonym_of": list(entry.synonym_of)}
            for entry in definition.dbpedia
        ],
    }


def _relationship_to_dict(rel: EntityRelationship) -> dict:
    return {
        "name": rel.name,
        "layer": rel.layer,
        "left": rel.left,
        "right": rel.right,
        "kind": rel.kind,
    }


def _term_to_dict(term: OntologyTerm) -> dict:
    payload: dict = {
        "term": term.term,
        "classifies": list(term.classifies),
    }
    if term.filter is not None:
        payload["filter"] = {
            "table": term.filter.table,
            "column": term.filter.column,
            "op": term.filter.op,
            "value": term.filter.value,
        }
    if term.aggregation is not None:
        payload["aggregation"] = {
            "func": term.aggregation.func,
            "table": term.aggregation.table,
            "column": term.aggregation.column,
        }
    return payload


# ---------------------------------------------------------------------------
# from dict
# ---------------------------------------------------------------------------


def definition_from_dict(payload: dict) -> WarehouseDefinition:
    """Rebuild a definition from :func:`definition_to_dict` output."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise WarehouseError(
            f"unsupported warehouse format version: {version!r}"
        )
    definition = WarehouseDefinition(
        name=payload["name"],
        conceptual_entities=[
            ConceptualEntity(
                name=item["name"],
                attributes=tuple(item.get("attributes", ())),
                label=item.get("label"),
            )
            for item in payload.get("conceptual_entities", [])
        ],
        conceptual_relationships=[
            _relationship_from_dict(item)
            for item in payload.get("conceptual_relationships", [])
        ],
        logical_entities=[
            LogicalEntity(
                name=item["name"],
                attributes=tuple(item.get("attributes", ())),
                refines=item.get("refines"),
                label=item.get("label"),
            )
            for item in payload.get("logical_entities", [])
        ],
        logical_relationships=[
            _relationship_from_dict(item)
            for item in payload.get("logical_relationships", [])
        ],
        physical_tables=[
            PhysicalTable(
                name=item["name"],
                refines=item.get("refines"),
                label=item.get("label"),
                columns=tuple(
                    PhysicalColumn(
                        name=column["name"],
                        sql_type=column["sql_type"],
                        label=column.get("label"),
                        refines=tuple(column["refines"])
                        if column.get("refines")
                        else None,
                        primary_key=column.get("primary_key", False),
                    )
                    for column in item["columns"]
                ),
            )
            for item in payload.get("physical_tables", [])
        ],
        join_relationships=[
            JoinRelationship(
                name=item["name"],
                left_table=item["left_table"],
                left_column=item["left_column"],
                right_table=item["right_table"],
                right_column=item["right_column"],
                kind=item.get("kind", "fk"),
                annotated=item.get("annotated", True),
                ignored=item.get("ignored", False),
            )
            for item in payload.get("join_relationships", [])
        ],
        inheritances=[
            Inheritance(
                name=item["name"],
                parent=item["parent"],
                children=tuple(item["children"]),
                layer=item.get("layer", "physical"),
            )
            for item in payload.get("inheritances", [])
        ],
        ontologies=[
            Ontology(
                name=item["name"],
                terms=tuple(
                    _term_from_dict(term) for term in item.get("terms", [])
                ),
            )
            for item in payload.get("ontologies", [])
        ],
        dbpedia=[
            DbpediaEntry(
                term=item["term"], synonym_of=tuple(item.get("synonym_of", ()))
            )
            for item in payload.get("dbpedia", [])
        ],
    )
    definition.validate()
    return definition


def _relationship_from_dict(item: dict) -> EntityRelationship:
    return EntityRelationship(
        name=item["name"],
        layer=item["layer"],
        left=item["left"],
        right=item["right"],
        kind=item.get("kind", "n1"),
    )


def _term_from_dict(item: dict) -> OntologyTerm:
    filter_spec = None
    if "filter" in item:
        raw = item["filter"]
        filter_spec = FilterSpec(
            table=raw["table"], column=raw["column"], op=raw["op"],
            value=raw["value"],
        )
    agg_spec = None
    if "aggregation" in item:
        raw = item["aggregation"]
        agg_spec = AggSpec(
            func=raw["func"], table=raw["table"], column=raw["column"]
        )
    return OntologyTerm(
        term=item["term"],
        classifies=tuple(item.get("classifies", ())),
        filter=filter_spec,
        aggregation=agg_spec,
    )


# ---------------------------------------------------------------------------
# file helpers
# ---------------------------------------------------------------------------


def save_definition(definition: WarehouseDefinition, path) -> None:
    """Write a definition to a JSON file."""
    Path(path).write_text(
        json.dumps(definition_to_dict(definition), indent=2, sort_keys=True)
    )


def load_definition(path) -> WarehouseDefinition:
    """Read a definition from a JSON file (validated)."""
    return definition_from_dict(json.loads(Path(path).read_text()))
