"""Parameterised large-schema generator (Table 1 scale).

The paper's Table 1 reports the complexity of the Credit Suisse schema
graph: 226 conceptual entities / 985 attributes / 243 relationships,
436 logical entities / 2700 attributes / 254 relationships, 472 physical
tables / 3181 columns.  This generator produces a synthetic
:class:`~repro.warehouse.model.WarehouseDefinition` with *exactly* those
cardinalities (or any other configuration), including multi-level
inheritance, bridge tables between siblings and cryptic physical names —
the structural features the paper calls out.

The generated warehouse is metadata-only by default (0 rows); it is
meant for schema-scale benchmarks (graph build, lookup, traversal), not
for precision/recall experiments (those run on the finbank warehouse).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.warehouse.model import (
    ConceptualEntity,
    EntityRelationship,
    Inheritance,
    JoinRelationship,
    LogicalEntity,
    PhysicalColumn,
    PhysicalTable,
    WarehouseDefinition,
)

_DOMAIN_WORDS = [
    "party", "account", "position", "trade", "order", "risk", "limit",
    "exposure", "collateral", "facility", "product", "instrument", "rating",
    "branch", "region", "portfolio", "settlement", "custody", "ledger",
    "balance", "fee", "margin", "swap", "option", "bond", "loan", "deposit",
    "mandate", "advisor", "desk", "book", "counterparty", "issuer", "market",
    "index", "quote", "valuation", "scenario", "stress", "report",
]

_ATTRIBUTE_WORDS = [
    "amount", "status", "type", "code", "name", "date", "rate", "value",
    "currency", "quantity", "flag", "level", "category", "source", "target",
    "priority", "version", "region", "channel", "owner",
]


@dataclass(frozen=True)
class SyntheticConfig:
    """Cardinality targets; defaults reproduce the paper's Table 1."""

    conceptual_entities: int = 226
    conceptual_attributes: int = 985
    conceptual_relationships: int = 243
    logical_entities: int = 436
    logical_attributes: int = 2700
    logical_relationships: int = 254
    physical_tables: int = 472
    physical_columns: int = 3181
    inheritance_share: float = 0.08  # fraction of tables in inheritance trees
    seed: int = 7

    def scaled(self, factor: float) -> "SyntheticConfig":
        """A smaller/larger configuration with the same proportions."""
        return SyntheticConfig(
            conceptual_entities=max(2, int(self.conceptual_entities * factor)),
            conceptual_attributes=max(4, int(self.conceptual_attributes * factor)),
            conceptual_relationships=max(
                1, int(self.conceptual_relationships * factor)
            ),
            logical_entities=max(2, int(self.logical_entities * factor)),
            logical_attributes=max(4, int(self.logical_attributes * factor)),
            logical_relationships=max(1, int(self.logical_relationships * factor)),
            physical_tables=max(2, int(self.physical_tables * factor)),
            physical_columns=max(4, int(self.physical_columns * factor)),
            inheritance_share=self.inheritance_share,
            seed=self.seed,
        )


def _spread(total: int, buckets: int) -> list:
    """Distribute *total* items over *buckets* (difference at most one)."""
    base, remainder = divmod(total, buckets)
    return [base + (1 if index < remainder else 0) for index in range(buckets)]


def _entity_name(rng: random.Random, index: int) -> str:
    first = _DOMAIN_WORDS[index % len(_DOMAIN_WORDS)]
    second = _DOMAIN_WORDS[(index // len(_DOMAIN_WORDS) + index) % len(_DOMAIN_WORDS)]
    if index < len(_DOMAIN_WORDS):
        return first.capitalize()
    return f"{first.capitalize()}{second.capitalize()}{index}"


def generate_definition(config: SyntheticConfig | None = None) -> WarehouseDefinition:
    """Generate a synthetic warehouse definition matching *config*."""
    config = config or SyntheticConfig()
    rng = random.Random(config.seed)

    # -- conceptual layer -------------------------------------------------
    conceptual_names = [
        _entity_name(rng, index) for index in range(config.conceptual_entities)
    ]
    conceptual_attr_counts = _spread(
        config.conceptual_attributes, config.conceptual_entities
    )
    conceptual = [
        ConceptualEntity(
            name=name,
            attributes=tuple(
                f"{_ATTRIBUTE_WORDS[(i + position) % len(_ATTRIBUTE_WORDS)]} "
                f"{position}"
                for position in range(count)
            ),
        )
        for i, (name, count) in enumerate(
            zip(conceptual_names, conceptual_attr_counts)
        )
    ]

    conceptual_relationships = [
        EntityRelationship(
            name=f"cr_{index}",
            layer="conceptual",
            left=conceptual_names[rng.randrange(len(conceptual_names))],
            right=conceptual_names[rng.randrange(len(conceptual_names))],
            kind="nn" if rng.random() < 0.3 else "n1",
        )
        for index in range(config.conceptual_relationships)
    ]

    # -- logical layer ------------------------------------------------------
    logical_names = [f"L{index}_{conceptual_names[index % len(conceptual_names)]}"
                     for index in range(config.logical_entities)]
    logical_attr_counts = _spread(config.logical_attributes, config.logical_entities)
    logical = [
        LogicalEntity(
            name=name,
            attributes=tuple(
                f"{_ATTRIBUTE_WORDS[(i * 3 + position) % len(_ATTRIBUTE_WORDS)]} "
                f"{position}"
                for position in range(count)
            ),
            refines=conceptual_names[i % len(conceptual_names)],
        )
        for i, (name, count) in enumerate(zip(logical_names, logical_attr_counts))
    ]

    logical_relationships = [
        EntityRelationship(
            name=f"lr_{index}",
            layer="logical",
            left=logical_names[rng.randrange(len(logical_names))],
            right=logical_names[rng.randrange(len(logical_names))],
            kind="nn" if rng.random() < 0.3 else "n1",
        )
        for index in range(config.logical_relationships)
    ]

    # -- physical layer --------------------------------------------------------
    table_names = [f"t_{index:04d}_td" for index in range(config.physical_tables)]
    column_counts = _spread(config.physical_columns, config.physical_tables)
    tables = []
    for index, (name, count) in enumerate(zip(table_names, column_counts)):
        columns = [PhysicalColumn(name="id", sql_type="INT", primary_key=True)]
        for position in range(max(0, count - 1)):
            word = _ATTRIBUTE_WORDS[(index + position) % len(_ATTRIBUTE_WORDS)]
            sql_type = "TEXT" if position % 3 == 0 else (
                "REAL" if position % 3 == 1 else "INT"
            )
            columns.append(
                PhysicalColumn(name=f"{word}_{position}_cd", sql_type=sql_type)
            )
        tables.append(
            PhysicalTable(
                name=name,
                columns=tuple(columns),
                refines=logical_names[index % len(logical_names)],
            )
        )

    # -- joins: a connected backbone plus extra edges -----------------------------
    joins = []
    for index in range(1, len(table_names)):
        parent = table_names[rng.randrange(index)]
        joins.append(
            JoinRelationship(
                name=f"j_{index:04d}",
                left_table=table_names[index],
                left_column="id",
                right_table=parent,
                right_column="id",
            )
        )

    # -- inheritance trees (multi-level, with sibling bridges) ---------------------
    inheritances = []
    n_trees = max(1, int(config.physical_tables * config.inheritance_share / 3))
    position = 0
    for tree in range(n_trees):
        if position + 2 >= len(table_names):
            break
        parent = table_names[position]
        children = (table_names[position + 1], table_names[position + 2])
        inheritances.append(
            Inheritance(
                name=f"inh_{tree}", parent=parent, children=children,
                layer="physical",
            )
        )
        position += 3

    definition = WarehouseDefinition(
        name="synthetic",
        conceptual_entities=conceptual,
        conceptual_relationships=conceptual_relationships,
        logical_entities=logical,
        logical_relationships=logical_relationships,
        physical_tables=tables,
        join_relationships=joins,
        inheritances=inheritances,
        ontologies=[],
        dbpedia=[],
    )
    definition.validate()
    return definition
