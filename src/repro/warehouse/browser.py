"""Schema browser (paper Section 5.3.2).

*"Next, they would use the SODA schema browser to dive deeper.  By an
interactive approach of generating automatic queries based on keywords
and analyzing the schema, they would identify potential flaws in the
schema design or data quality issues."*

The browser answers two navigation questions over one warehouse:

* :func:`describe_table` — everything about one physical table: columns,
  join relationships (flagging unannotated ones — the data-quality
  signal), inheritance role, refinement chain up to the business layer,
  and the ontology terms that classify it;
* :func:`describe_term` — where a business term anchors in the graph
  and which physical tables it ultimately reaches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WarehouseError
from repro.graph.node import Text, Vocab
from repro.graph.traversal import iter_reachable
from repro.index.classification import ClassificationIndex
from repro.warehouse.graphbuilder import (
    SCHEMA_EDGES,
    build_classification_index,
    table_uri,
)
from repro.warehouse.warehouse import Warehouse


@dataclass
class TableDescription:
    """The browser's view of one physical table."""

    name: str
    columns: list = field(default_factory=list)  # (name, type, pk)
    joins: list = field(default_factory=list)  # (description, annotated)
    inheritance_parent: str | None = None
    inheritance_children: list = field(default_factory=list)
    refinement_chain: list = field(default_factory=list)  # logical, conceptual
    classified_by: list = field(default_factory=list)  # ontology terms

    def render(self) -> str:
        lines = [f"table {self.name}"]
        lines.append("  columns:")
        for name, type_name, is_pk in self.columns:
            marker = " PK" if is_pk else ""
            lines.append(f"    {name} {type_name}{marker}")
        if self.refinement_chain:
            lines.append(
                "  implements: " + " <- ".join(self.refinement_chain)
            )
        if self.inheritance_parent:
            lines.append(f"  inherits from: {self.inheritance_parent}")
        if self.inheritance_children:
            lines.append(
                "  children: " + ", ".join(self.inheritance_children)
            )
        if self.joins:
            lines.append("  joins:")
            for description, annotated in self.joins:
                flag = "" if annotated else "  [NOT ANNOTATED IN GRAPH]"
                lines.append(f"    {description}{flag}")
        if self.classified_by:
            lines.append(
                "  classified by: " + ", ".join(self.classified_by)
            )
        return "\n".join(lines)


@dataclass
class TermDescription:
    """The browser's view of one searchable term."""

    term: str
    locations: list = field(default_factory=list)  # (source, node)
    reachable_tables: list = field(default_factory=list)

    def render(self) -> str:
        lines = [f"term {self.term!r}"]
        for source, node in self.locations:
            lines.append(f"  found in {source}: {node}")
        if self.reachable_tables:
            lines.append(
                "  reaches tables: " + ", ".join(self.reachable_tables)
            )
        if not self.locations:
            lines.append("  (unknown term)")
        return "\n".join(lines)


class SchemaBrowser:
    """Interactive-style navigation over one warehouse."""

    def __init__(self, warehouse: Warehouse) -> None:
        self.warehouse = warehouse
        self._classification: ClassificationIndex | None = None

    # ------------------------------------------------------------------
    def describe_table(self, table_name: str) -> TableDescription:
        definition = self.warehouse.definition
        table = definition.physical_table(table_name)  # raises if unknown
        description = TableDescription(name=table_name)

        for column in table.columns:
            description.columns.append(
                (column.name, column.sql_type, column.primary_key)
            )

        for join in definition.joins_of_table(table_name):
            rendered = (
                f"{join.left_table}.{join.left_column} = "
                f"{join.right_table}.{join.right_column} ({join.kind})"
            )
            description.joins.append((rendered, join.annotated))

        for inheritance in definition.inheritances:
            if inheritance.layer != "physical":
                continue
            if table_name in inheritance.children:
                description.inheritance_parent = inheritance.parent
            if inheritance.parent == table_name:
                description.inheritance_children.extend(inheritance.children)

        if table.refines is not None:
            logical = definition.logical_entity(table.refines)
            description.refinement_chain.append(f"logical:{logical.name}")
            if logical.refines is not None:
                description.refinement_chain.append(
                    f"conceptual:{logical.refines}"
                )

        # ontology terms pointing at the table, its columns, or the
        # logical/conceptual entities it implements
        from repro.warehouse.graphbuilder import (
            column_uri,
            conceptual_entity_uri,
            logical_entity_uri,
        )

        targets = [table_uri(table_name)] + [
            column_uri(table_name, column.name) for column in table.columns
        ]
        if table.refines is not None:
            targets.append(logical_entity_uri(table.refines))
            logical = definition.logical_entity(table.refines)
            if logical.refines is not None:
                targets.append(conceptual_entity_uri(logical.refines))
        found: set = set()
        for target in targets:
            for triple in self.warehouse.graph.match(
                predicate=Vocab.CLASSIFIES, obj=target
            ):
                label = self.warehouse.graph.object(triple.subject, Vocab.LABEL)
                if isinstance(label, Text):
                    found.add(label.value)
        description.classified_by = sorted(found)
        return description

    # ------------------------------------------------------------------
    def describe_term(self, term: str) -> TermDescription:
        if self._classification is None:
            self._classification = build_classification_index(
                self.warehouse.graph
            )
        description = TermDescription(term=term)
        follow = _schema_follow()
        reachable: set = set()
        for match in self._classification.lookup(term):
            description.locations.append((match.source.value, match.node))
            for node, __ in iter_reachable(
                self.warehouse.graph, match.node, follow=follow
            ):
                label = self.warehouse.graph.object(node, Vocab.TABLENAME)
                if isinstance(label, Text):
                    reachable.add(label.value)
        description.reachable_tables = sorted(reachable)
        return description

    def unannotated_joins(self) -> list:
        """All join relationships missing from the metadata graph.

        The data-quality report of the war stories: these are exactly
        the joins whose absence degrades recall (Q2.x).
        """
        return [
            join
            for join in self.warehouse.definition.join_relationships
            if not join.annotated
        ]


def _schema_follow():
    def follow(subject, predicate, obj):
        return predicate in SCHEMA_EDGES

    return follow
