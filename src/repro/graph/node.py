"""Node model for the metadata graph.

The paper stores metadata in an RDF-like graph: *"Each triple either
connects two nodes or connects a node with a text label. A node is either
a static URI or a variable. [...] A text label is simply a string."*
(Section 4.2.1.)

We model graph nodes as plain strings (URIs) and text labels as
:class:`Text` instances so that the two cannot be confused.  URIs use the
``soda://`` scheme with a short namespace, e.g. ``soda://physical/table/
parties``.  Helper constructors keep URI construction uniform across the
code base.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Text:
    """A text label attached to a graph node (the paper's ``t:...``)."""

    value: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"t:{self.value}"


#: A graph node is a URI string; an object position may also hold a Text.
Node = str
Object = "Node | Text"


_SCHEME = "soda://"


def uri(namespace: str, *parts: str) -> str:
    """Build a URI in the ``soda://namespace/part1/part2`` form.

    >>> uri("physical", "table", "parties")
    'soda://physical/table/parties'
    """
    cleaned = [p.strip().replace(" ", "_") for p in parts if p]
    return _SCHEME + "/".join([namespace, *cleaned])


def is_uri(value: object) -> bool:
    """Return True if *value* is a URI node produced by :func:`uri`."""
    return isinstance(value, str) and value.startswith(_SCHEME)


def local_name(node: str) -> str:
    """Return the last path component of a URI.

    >>> local_name('soda://physical/table/parties')
    'parties'
    """
    return node.rsplit("/", 1)[-1]


def namespace_of(node: str) -> str:
    """Return the namespace (first path component) of a URI.

    >>> namespace_of('soda://physical/table/parties')
    'physical'
    """
    if not is_uri(node):
        raise ValueError(f"not a soda URI: {node!r}")
    remainder = node[len(_SCHEME):]
    return remainder.split("/", 1)[0]


# Well-known type URIs used by the Credit Suisse pattern set.  Keeping them
# here gives a single authoritative spelling for both the graph builder and
# the pattern definitions.
class Vocab:
    """Well-known URIs of the metadata vocabulary."""

    # edge labels
    TYPE = uri("meta", "type")
    TABLENAME = uri("meta", "tablename")
    COLUMNNAME = uri("meta", "columnname")
    COLUMN = uri("meta", "column")
    FOREIGN_KEY = uri("meta", "foreign_key")
    PRIMARY_KEY = uri("meta", "primary_key")
    JOIN_LEFT = uri("meta", "join_left")
    JOIN_RIGHT = uri("meta", "join_right")
    INHERITANCE_PARENT = uri("meta", "inheritance_parent")
    INHERITANCE_CHILD = uri("meta", "inheritance_child")
    REFINES = uri("meta", "refines")            # conceptual -> logical -> physical
    CLASSIFIES = uri("meta", "classifies")      # ontology term -> schema element
    SYNONYM_OF = uri("meta", "synonym_of")      # dbpedia term -> schema/ontology term
    LABEL = uri("meta", "label")                # human-readable label (Text object)
    HAS_ATTRIBUTE = uri("meta", "has_attribute")
    RELATES = uri("meta", "relates")            # entity-level relationship edge
    FILTER_COLUMN = uri("meta", "filter_column")
    FILTER_OP = uri("meta", "filter_op")
    FILTER_VALUE = uri("meta", "filter_value")
    AGG_FUNC = uri("meta", "agg_func")          # business-term aggregation
    AGG_COLUMN = uri("meta", "agg_column")
    IGNORED = uri("meta", "ignored")            # annotation: relationship disabled
    BELONGS_TO = uri("meta", "belongs_to")      # column -> its table
    HAS_JOIN = uri("meta", "has_join")          # column -> join node
    HAS_INHERITANCE = uri("meta", "has_inheritance")  # parent -> inheritance node

    # node types
    PHYSICAL_TABLE = uri("meta", "physical_table")
    PHYSICAL_COLUMN = uri("meta", "physical_column")
    LOGICAL_ENTITY = uri("meta", "logical_entity")
    LOGICAL_ATTRIBUTE = uri("meta", "logical_attribute")
    CONCEPTUAL_ENTITY = uri("meta", "conceptual_entity")
    CONCEPTUAL_ATTRIBUTE = uri("meta", "conceptual_attribute")
    ONTOLOGY_TERM = uri("meta", "ontology_term")
    DBPEDIA_TERM = uri("meta", "dbpedia_term")
    INHERITANCE_NODE = uri("meta", "inheritance_node")
    JOIN_NODE = uri("meta", "join_node")
    BUSINESS_TERM = uri("meta", "business_term")
