"""The metadata graph pattern language (paper Section 4.2.1).

The paper defines patterns in a SPARQL-filter-inspired language::

    ( x tablename t:y ) &
    ( x type physical_table )

* Each clause either connects two nodes, connects a node with a text
  label, or references another pattern (``( y matches-column )``).
* A node term is a static URI or a variable.  Variables can be assigned
  any URI, but within one match a variable keeps its URI.
* An edge (predicate) term is a static URI.
* A text label is a string; ``t:name`` introduces a *text variable* that
  binds to any :class:`~repro.graph.node.Text`, while ``t:"literal"``
  requires an exact text label.

This module provides the pattern AST, a parser for the textual syntax,
and a backtracking matcher.  Patterns are resolved against a
:class:`PatternLibrary` so that one pattern can reference another (the
Foreign-Key pattern references the Column pattern via ``matches-column``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.errors import PatternError
from repro.graph.node import Text, is_uri
from repro.graph.triples import TripleStore

# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


@dataclass(frozen=True, order=True)
class Var:
    """A node variable; binds to a URI and keeps it within one match."""

    name: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


@dataclass(frozen=True, order=True)
class TextVar:
    """A text-label variable; binds to a :class:`Text` value."""

    name: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"t:{self.name}"


#: A term in subject position: variable or static URI.
NodeTerm = "Var | str"
#: A term in object position additionally allows text labels/variables.
ObjectTerm = "Var | str | Text | TextVar"


@dataclass(frozen=True)
class TriplePattern:
    """One ``( subject predicate object )`` clause."""

    subject: "Var | str"
    predicate: str
    obj: "Var | str | Text | TextVar"

    def __post_init__(self) -> None:
        if isinstance(self.subject, str) and not is_uri(self.subject):
            raise PatternError(f"static subject must be a URI: {self.subject!r}")
        if not is_uri(self.predicate):
            raise PatternError(f"predicate must be a static URI: {self.predicate!r}")
        if isinstance(self.obj, str) and not is_uri(self.obj):
            raise PatternError(f"static object must be a URI or Text: {self.obj!r}")


@dataclass(frozen=True)
class PatternRef:
    """A ``( var matches-<pattern> )`` clause referencing another pattern."""

    var: Var
    pattern_name: str


Clause = "TriplePattern | PatternRef"


@dataclass(frozen=True)
class Pattern:
    """A named conjunction of clauses.

    ``tested_var`` names the variable that is bound to "the node being
    tested" when the pattern is evaluated during graph traversal (the
    ``?``-marked node in the paper's Figures 7 and 8).
    """

    name: str
    clauses: tuple
    tested_var: str = "x"

    def variables(self) -> set[str]:
        """All node-variable names used in this pattern."""
        names: set[str] = set()
        for clause in self.clauses:
            if isinstance(clause, TriplePattern):
                if isinstance(clause.subject, Var):
                    names.add(clause.subject.name)
                if isinstance(clause.obj, Var):
                    names.add(clause.obj.name)
            else:
                names.add(clause.var.name)
        return names


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<lparen>\() |
    (?P<rparen>\)) |
    (?P<amp>&) |
    (?P<text_quoted>t:"(?:[^"\\]|\\.)*") |
    (?P<text_bare>t:[A-Za-z_][A-Za-z0-9_\-]*) |
    (?P<word>[A-Za-z_][A-Za-z0-9_\-:/.]*) |
    (?P<ws>\s+)
    """,
    re.VERBOSE,
)


def _tokenize(source: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise PatternError(f"cannot tokenize pattern at: {source[pos:pos + 20]!r}")
        kind = match.lastgroup or ""
        if kind != "ws":
            tokens.append((kind, match.group()))
        pos = match.end()
    return tokens


def parse_pattern(
    name: str,
    source: str,
    resolver: Mapping[str, str],
    tested_var: str = "x",
) -> Pattern:
    """Parse the textual pattern syntax into a :class:`Pattern`.

    *resolver* maps bare words (``tablename``, ``physical_table``) to
    static URIs.  Bare words **not** present in the resolver are treated
    as variables — this matches the paper's convention where variables
    are simply distinguished typographically.

    >>> from repro.graph.node import Vocab
    >>> resolver = {'tablename': Vocab.TABLENAME, 'type': Vocab.TYPE,
    ...             'physical_table': Vocab.PHYSICAL_TABLE}
    >>> pattern = parse_pattern(
    ...     'table',
    ...     '( x tablename t:y ) & ( x type physical_table )',
    ...     resolver)
    >>> len(pattern.clauses)
    2
    """
    tokens = _tokenize(source)
    clauses: list = []
    index = 0

    def resolve_node(word: str) -> "Var | str":
        if word in resolver:
            return resolver[word]
        if is_uri(word):
            return word
        return Var(word)

    def resolve_object(kind: str, word: str) -> "Var | str | Text | TextVar":
        if kind == "text_quoted":
            body = word[3:-1]  # strip t:" and closing "
            return Text(body.replace('\\"', '"'))
        if kind == "text_bare":
            return TextVar(word[2:])
        return resolve_node(word)

    while index < len(tokens):
        kind, value = tokens[index]
        if kind == "amp":
            index += 1
            continue
        if kind != "lparen":
            raise PatternError(f"expected '(' in pattern {name!r}, got {value!r}")
        index += 1
        group: list[tuple[str, str]] = []
        while index < len(tokens) and tokens[index][0] != "rparen":
            group.append(tokens[index])
            index += 1
        if index >= len(tokens):
            raise PatternError(f"unbalanced parentheses in pattern {name!r}")
        index += 1  # consume ')'

        if len(group) == 2:
            var_kind, var_word = group[0]
            ref_kind, ref_word = group[1]
            if var_kind != "word" or ref_kind != "word":
                raise PatternError(f"malformed reference clause in {name!r}")
            if not ref_word.startswith("matches-"):
                raise PatternError(
                    f"two-term clause must be 'matches-<pattern>' in {name!r}: "
                    f"{ref_word!r}"
                )
            clauses.append(PatternRef(Var(var_word), ref_word[len("matches-"):]))
        elif len(group) == 3:
            (s_kind, s_word), (p_kind, p_word), (o_kind, o_word) = group
            if s_kind != "word" or p_kind != "word":
                raise PatternError(f"malformed triple clause in {name!r}")
            subject = resolve_node(s_word)
            if p_word not in resolver and not is_uri(p_word):
                raise PatternError(
                    f"predicate {p_word!r} in pattern {name!r} is not a known URI"
                )
            predicate = resolver.get(p_word, p_word)
            obj = resolve_object(o_kind, o_word)
            clauses.append(TriplePattern(subject, predicate, obj))
        else:
            raise PatternError(
                f"clause must have 2 or 3 terms in pattern {name!r}, "
                f"found {len(group)}"
            )

    if not clauses:
        raise PatternError(f"pattern {name!r} has no clauses")
    return Pattern(name=name, clauses=tuple(clauses), tested_var=tested_var)


# ---------------------------------------------------------------------------
# Matcher
# ---------------------------------------------------------------------------


class PatternLibrary:
    """A named collection of patterns that can reference each other."""

    def __init__(self, patterns: Iterable[Pattern] = ()) -> None:
        self._patterns: dict[str, Pattern] = {}
        for pattern in patterns:
            self.add(pattern)

    def add(self, pattern: Pattern) -> None:
        if pattern.name in self._patterns:
            raise PatternError(f"duplicate pattern name: {pattern.name!r}")
        self._patterns[pattern.name] = pattern

    def get(self, name: str) -> Pattern:
        try:
            return self._patterns[name]
        except KeyError:
            raise PatternError(f"unknown pattern: {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._patterns

    def names(self) -> list[str]:
        return sorted(self._patterns)


Binding = "dict[str, str | Text]"


def match_pattern(
    store: TripleStore,
    pattern: Pattern,
    node: str,
    library: PatternLibrary | None = None,
    _depth: int = 0,
) -> list[dict]:
    """Match *pattern* with its tested variable bound to *node*.

    Returns the list of variable bindings (one dict per match).  An empty
    list means the pattern does not match at this node.  Pattern
    references are evaluated with semi-join semantics: the referenced
    pattern must match at the referenced node, but its internal bindings
    are not exported.
    """
    if _depth > 16:
        raise PatternError(f"pattern reference cycle involving {pattern.name!r}")
    library = library or PatternLibrary()
    initial: dict = {pattern.tested_var: node}
    return _match_clauses(store, list(pattern.clauses), initial, library, _depth)


def _match_clauses(
    store: TripleStore,
    clauses: list,
    bindings: dict,
    library: PatternLibrary,
    depth: int,
) -> list[dict]:
    if not clauses:
        return [dict(bindings)]
    clause, rest = clauses[0], clauses[1:]
    results: list[dict] = []
    if isinstance(clause, PatternRef):
        target = bindings.get(clause.var.name)
        if target is None:
            raise PatternError(
                f"reference variable {clause.var.name!r} must be bound before "
                f"'matches-{clause.pattern_name}' is evaluated"
            )
        referenced = library.get(clause.pattern_name)
        if match_pattern(store, referenced, target, library, depth + 1):
            results.extend(_match_clauses(store, rest, bindings, library, depth))
        return results

    for candidate in _candidate_triples(store, clause, bindings):
        extended = _extend(bindings, clause, candidate)
        if extended is None:
            continue
        results.extend(_match_clauses(store, rest, extended, library, depth))
    return results


def _candidate_triples(
    store: TripleStore, clause: TriplePattern, bindings: dict
) -> Iterator:
    subject = _resolve_term(clause.subject, bindings)
    obj = _resolve_term(clause.obj, bindings)
    subject_bound = subject if isinstance(subject, str) else None
    obj_bound = obj if isinstance(obj, (str, Text)) else None
    return store.match(subject_bound, clause.predicate, obj_bound)


def _resolve_term(term, bindings: dict):
    """Return the concrete value of a term under *bindings*, or the term."""
    if isinstance(term, Var):
        return bindings.get(term.name, term)
    if isinstance(term, TextVar):
        value = bindings.get(term.name)
        return value if value is not None else term
    return term


def _extend(bindings: dict, clause: TriplePattern, triple) -> dict | None:
    """Extend *bindings* with the variable assignments implied by *triple*."""
    extended = dict(bindings)
    if isinstance(clause.subject, Var):
        existing = extended.get(clause.subject.name)
        if existing is not None and existing != triple.subject:
            return None
        extended[clause.subject.name] = triple.subject
    if isinstance(clause.obj, Var):
        if not isinstance(triple.obj, str):
            return None  # node variable cannot bind a text label
        existing = extended.get(clause.obj.name)
        if existing is not None and existing != triple.obj:
            return None
        extended[clause.obj.name] = triple.obj
    elif isinstance(clause.obj, TextVar):
        if not isinstance(triple.obj, Text):
            return None
        existing = extended.get(clause.obj.name)
        if existing is not None and existing != triple.obj:
            return None
        extended[clause.obj.name] = triple.obj
    return extended
