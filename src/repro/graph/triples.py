"""An in-memory triple store with SPO/POS/OSP indexes.

This is the substrate for the metadata graph of Figure 3 in the paper:
DBpedia terms, domain ontologies, and the conceptual / logical / physical
schema layers are all stored as triples, and the SODA algorithm only ever
talks to this store (lookup, traversal, pattern matching).

The store is deliberately simple: triples are immutable, and three hash
indexes give O(1) access by any bound position.  This mirrors classic
in-memory RDF store designs and is plenty for schema-sized graphs (tens of
thousands of triples).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import GraphError
from repro.graph.node import Text, is_uri


@dataclass(frozen=True)
class Triple:
    """A single (subject, predicate, object) statement.

    ``subject`` and ``predicate`` are URI strings; ``obj`` is either a URI
    string (node-to-node edge) or a :class:`Text` label (node-to-text edge),
    exactly the two triple kinds the paper's pattern language supports.
    """

    subject: str
    predicate: str
    obj: "str | Text"

    def __post_init__(self) -> None:
        if not is_uri(self.subject):
            raise GraphError(f"triple subject must be a URI: {self.subject!r}")
        if not is_uri(self.predicate):
            raise GraphError(f"triple predicate must be a URI: {self.predicate!r}")
        if not (is_uri(self.obj) or isinstance(self.obj, Text)):
            raise GraphError(
                f"triple object must be a URI or Text label: {self.obj!r}"
            )


class TripleStore:
    """A set of :class:`Triple` with indexes on every position.

    >>> store = TripleStore()
    >>> from repro.graph.node import uri, Text
    >>> _ = store.add(uri('physical', 'table', 'parties'),
    ...               uri('meta', 'tablename'), Text('parties'))
    >>> len(store)
    1
    """

    def __init__(self, triples: Iterable[Triple] = ()) -> None:
        self._triples: set[Triple] = set()
        self._version = 0
        self._spo: dict[str, dict[str, set["str | Text"]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self._pos: dict[str, dict["str | Text", set[str]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self._osp: dict["str | Text", dict[str, set[str]]] = defaultdict(
            lambda: defaultdict(set)
        )
        for triple in triples:
            self.add_triple(triple)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, subject: str, predicate: str, obj: "str | Text") -> Triple:
        """Create, insert and return a triple."""
        triple = Triple(subject, predicate, obj)
        self.add_triple(triple)
        return triple

    def add_triple(self, triple: Triple) -> None:
        """Insert an existing triple (idempotent)."""
        if triple in self._triples:
            return
        self._version += 1
        self._triples.add(triple)
        self._spo[triple.subject][triple.predicate].add(triple.obj)
        self._pos[triple.predicate][triple.obj].add(triple.subject)
        self._osp[triple.obj][triple.subject].add(triple.predicate)

    def remove(self, subject: str, predicate: str, obj: "str | Text") -> None:
        """Remove a triple; raises GraphError if it is not present."""
        triple = Triple(subject, predicate, obj)
        if triple not in self._triples:
            raise GraphError(f"triple not in store: {triple}")
        self._version += 1
        self._triples.discard(triple)
        self._spo[subject][predicate].discard(obj)
        self._pos[predicate][obj].discard(subject)
        self._osp[obj][subject].discard(predicate)

    @property
    def version(self) -> int:
        """Bumped on every mutation; lets derived caches detect staleness."""
        return self._version

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def match(
        self,
        subject: str | None = None,
        predicate: str | None = None,
        obj: "str | Text | None" = None,
    ) -> Iterator[Triple]:
        """Yield all triples matching the bound positions.

        ``None`` means "any value".  The most selective index available for
        the bound positions is used.
        """
        if subject is not None and predicate is not None:
            for candidate in self._spo[subject].get(predicate, ()):
                if obj is None or candidate == obj:
                    yield Triple(subject, predicate, candidate)
            return
        if predicate is not None and obj is not None:
            for candidate in self._pos[predicate].get(obj, ()):
                yield Triple(candidate, predicate, obj)
            return
        if subject is not None and obj is not None:
            for candidate in self._osp[obj].get(subject, ()):
                yield Triple(subject, candidate, obj)
            return
        if subject is not None:
            for pred, objs in self._spo[subject].items():
                for candidate in objs:
                    yield Triple(subject, pred, candidate)
            return
        if predicate is not None:
            for candidate_obj, subjects in self._pos[predicate].items():
                for subj in subjects:
                    yield Triple(subj, predicate, candidate_obj)
            return
        if obj is not None:
            for subj, preds in self._osp[obj].items():
                for pred in preds:
                    yield Triple(subj, pred, obj)
            return
        yield from self._triples

    # ------------------------------------------------------------------
    # convenience accessors used heavily by the SODA steps
    # ------------------------------------------------------------------
    def objects(self, subject: str, predicate: str) -> "list[str | Text]":
        """All objects of (subject, predicate, ?)."""
        return sorted(self._spo[subject].get(predicate, ()), key=_sort_key)

    def object(self, subject: str, predicate: str) -> "str | Text | None":
        """The unique object of (subject, predicate, ?), or None."""
        values = self._spo[subject].get(predicate, set())
        if len(values) > 1:
            raise GraphError(
                f"expected at most one object for ({subject}, {predicate}), "
                f"found {len(values)}"
            )
        return next(iter(values), None)

    def subjects(self, predicate: str, obj: "str | Text") -> list[str]:
        """All subjects of (?, predicate, obj)."""
        return sorted(self._pos[predicate].get(obj, ()))

    def outgoing(self, subject: str) -> Iterator[Triple]:
        """All triples with the given subject."""
        return self.match(subject=subject)

    def incoming(self, obj: "str | Text") -> Iterator[Triple]:
        """All triples with the given object."""
        return self.match(obj=obj)

    def node_neighbours(self, subject: str) -> list[str]:
        """URI objects reachable over one outgoing edge (text labels skipped)."""
        found = set()
        for pred, objs in self._spo[subject].items():
            for candidate in objs:
                if isinstance(candidate, str):
                    found.add(candidate)
        return sorted(found)

    def nodes(self) -> set[str]:
        """All URI nodes appearing in subject or object position."""
        result: set[str] = set(self._spo.keys())
        for obj in self._osp:
            if isinstance(obj, str):
                result.add(obj)
        return result

    def has_type(self, subject: str, type_uri: str) -> bool:
        """True if (subject, meta:type, type_uri) is in the store."""
        from repro.graph.node import Vocab

        return any(True for __ in self.match(subject, Vocab.TYPE, type_uri))


def _sort_key(obj: "str | Text") -> tuple[int, str]:
    """Stable ordering for mixed URI/Text collections."""
    if isinstance(obj, Text):
        return (1, obj.value)
    return (0, obj)
