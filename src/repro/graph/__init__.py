"""Metadata graph substrate: triple store, pattern language, traversal."""

from repro.graph.node import Text, Vocab, is_uri, local_name, namespace_of, uri
from repro.graph.pattern import (
    Pattern,
    PatternLibrary,
    PatternRef,
    TextVar,
    TriplePattern,
    Var,
    match_pattern,
    parse_pattern,
)
from repro.graph.traversal import (
    build_undirected_graph,
    direct_paths,
    iter_reachable,
    reachable_nodes,
    steiner_edge_set,
)
from repro.graph.triples import Triple, TripleStore

__all__ = [
    "Pattern",
    "PatternLibrary",
    "PatternRef",
    "Text",
    "TextVar",
    "Triple",
    "TriplePattern",
    "TripleStore",
    "Var",
    "Vocab",
    "build_undirected_graph",
    "direct_paths",
    "is_uri",
    "iter_reachable",
    "local_name",
    "match_pattern",
    "namespace_of",
    "parse_pattern",
    "reachable_nodes",
    "steiner_edge_set",
    "uri",
]
