"""Graph traversal primitives used by the SODA steps.

Step 3 of the algorithm (paper Section 4.2.1, "Application in SODA")
traverses the metadata graph *"starting from the entry points of a given
query and recursively follow[ing] all outgoing edges"*, testing patterns
at every node.  This module provides that traversal plus the direct-path
machinery used for join selection (Figure 9): of all discovered join
conditions, only those *"on a direct path between the entry points"*
are kept.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Iterator

import networkx as nx

from repro.graph.triples import TripleStore


def iter_reachable(
    store: TripleStore,
    start: str,
    max_depth: int | None = None,
    follow: Callable[[str, str, str], bool] | None = None,
) -> Iterator[tuple[str, int]]:
    """Breadth-first traversal over outgoing node edges.

    Yields ``(node, depth)`` pairs starting with ``(start, 0)``.  Text
    labels are never traversed (they have no outgoing edges).  *follow*
    may veto individual edges; it receives ``(subject, predicate, object)``.
    """
    seen = {start}
    queue: deque[tuple[str, int]] = deque([(start, 0)])
    while queue:
        node, depth = queue.popleft()
        yield node, depth
        if max_depth is not None and depth >= max_depth:
            continue
        for triple in store.outgoing(node):
            if not isinstance(triple.obj, str):
                continue
            if follow is not None and not follow(
                triple.subject, triple.predicate, triple.obj
            ):
                continue
            if triple.obj not in seen:
                seen.add(triple.obj)
                queue.append((triple.obj, depth + 1))


def reachable_nodes(
    store: TripleStore,
    start: str,
    max_depth: int | None = None,
    follow: Callable[[str, str, str], bool] | None = None,
) -> list[str]:
    """All nodes reachable from *start* (including it), sorted."""
    return sorted(node for node, __ in iter_reachable(store, start, max_depth, follow))


def build_undirected_graph(
    edges: Iterable[tuple[str, str, object]],
) -> "nx.Graph":
    """Build an undirected multigraph-free graph from labelled edges.

    Each edge is ``(u, v, payload)``; parallel edges collapse into one
    edge whose ``payloads`` attribute accumulates every payload.  Used to
    build the table-level join graph in Step 3.
    """
    graph = nx.Graph()
    for u, v, payload in edges:
        if graph.has_edge(u, v):
            graph.edges[u, v]["payloads"].append(payload)
        else:
            graph.add_edge(u, v, payloads=[payload])
    return graph


def direct_paths(
    graph: "nx.Graph", terminals: Iterable[str]
) -> list[list[str]]:
    """Shortest paths between every pair of terminal nodes.

    This realises the paper's "joins on a direct path between the entry
    points" rule (Figure 9): join conditions merely *attached* to such a
    path are ignored.  Terminals missing from the graph are skipped —
    SODA simply cannot join them (one of the documented limitations).
    """
    terminal_list = sorted(set(terminals))
    paths: list[list[str]] = []
    for i, source in enumerate(terminal_list):
        for target in terminal_list[i + 1:]:
            if source not in graph or target not in graph:
                continue
            try:
                paths.append(nx.shortest_path(graph, source, target))
            except nx.NetworkXNoPath:
                continue
    return paths


def steiner_edge_set(
    graph: "nx.Graph", terminals: Iterable[str]
) -> set[tuple[str, str]]:
    """The union of edges on all pairwise direct paths, as sorted pairs."""
    edges: set[tuple[str, str]] = set()
    for path in direct_paths(graph, terminals):
        for u, v in zip(path, path[1:]):
            edges.add((min(u, v), max(u, v)))
    return edges
