"""Command-line interface.

Usage::

    python -m repro search "customers Zurich financial instruments"
    python -m repro search --explain "customers Zurich"   # plans inline
    python -m repro explain "SELECT ..."  # optimized query plan tree
    python -m repro experiments          # Tables 2, 3 and 4
    python -m repro compare              # Table 5 (runs the baselines)
    python -m repro stats                # warehouse + Table 1 statistics

All commands build the finbank warehouse (deterministic, seconds).
"""

from __future__ import annotations

import argparse
import sys

from repro.core.soda import Soda, SodaConfig
from repro.warehouse.minibank import build_minibank


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SODA (VLDB 2012) reproduction: keyword search over a "
        "data warehouse",
    )
    parser.add_argument("--seed", type=int, default=42,
                        help="data generation seed (default 42)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="data volume scale factor (default 1.0)")

    commands = parser.add_subparsers(dest="command", required=True)

    search = commands.add_parser("search", help="run a SODA query")
    search.add_argument("query", help="keywords + operators + values")
    search.add_argument("--top-n", type=int, default=10,
                        help="interpretations kept by step 2 (default 10)")
    search.add_argument("--no-dbpedia", action="store_true",
                        help="drop the DBpedia synonym layer")
    search.add_argument("--no-execute", action="store_true",
                        help="generate SQL only, skip result snippets")
    search.add_argument("--limit", type=int, default=5,
                        help="statements to display (default 5)")
    search.add_argument("--explain", action="store_true",
                        help="print the query plan under each statement")

    explain = commands.add_parser(
        "explain", help="show the optimized query plan for a SQL statement"
    )
    explain.add_argument("sql", help="a SELECT statement (quote it)")

    commands.add_parser(
        "experiments", help="run the 13-query workload (Tables 2-4)"
    )
    commands.add_parser(
        "compare", help="run the five baselines (Table 5)"
    )
    commands.add_parser("stats", help="warehouse statistics (Table 1)")

    browse = commands.add_parser(
        "browse", help="schema browser: describe a table or a term"
    )
    browse.add_argument("name", help="physical table name or business term")

    page = commands.add_parser(
        "page", help="Google-style result page for a query"
    )
    page.add_argument("query")
    page.add_argument("--page", type=int, default=1)
    page.add_argument("--page-size", type=int, default=5)
    return parser


def cmd_search(args, out) -> int:
    warehouse = build_minibank(seed=args.seed, scale=args.scale)
    config = SodaConfig(top_n=args.top_n, use_dbpedia=not args.no_dbpedia)
    soda = Soda(warehouse, config)
    result = soda.search(args.query, execute=not args.no_execute)

    print(f"query:      {result.query.describe()}", file=out)
    print(f"complexity: {result.complexity}", file=out)
    print(f"statements: {len(result.statements)}", file=out)
    for position, statement in enumerate(result.statements[:args.limit], 1):
        marker = "  [disconnected]" if statement.disconnected else ""
        print(f"\n#{position}  score {statement.score:.2f}{marker}", file=out)
        print(f"    {statement.sql}", file=out)
        if statement.snippet is not None:
            print(f"    -> {len(statement.snippet.rows)} snippet tuple(s)",
                  file=out)
            for row in statement.snippet.rows[:3]:
                print(f"       {row}", file=out)
        elif statement.execution_error:
            print(f"    -> {statement.execution_error}", file=out)
        if args.explain:
            from repro.errors import SqlError

            try:
                plan = statement.plan or soda.explain(statement.sql)
            except SqlError as exc:
                plan = f"(not plannable: {exc})"
            for line in plan.splitlines():
                print(f"    | {line}", file=out)
    if not result.statements:
        print("\n(no executable statements — try different keywords)",
              file=out)
    return 0


def cmd_explain(args, out) -> int:
    from repro.errors import SqlError

    warehouse = build_minibank(seed=args.seed, scale=args.scale)
    try:
        plan = warehouse.database.explain(args.sql)
    except SqlError as exc:
        print(f"error: {exc}", file=out)
        return 1
    print(plan, file=out)
    return 0


def cmd_experiments(args, out) -> int:
    from repro.experiments.reporting import (
        format_table2,
        format_table3,
        format_table4,
    )
    from repro.experiments.runner import ExperimentRunner

    runner = ExperimentRunner(seed=args.seed, scale=args.scale)
    outcomes = runner.run_all()
    print("Table 2: Experiment queries", file=out)
    print(format_table2(), file=out)
    print("\nTable 3: Precision and recall (measured vs paper)", file=out)
    print(format_table3(outcomes), file=out)
    print("\nTable 4: Complexity and runtime (measured vs paper)", file=out)
    print(format_table4(outcomes), file=out)
    return 0


def cmd_compare(args, out) -> int:
    from repro.baselines.capabilities import (
        capability_matrix,
        default_systems,
        evaluate_system,
        format_table5,
        soda_evaluation,
    )
    from repro.experiments.runner import ExperimentRunner

    warehouse = build_minibank(seed=args.seed, scale=min(args.scale, 0.5))
    evaluations = [
        evaluate_system(system, warehouse)
        for system in default_systems(warehouse)
    ]
    outcomes = ExperimentRunner(warehouse=warehouse).run_all()
    evaluations.append(soda_evaluation(outcomes))
    print("Table 5: Qualitative comparison (measured [paper])", file=out)
    print(
        format_table5(
            capability_matrix(evaluations), [e.system for e in evaluations]
        ),
        file=out,
    )
    return 0


def cmd_stats(args, out) -> int:
    from repro.experiments.reporting import format_table1
    from repro.warehouse.synthetic import generate_definition

    warehouse = build_minibank(seed=args.seed, scale=args.scale)
    print("finbank warehouse:", file=out)
    for key, value in sorted(warehouse.statistics().items()):
        print(f"  {key:32s} {value}", file=out)
    print("\nTable 1 (synthetic generator at paper scale):", file=out)
    print(format_table1(generate_definition().schema_statistics()), file=out)
    return 0


def cmd_browse(args, out) -> int:
    from repro.warehouse.browser import SchemaBrowser

    warehouse = build_minibank(seed=args.seed, scale=args.scale)
    browser = SchemaBrowser(warehouse)
    if warehouse.definition.has_physical_table(args.name):
        print(browser.describe_table(args.name).render(), file=out)
    else:
        print(browser.describe_term(args.name).render(), file=out)
    return 0


def cmd_page(args, out) -> int:
    from repro.core.results import render_page

    warehouse = build_minibank(seed=args.seed, scale=args.scale)
    soda = Soda(warehouse, SodaConfig())
    result = soda.search(args.query)
    page = render_page(result, page=args.page, page_size=args.page_size)
    print(page.render(), file=out)
    return 0


def main(argv=None, out=None) -> int:
    out = out or sys.stdout
    args = make_parser().parse_args(argv)
    handlers = {
        "search": cmd_search,
        "explain": cmd_explain,
        "experiments": cmd_experiments,
        "compare": cmd_compare,
        "stats": cmd_stats,
        "browse": cmd_browse,
        "page": cmd_page,
    }
    return handlers[args.command](args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
