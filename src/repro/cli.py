"""Command-line interface.

Usage::

    python -m repro search "customers Zurich financial instruments"
    python -m repro search --explain "customers Zurich"   # plans inline
    python -m repro search --batch queries.txt  # one query per line
    python -m repro explain "SELECT ..."  # optimized query plan tree
    python -m repro explain --analyze "SELECT ..."  # + per-op actuals
    python -m repro trace "customers Zurich"  # rendered span tree
    python -m repro sql "UPDATE ..."     # run SQL (incl. UPDATE/DELETE)
    python -m repro sql --data-dir d "BEGIN" "INSERT ..." "COMMIT"
    python -m repro serve --port 8765    # JSON-over-HTTP search service
    python -m repro --engine-config parallel-workers=4 serve
    python -m repro recover d            # replay checkpoint + WAL, report
    python -m repro recover d --checkpoint  # + write a fresh checkpoint
    python -m repro experiments          # Tables 2, 3 and 4
    python -m repro experiments --batch  # same, served via search_many
    python -m repro compare              # Table 5 (runs the baselines)
    python -m repro stats                # warehouse + Table 1 statistics
    python -m repro stats --metrics      # process-wide metrics registry
    python -m repro index build          # time a cold index build
    python -m repro index save           # snapshot indexes to disk
    python -m repro index load           # verify a warm-start snapshot
    python -m repro index stats          # index sizes + maintenance state

All commands build the finbank warehouse (deterministic, seconds);
``--snapshot PATH`` warm-starts its indexes from a saved snapshot.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.soda import Soda, SodaConfig
from repro.warehouse.minibank import build_minibank


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SODA (VLDB 2012) reproduction: keyword search over a "
        "data warehouse",
    )
    parser.add_argument("--seed", type=int, default=42,
                        help="data generation seed (default 42)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="data volume scale factor (default 1.0)")
    parser.add_argument("--snapshot", default=None, metavar="PATH",
                        help="warm-start indexes from this snapshot file "
                             "when it matches the catalog")
    parser.add_argument("--execution-mode", choices=["batch", "row"],
                        default=None,
                        help="SQL engine: vectorized batch operators "
                             "(default) or row-at-a-time volcano")
    parser.add_argument("--parallel-workers", type=int, default=None,
                        metavar="N",
                        help="morsel-driven parallel scan pipelines on N "
                             "threads (default 1 = serial; batch mode only)")
    parser.add_argument("--no-fused", action="store_true",
                        help="disable fused filter/project expression "
                             "codegen in the batch engine")
    parser.add_argument("--engine-config", default=None, metavar="SPEC",
                        help="engine settings as key=value[,key=value] over "
                             "the EngineConfig fields, e.g. "
                             "'segment-rows=4096,parallel-workers=4,"
                             "array-store=true'")

    commands = parser.add_subparsers(dest="command", required=True)

    search = commands.add_parser("search", help="run a SODA query")
    search.add_argument("query", nargs="?", default=None,
                        help="keywords + operators + values")
    search.add_argument("--batch", metavar="FILE", default=None,
                        help="serve a batch: one query per line of FILE "
                             "('-' reads stdin)")
    search.add_argument("--top-n", type=int, default=10,
                        help="interpretations kept by step 2 (default 10)")
    search.add_argument("--no-dbpedia", action="store_true",
                        help="drop the DBpedia synonym layer")
    search.add_argument("--no-execute", action="store_true",
                        help="generate SQL only, skip result snippets")
    search.add_argument("--limit", type=int, default=5,
                        help="statements to display (default 5)")
    search.add_argument("--explain", action="store_true",
                        help="print the query plan under each statement")
    search.add_argument("--analyze", action="store_true",
                        help="with plans: execute instrumented and show "
                             "actual rows + self-time (implies --explain)")
    search.add_argument("--json", action="store_true",
                        help="emit the result as JSON (the same stable wire "
                             "shape `repro serve` answers with)")

    explain = commands.add_parser(
        "explain", help="show the optimized query plan for a SQL statement"
    )
    explain.add_argument("sql", help="a SELECT statement (quote it)")
    explain.add_argument("--analyze", action="store_true",
                         help="execute the statement instrumented and "
                              "annotate each operator with actual rows, "
                              "batches and self-time")

    trace = commands.add_parser(
        "trace", help="run a SODA query with tracing and render the span tree"
    )
    trace.add_argument("query", help="keywords + operators + values")
    trace.add_argument("--json", action="store_true",
                       help="emit the span tree as JSON instead of a tree")
    trace.add_argument("--no-execute", action="store_true",
                       help="generate SQL only, skip result snippets")

    sql = commands.add_parser(
        "sql", help="execute SQL statements against the warehouse or a "
                    "durable database directory"
    )
    sql.add_argument(
        "statements", nargs="+", metavar="statement",
        help="SELECT / INSERT / UPDATE / DELETE / CREATE TABLE / BEGIN / "
             "COMMIT / ROLLBACK / CHECKPOINT (quote each; executed in "
             "order, so one invocation can run a whole transaction)",
    )
    sql.add_argument("--limit", type=int, default=20,
                     help="result rows to display (default 20)")
    sql.add_argument("--data-dir", default=None, metavar="DIR",
                     help="run against a durable database in DIR (created "
                          "or recovered: checkpoint + WAL replay) instead "
                          "of the in-memory finbank warehouse")

    serve = commands.add_parser(
        "serve", help="serve searches over JSON-over-HTTP (asyncio front "
                      "end; /search, /sql, /metrics, /healthz)"
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8765,
                       help="TCP port (default 8765; 0 = ephemeral)")
    serve.add_argument("--http-workers", type=int, default=4, metavar="N",
                       help="engine thread pool size: searches/SQL in "
                            "flight at once (default 4)")
    serve.add_argument("--limit", type=int, default=5,
                       help="default statements per /search response "
                            "(default 5; clients override per request)")
    serve.add_argument("--request-timeout-ms", type=int, default=None,
                       metavar="MS",
                       help="per-request deadline: requests over budget "
                            "cancel cooperatively and answer 503 (default: "
                            "the engine config's request_timeout_ms; "
                            "clients override with ?timeout_ms=)")
    serve.add_argument("--max-inflight", type=int, default=None, metavar="N",
                       help="engine calls admitted at once (default: "
                            "--http-workers); excess requests queue")
    serve.add_argument("--queue-depth", type=int, default=16, metavar="N",
                       help="bounded admission queue: requests waiting for "
                            "an engine slot (default 16; beyond it, 429)")
    serve.add_argument("--queue-timeout-ms", type=float, default=1000.0,
                       metavar="MS",
                       help="longest a request may wait for admission "
                            "before being shed with 429 (default 1000)")
    serve.add_argument("--drain-timeout-s", type=float, default=10.0,
                       metavar="S",
                       help="graceful-drain budget on stop/SIGTERM: "
                            "in-flight requests get this long to finish "
                            "(default 10)")
    serve.add_argument("--maintenance-interval", type=float, default=None,
                       metavar="S",
                       help="run background maintenance (warehouse stats "
                            "refresh; plus index-snapshot saves with "
                            "--snapshot-save) every S seconds, with "
                            "exponential backoff on failure")
    serve.add_argument("--snapshot-save", default=None, metavar="PATH",
                       help="with --maintenance-interval: periodically "
                            "save the warm index snapshot to PATH")

    recover = commands.add_parser(
        "recover",
        help="recover a durable database directory and report its state",
    )
    recover.add_argument("data_dir", metavar="DIR",
                         help="data directory (checkpoint + WAL)")
    recover.add_argument("--checkpoint", action="store_true",
                         help="write a fresh checkpoint after recovery "
                              "(truncates the WAL)")

    experiments = commands.add_parser(
        "experiments", help="run the 13-query workload (Tables 2-4)"
    )
    experiments.add_argument(
        "--batch", action="store_true",
        help="serve the workload through Soda.search_many",
    )
    commands.add_parser(
        "compare", help="run the five baselines (Table 5)"
    )
    stats = commands.add_parser(
        "stats", help="warehouse statistics (Table 1)"
    )
    stats.add_argument("--metrics", action="store_true",
                       help="dump the process-wide metrics registry "
                            "instead of the warehouse tables")
    stats.add_argument("--metrics-format",
                       choices=["table", "json", "prometheus"],
                       default="table",
                       help="rendering for --metrics (default table)")

    index = commands.add_parser(
        "index", help="manage the long-lived search indexes"
    )
    index.add_argument(
        "action", choices=["build", "save", "load", "stats"],
        help="build: time a cold build; save/load: snapshot round-trip; "
             "stats: sizes + maintenance state",
    )
    index.add_argument("--path", default="soda_index_snapshot.json.gz",
                       help="snapshot file (default soda_index_snapshot.json.gz, gzip-compressed)")

    browse = commands.add_parser(
        "browse", help="schema browser: describe a table or a term"
    )
    browse.add_argument("name", help="physical table name or business term")

    page = commands.add_parser(
        "page", help="Google-style result page for a query"
    )
    page.add_argument("query")
    page.add_argument("--page", type=int, default=1)
    page.add_argument("--page-size", type=int, default=5)
    return parser


def _engine_config(args, base=None):
    """The resolved EngineConfig for this invocation (or None).

    ``--engine-config`` overrides *base* field by field; commands that
    want different defaults (``serve`` turns segmented storage on) pass
    their own base and still honour the user's spec.
    """
    from repro.sqlengine.config import EngineConfig

    spec = getattr(args, "engine_config", None)
    if spec is None:
        return base
    return EngineConfig.from_cli(spec, base=base)


def _build_warehouse(args, base_config=None, **overrides):
    kwargs = {
        "seed": args.seed,
        "scale": args.scale,
        "snapshot": getattr(args, "snapshot", None),
        "engine_config": _engine_config(args, base_config),
    }
    kwargs.update(overrides)
    warehouse = build_minibank(**kwargs)
    database = warehouse.database
    mode = getattr(args, "execution_mode", None)
    if mode is not None:
        database.set_execution_mode(mode)
    workers = getattr(args, "parallel_workers", None)
    if workers is not None:
        database.set_parallel_workers(workers)
    if getattr(args, "no_fused", False):
        database.set_fused(False)
    return warehouse


def cmd_search(args, out) -> int:
    if args.query is None and args.batch is None:
        print("error: provide a query or --batch FILE", file=out)
        return 2
    if args.query is not None and args.batch is not None:
        print("error: give either a query or --batch FILE, not both",
              file=out)
        return 2
    warehouse = _build_warehouse(args)
    config = SodaConfig(top_n=args.top_n, use_dbpedia=not args.no_dbpedia)
    soda = Soda(warehouse, config)
    if args.batch is not None:
        return _run_search_batch(args, soda, out)
    result = soda.search(args.query, execute=not args.no_execute)

    if args.json:
        print(result.to_json(limit=args.limit, indent=2), file=out)
        return 0
    print(f"query:      {result.query.describe()}", file=out)
    print(f"complexity: {result.complexity}", file=out)
    print(f"statements: {len(result.statements)}", file=out)
    for position, statement in enumerate(result.statements[:args.limit], 1):
        marker = "  [disconnected]" if statement.disconnected else ""
        print(f"\n#{position}  score {statement.score:.2f}{marker}", file=out)
        print(f"    {statement.sql}", file=out)
        if statement.snippet is not None:
            print(f"    -> {len(statement.snippet.rows)} snippet tuple(s)",
                  file=out)
            for row in statement.snippet.rows[:3]:
                print(f"       {row}", file=out)
        elif statement.execution_error:
            print(f"    -> {statement.execution_error}", file=out)
        if args.explain or args.analyze:
            from repro.errors import SqlError

            try:
                if args.analyze:
                    plan = soda.explain(statement.sql, analyze=True)
                else:
                    plan = statement.plan or soda.explain(statement.sql)
            except SqlError as exc:
                plan = f"(not plannable: {exc})"
            for line in plan.splitlines():
                print(f"    | {line}", file=out)
    if not result.statements:
        print("\n(no executable statements — try different keywords)",
              file=out)
    return 0


def _run_search_batch(args, soda, out) -> int:
    import sys as _sys
    import time

    from repro.core.serving import SearchSession

    if args.batch == "-":
        lines = _sys.stdin.read().splitlines()
    else:
        try:
            with open(args.batch, encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        except OSError as exc:
            print(f"error: cannot read batch file: {exc}", file=out)
            return 1
    queries = [line.strip() for line in lines if line.strip()]
    if not queries:
        print("error: batch file contains no queries", file=out)
        return 1

    session = SearchSession(
        soda, execute=not args.no_execute, limit=args.limit
    )
    started = time.perf_counter()
    results = session.search_many(queries)
    elapsed = time.perf_counter() - started

    for text, result in zip(queries, results):
        best = result.best
        if best is None:
            print(f"{text!r}: no statements", file=out)
            continue
        print(
            f"{text!r}: {len(result.statements)} statement(s), "
            f"best score {best.score:.2f}",
            file=out,
        )
        print(f"    {best.sql}", file=out)
        if args.explain:
            from repro.errors import SqlError

            try:
                plan = best.plan or soda.explain(best.sql)
            except SqlError as exc:
                plan = f"(not plannable: {exc})"
            for line in plan.splitlines():
                print(f"    | {line}", file=out)
    qps = len(queries) / elapsed if elapsed > 0 else float("inf")
    print(
        f"\nbatch: {len(queries)} queries "
        f"({len(set(queries))} unique) in {elapsed:.3f}s ({qps:.1f} q/s)",
        file=out,
    )
    return 0


def cmd_explain(args, out) -> int:
    from repro.errors import SqlError

    warehouse = _build_warehouse(args)
    try:
        plan = warehouse.database.explain(args.sql, analyze=args.analyze)
    except SqlError as exc:
        print(f"error: {exc}", file=out)
        return 1
    print(plan, file=out)
    return 0


def cmd_trace(args, out) -> int:
    warehouse = _build_warehouse(args)
    soda = Soda(warehouse, SodaConfig())
    result = soda.search(
        args.query, execute=not args.no_execute, trace=True
    )
    if args.json:
        print(result.trace.to_json(), file=out)
        return 0
    print(f"query:      {result.query.describe()}", file=out)
    print(f"statements: {len(result.statements)}", file=out)
    print(result.trace.render(), file=out)
    return 0


def _print_result(result, limit, out) -> None:
    if result.columns:
        print(" | ".join(result.columns), file=out)
        for row in result.rows[:limit]:
            print(" | ".join(str(value) for value in row), file=out)
        shown = min(len(result.rows), limit)
        suffix = "" if shown == len(result.rows) else f" ({shown} shown)"
        print(f"{len(result.rows)} row(s){suffix}", file=out)
    elif result.rowcount is not None:
        print(f"{result.rowcount} row(s) affected", file=out)
    else:
        print("ok", file=out)


def cmd_sql(args, out) -> int:
    from repro.errors import RecoveryError, SqlError

    if args.data_dir is not None:
        from repro.sqlengine.database import Database

        try:
            database = Database(
                config=_engine_config(args), data_dir=args.data_dir
            )
        except RecoveryError as exc:
            print(f"error: cannot recover {args.data_dir}: {exc}", file=out)
            return 1
    else:
        database = _build_warehouse(args).database
    try:
        for statement in args.statements:
            try:
                result = database.execute(statement)
            except SqlError as exc:
                print(f"error: {exc}", file=out)
                return 1
            _print_result(result, args.limit, out)
    finally:
        if args.data_dir is not None:
            database.close()
    return 0


def _build_maintenance(args, warehouse):
    """A MaintenanceRunner for ``serve``, or None when not requested."""
    if args.maintenance_interval is None:
        return None
    from repro.resilience.maintenance import MaintenanceRunner

    runner = MaintenanceRunner()
    runner.add_task(
        "stats_refresh",
        warehouse.statistics,
        interval_s=args.maintenance_interval,
    )
    if args.snapshot_save is not None:
        path = args.snapshot_save
        runner.add_task(
            "snapshot_save",
            lambda: warehouse.save_index_snapshot(path),
            interval_s=args.maintenance_interval,
        )
    return runner


def cmd_serve(args, out) -> int:
    import signal

    from repro.server import SodaServer
    from repro.sqlengine.config import DEFAULT_SEGMENT_ROWS, EngineConfig

    # serving turns the concurrent storage layout on by default: frozen
    # segments + delta let reader threads pin snapshots while /sql
    # writes land; --engine-config segment-rows=0 restores flat storage
    base = EngineConfig(segment_rows=DEFAULT_SEGMENT_ROWS)
    warehouse = _build_warehouse(args, base_config=base)
    soda = Soda(warehouse, SodaConfig())
    server = SodaServer(
        soda,
        host=args.host,
        port=args.port,
        workers=args.http_workers,
        default_limit=args.limit,
        request_timeout_ms=args.request_timeout_ms,
        max_inflight=args.max_inflight,
        queue_depth=args.queue_depth,
        queue_timeout_ms=args.queue_timeout_ms,
        drain_timeout_s=args.drain_timeout_s,
        maintenance=_build_maintenance(args, warehouse),
    )
    server.start_background()

    # SIGTERM drains gracefully, same as Ctrl-C: stop accepting, finish
    # in-flight requests (up to --drain-timeout-s), then exit cleanly
    def _on_sigterm(signum, frame):  # pragma: no cover - signal path
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:  # not the main thread (embedded callers)
        pass
    config = warehouse.database.config
    print(f"serving finbank on http://{args.host}:{server.port}", file=out)
    print(
        "engine: "
        + ", ".join(f"{k}={v}" for k, v in config.as_dict().items()),
        file=out,
    )
    print("endpoints: /search /sql /metrics /healthz  "
          "(Ctrl-C or SIGTERM drains and stops)",
          file=out)
    try:
        while server._thread is not None and server._thread.is_alive():
            server._thread.join(timeout=1)
    except KeyboardInterrupt:
        print("draining...", file=out)
    finally:
        report = server.stop()
        if report["stuck_threads"]:  # pragma: no cover - hang reporting
            print(
                "warning: threads still running after drain: "
                + ", ".join(report["stuck_threads"]),
                file=out,
            )
    return 0


def cmd_recover(args, out) -> int:
    from repro.errors import RecoveryError
    from repro.sqlengine.database import Database

    try:
        database = Database(data_dir=args.data_dir)
    except RecoveryError as exc:
        where = exc.path or args.data_dir
        kind = exc.kind or "unknown"
        print(f"error: recovery failed [{kind}] at {where}: {exc}", file=out)
        return 1
    info = database.recovery_info
    checkpoint_state = "loaded" if info["checkpoint"] else "none"
    print(
        f"recovered {args.data_dir}: generation {info['generation']}, "
        f"checkpoint {checkpoint_state}, "
        f"{info['replayed']} WAL record(s) replayed",
        file=out,
    )
    for name in database.table_names():
        print(f"  {name:32s} {database.row_count(name)} row(s)", file=out)
    if args.checkpoint:
        summary = database.checkpoint()
        print(
            f"checkpoint written: generation {summary['generation']}, "
            f"{summary['checkpoint_bytes']} byte(s)",
            file=out,
        )
    database.close()
    return 0


def cmd_experiments(args, out) -> int:
    from repro.experiments.reporting import (
        format_table2,
        format_table3,
        format_table4,
    )
    from repro.experiments.runner import ExperimentRunner

    runner = ExperimentRunner(warehouse=_build_warehouse(args))
    outcomes = runner.run_all(batch=args.batch)
    print("Table 2: Experiment queries", file=out)
    print(format_table2(), file=out)
    print("\nTable 3: Precision and recall (measured vs paper)", file=out)
    print(format_table3(outcomes), file=out)
    print("\nTable 4: Complexity and runtime (measured vs paper)", file=out)
    print(format_table4(outcomes), file=out)
    return 0


def cmd_compare(args, out) -> int:
    from repro.baselines.capabilities import (
        capability_matrix,
        default_systems,
        evaluate_system,
        format_table5,
        soda_evaluation,
    )
    from repro.experiments.runner import ExperimentRunner

    warehouse = _build_warehouse(args, scale=min(args.scale, 0.5), snapshot=None)
    evaluations = [
        evaluate_system(system, warehouse)
        for system in default_systems(warehouse)
    ]
    outcomes = ExperimentRunner(warehouse=warehouse).run_all()
    evaluations.append(soda_evaluation(outcomes))
    print("Table 5: Qualitative comparison (measured [paper])", file=out)
    print(
        format_table5(
            capability_matrix(evaluations), [e.system for e in evaluations]
        ),
        file=out,
    )
    return 0


def cmd_index(args, out) -> int:
    import os
    import time

    from repro.errors import WarehouseError
    from repro.index.inverted import InvertedIndex

    # a load left on the default path falls back to the pre-compression
    # default name when only that file exists (the loader reads both
    # formats, so legacy snapshots keep working without --path)
    if (
        args.action == "load"
        and args.path == "soda_index_snapshot.json.gz"
        and not os.path.exists(args.path)
        and os.path.exists("soda_index_snapshot.json")
    ):
        args.path = "soda_index_snapshot.json"

    # "load" warm-starts the build from the snapshot under test so the
    # success path never pays the cold scan it is meant to replace;
    # the other actions always start cold
    warehouse = _build_warehouse(
        args, snapshot=args.path if args.action == "load" else None
    )
    if args.action == "build":
        started = time.perf_counter()
        rebuilt = InvertedIndex.build(warehouse.database.catalog)
        warehouse.classification_index()
        elapsed = time.perf_counter() - started
        print(f"cold index build: {elapsed:.3f}s", file=out)
        for key, value in sorted(rebuilt.size_summary().items()):
            print(f"  {key:32s} {value}", file=out)
    elif args.action == "save":
        warehouse.classification_index()  # materialize the default variant
        started = time.perf_counter()
        warehouse.save_index_snapshot(args.path)
        elapsed = time.perf_counter() - started
        print(f"saved index snapshot to {args.path} ({elapsed:.3f}s)",
              file=out)
    elif args.action == "load":
        started = time.perf_counter()
        try:
            snapshot = warehouse.load_index_snapshot(args.path)
        except WarehouseError as exc:
            print(f"error: {exc}", file=out)
            return 1
        elapsed = time.perf_counter() - started
        print(
            f"loaded snapshot {args.path} ({elapsed:.3f}s, "
            f"fingerprint {snapshot.fingerprint}, "
            f"{len(snapshot.classifications)} classification variant(s))",
            file=out,
        )
        for key, value in sorted(warehouse.inverted.size_summary().items()):
            print(f"  {key:32s} {value}", file=out)
    else:  # stats
        for key, value in sorted(warehouse.inverted.size_summary().items()):
            print(f"  {key:32s} {value}", file=out)
        classification = warehouse.classification_index()
        print(f"  {'classification_terms':32s} {classification.term_count()}",
              file=out)
        maintainer = warehouse.maintainer
        if maintainer is not None:
            print(f"  {'maintained_inserts':32s} {maintainer.applied_inserts}",
                  file=out)
            print(f"  {'maintained_updates':32s} {maintainer.applied_updates}",
                  file=out)
            print(f"  {'maintained_deletes':32s} {maintainer.applied_deletes}",
                  file=out)
            print(f"  {'maintained_ddl':32s} {maintainer.applied_ddl}",
                  file=out)
    return 0


def cmd_stats(args, out) -> int:
    from repro.experiments.reporting import format_table1
    from repro.warehouse.synthetic import generate_definition

    warehouse = _build_warehouse(args)
    if args.metrics:
        return _print_metrics(warehouse, args.metrics_format, out)
    print("finbank warehouse:", file=out)
    for key, value in sorted(warehouse.statistics().items()):
        print(f"  {key:32s} {value}", file=out)
    print("\nTable 1 (synthetic generator at paper scale):", file=out)
    print(format_table1(generate_definition().schema_statistics()), file=out)
    return 0


def _print_metrics(warehouse, metrics_format, out) -> int:
    from repro.obs.metrics import registry

    snapshot = warehouse.database.metrics()  # refreshes the gauges
    if metrics_format == "json":
        import json

        print(json.dumps(snapshot, indent=2, sort_keys=True), file=out)
    elif metrics_format == "prometheus":
        print(registry().render_prometheus(), file=out)
    else:
        for name, entry in sorted(snapshot.items()):
            value = entry["value"]
            if entry["kind"] == "histogram":
                value = (
                    f"count={value['count']} sum={value['sum']:.6f} "
                    f"mean={value['mean']:.6f}"
                )
            print(f"  {name:40s} {entry['kind']:9s} {value}", file=out)
    return 0


def cmd_browse(args, out) -> int:
    from repro.warehouse.browser import SchemaBrowser

    warehouse = _build_warehouse(args)
    browser = SchemaBrowser(warehouse)
    if warehouse.definition.has_physical_table(args.name):
        print(browser.describe_table(args.name).render(), file=out)
    else:
        print(browser.describe_term(args.name).render(), file=out)
    return 0


def cmd_page(args, out) -> int:
    from repro.core.results import render_page

    warehouse = _build_warehouse(args)
    soda = Soda(warehouse, SodaConfig())
    result = soda.search(args.query)
    page = render_page(result, page=args.page, page_size=args.page_size)
    print(page.render(), file=out)
    return 0


def main(argv=None, out=None) -> int:
    from repro.errors import SqlError

    out = out or sys.stdout
    args = make_parser().parse_args(argv)
    handlers = {
        "search": cmd_search,
        "explain": cmd_explain,
        "trace": cmd_trace,
        "sql": cmd_sql,
        "serve": cmd_serve,
        "recover": cmd_recover,
        "experiments": cmd_experiments,
        "compare": cmd_compare,
        "stats": cmd_stats,
        "index": cmd_index,
        "browse": cmd_browse,
        "page": cmd_page,
    }
    try:
        return handlers[args.command](args, out)
    except SqlError as exc:  # e.g. an out-of-range --parallel-workers
        print(f"error: {exc}", file=out)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
