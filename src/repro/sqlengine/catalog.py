"""Catalog and table storage for the in-memory relational engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

from repro.errors import SqlCatalogError, SqlTypeError
from repro.sqlengine.types import SqlType, coerce_value


@dataclass(frozen=True)
class Column:
    """Schema of one column."""

    name: str
    sql_type: SqlType
    primary_key: bool = False


class CatalogObserver:
    """Write-through hook interface for derived structures (indexes).

    A registered observer is told about every row insert and every DDL
    statement, so long-lived structures built over the catalog (the
    SODA inverted index, statistics, caches) can maintain themselves
    incrementally instead of being rebuilt by full scans.  All methods
    are no-ops by default; subclasses override what they need.
    """

    def on_insert(self, table: "Table", row: tuple) -> None:
        """One coerced row was appended to *table*."""

    def on_create_table(self, table: "Table") -> None:
        """*table* was just created (empty)."""

    def on_drop_table(self, name: str) -> None:
        """The table called *name* was dropped."""


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key constraint from this table to *ref_table*."""

    columns: tuple
    ref_table: str
    ref_columns: tuple

    def __post_init__(self) -> None:
        if len(self.columns) != len(self.ref_columns):
            raise SqlCatalogError(
                f"foreign key arity mismatch: {self.columns} vs {self.ref_columns}"
            )


class Table:
    """A named table: column schema plus dual row/columnar storage.

    Rows are tuples in column order.  Values are validated and coerced on
    insert so that downstream operators can rely on type invariants.

    Storage is kept in two synchronized layouts: ``rows`` (a list of
    tuples, the view used by the inverted-index maintainer, snapshots and
    the row-at-a-time operators) and one Python list per column
    (``column_data``), which the vectorized batch operators slice
    directly without per-row tuple indexing.  Both are appended by the
    single insert path, so they can never diverge.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        foreign_keys: Iterable[ForeignKey] = (),
    ) -> None:
        if not columns:
            raise SqlCatalogError(f"table {name!r} must have at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise SqlCatalogError(f"duplicate column names in table {name!r}")
        self.name = name
        self.columns = tuple(columns)
        self.foreign_keys = tuple(foreign_keys)
        self._index_of = {c.name: i for i, c in enumerate(self.columns)}
        self.rows: list[tuple] = []
        #: columnar storage: one value list per column, in schema order
        self._column_data: list[list] = [[] for __ in self.columns]
        # shared with the owning catalog (see Catalog.register_observer)
        self._observers: list[CatalogObserver] = []

    # ------------------------------------------------------------------
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def column_index(self, name: str) -> int:
        try:
            return self._index_of[name]
        except KeyError:
            raise SqlCatalogError(
                f"no column {name!r} in table {self.name!r}"
            ) from None

    def has_column(self, name: str) -> bool:
        return name in self._index_of

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    def primary_key_columns(self) -> list[str]:
        return [c.name for c in self.columns if c.primary_key]

    # ------------------------------------------------------------------
    def column_data(self, index: int) -> list:
        """The value list of the column at *index* (live, do not mutate)."""
        return self._column_data[index]

    def column_values(self, name: str) -> list:
        """The value list of the named column (live, do not mutate)."""
        return self._column_data[self.column_index(name)]

    # ------------------------------------------------------------------
    def insert(self, values: Sequence[Any]) -> None:
        """Insert one row given positionally."""
        if len(values) != len(self.columns):
            raise SqlCatalogError(
                f"table {self.name!r} expects {len(self.columns)} values, "
                f"got {len(values)}"
            )
        row = tuple(
            coerce_value(value, column.sql_type)
            for value, column in zip(values, self.columns)
        )
        self.rows.append(row)
        for store, value in zip(self._column_data, row):
            store.append(value)
        for observer in self._observers:
            observer.on_insert(self, row)

    def insert_named(self, **values: Any) -> None:
        """Insert one row given by column name; missing columns become NULL."""
        unknown = set(values) - set(self._index_of)
        if unknown:
            raise SqlCatalogError(
                f"unknown columns for table {self.name!r}: {sorted(unknown)}"
            )
        self.insert([values.get(c.name) for c in self.columns])

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> None:
        for row in rows:
            self.insert(row)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Table {self.name} cols={len(self.columns)} rows={len(self.rows)}>"


class Catalog:
    """All tables of one database, with FK metadata.

    The catalog tracks a DDL version so the planner can fingerprint it
    (see :meth:`fingerprint`) and invalidate cached plans when the
    schema or the data volume changes.
    """

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._ddl_version = 0
        self._observers: list[CatalogObserver] = []

    def register_observer(self, observer: CatalogObserver) -> None:
        """Subscribe *observer* to inserts/DDL on all current and future tables."""
        if observer in self._observers:
            return
        self._observers.append(observer)
        for table in self._tables.values():
            table._observers = self._observers

    def unregister_observer(self, observer: CatalogObserver) -> None:
        """Remove a previously registered observer (no-op if absent)."""
        if observer in self._observers:
            self._observers.remove(observer)

    def observers(self) -> list[CatalogObserver]:
        return list(self._observers)

    def create_table(
        self,
        name: str,
        columns: Sequence[Column],
        foreign_keys: Iterable[ForeignKey] = (),
    ) -> Table:
        key = name.lower()
        if key in self._tables:
            raise SqlCatalogError(f"table already exists: {name!r}")
        table = Table(key, columns, foreign_keys)
        table._observers = self._observers
        self._tables[key] = table
        self._ddl_version += 1
        for observer in self._observers:
            observer.on_create_table(table)
        return table

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise SqlCatalogError(f"no such table: {name!r}")
        del self._tables[key]
        self._ddl_version += 1
        for observer in self._observers:
            observer.on_drop_table(key)

    @property
    def ddl_version(self) -> int:
        """Bumped on every CREATE/DROP; part of the plan-cache key."""
        return self._ddl_version

    def fingerprint(self) -> tuple:
        """A cheap token that changes whenever plans could go stale.

        Combines the DDL version with the total row count: CREATE/DROP
        bumps the former, inserts grow the latter (rows are append-only,
        so the sum is strictly monotonic per table).
        """
        total_rows = sum(len(table.rows) for table in self._tables.values())
        return (self._ddl_version, total_rows)

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise SqlCatalogError(f"no such table: {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def tables(self) -> list[Table]:
        return [self._tables[name] for name in self.table_names()]

    def foreign_key_edges(self) -> list[tuple[str, str, ForeignKey]]:
        """All (from_table, to_table, fk) edges in the catalog."""
        edges = []
        for table in self.tables():
            for fk in table.foreign_keys:
                edges.append((table.name, fk.ref_table, fk))
        return edges
