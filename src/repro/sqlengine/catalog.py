"""Catalog and table storage for the in-memory relational engine."""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

from repro.concurrency import SharedRLock
from repro.errors import SqlCatalogError, SqlTypeError
from repro.sqlengine.encoding import (
    DICT_ENCODING_MAX_DISTINCT,
    ArrayColumn,
    ColumnDictionary,
)
from repro.sqlengine.segments import SegmentedStorage
from repro.sqlengine.types import SqlType, coerce_value


def _locked(method):
    """Run *method* under the table's storage lock.

    Every mutation path is wrapped so the frozen-segment mirror, the
    flat storage and the dictionary codes always change as one atomic
    step with respect to :meth:`Table.pin` /
    :meth:`Catalog.pin_tables`.  The lock is an uncontended C-level
    RLock for the classic single-threaded setup, so the wrapper costs
    next to nothing there.
    """

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._storage_lock:
            return method(self, *args, **kwargs)

    return wrapper


@dataclass(frozen=True)
class Column:
    """Schema of one column."""

    name: str
    sql_type: SqlType
    primary_key: bool = False


class CatalogObserver:
    """Write-through hook interface for derived structures (indexes).

    A registered observer is told about every row insert, update and
    delete, and every DDL statement, so long-lived structures built
    over the catalog (the SODA inverted index, statistics, caches) can
    maintain themselves incrementally instead of being rebuilt by full
    scans.  All methods are no-ops by default; subclasses override what
    they need.
    """

    def on_insert(self, table: "Table", row: tuple) -> None:
        """One coerced row was appended to *table*."""

    def on_update(self, table: "Table", old_row: tuple, new_row: tuple) -> None:
        """One row of *table* was rewritten in place."""

    def on_delete(self, table: "Table", row: tuple) -> None:
        """One row of *table* was removed."""

    def on_create_table(self, table: "Table") -> None:
        """*table* was just created (empty)."""

    def on_drop_table(self, name: str) -> None:
        """The table called *name* was dropped."""


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key constraint from this table to *ref_table*."""

    columns: tuple
    ref_table: str
    ref_columns: tuple

    def __post_init__(self) -> None:
        if len(self.columns) != len(self.ref_columns):
            raise SqlCatalogError(
                f"foreign key arity mismatch: {self.columns} vs {self.ref_columns}"
            )


class Table:
    """A named table: column schema plus dual row/columnar storage.

    Rows are tuples in column order.  Values are validated and coerced on
    insert so that downstream operators can rely on type invariants.

    Storage is kept in two synchronized layouts: ``rows`` (a list of
    tuples, the view used by the inverted-index maintainer, snapshots and
    the row-at-a-time operators) and one Python list per column
    (``column_data``), which the vectorized batch operators slice
    directly without per-row tuple indexing.  All mutation flows through
    the single insert/update/delete paths below, which write both
    layouts in lockstep (in-place column writes for UPDATE, tombstone-
    free compaction for DELETE), so they can never diverge.  Both list
    objects keep their identity across mutations, so operators holding a
    reference always see the live data.

    Every mutation bumps :attr:`version` (the per-table plan-cache
    validity token); updates and deletes additionally bump
    :attr:`mutation_count`, which feeds the catalog fingerprint so
    non-append writes are visible to snapshot staleness checks even when
    the row count ends up unchanged.

    TEXT columns additionally carry a **dictionary encoding** while
    their live distinct-value count stays at or below
    ``dict_encoding_threshold`` (default
    :data:`~repro.sqlengine.encoding.DICT_ENCODING_MAX_DISTINCT`; 0
    disables encoding): a refcounted
    :class:`~repro.sqlengine.encoding.ColumnDictionary` plus one code
    per row, maintained through the same single mutation path as the
    two value layouts.  The vectorized engine reads the codes for
    integer-speed string predicates and code-keyed GROUP BY / DISTINCT
    / join probes; a column whose cardinality outgrows the threshold
    drops its dictionary and falls back to plain value batches.

    With ``array_store=True`` the INTEGER/REAL entries of
    ``column_data`` are :class:`~repro.sqlengine.encoding.ArrayColumn`
    typed buffers instead of plain lists (contiguous int64/float64
    storage, NULLs via a validity bitmap).  They are list-alike — reads
    and slices decode to plain Python values — and are maintained
    through the same single mutation path, so nothing downstream
    changes.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        foreign_keys: Iterable[ForeignKey] = (),
        dict_encoding_threshold: "int | None" = None,
        array_store: bool = False,
        segment_rows: int = 0,
        storage_lock: "SharedRLock | None" = None,
    ) -> None:
        if not columns:
            raise SqlCatalogError(f"table {name!r} must have at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise SqlCatalogError(f"duplicate column names in table {name!r}")
        self.name = name
        self.columns = tuple(columns)
        self.foreign_keys = tuple(foreign_keys)
        self._index_of = {c.name: i for i, c in enumerate(self.columns)}
        self.rows: list[tuple] = []
        #: columnar storage: one value list per column, in schema order
        #: (ArrayColumn typed buffers for INTEGER/REAL when opted in)
        self._column_data: list = [
            ArrayColumn("q" if column.sql_type is SqlType.INTEGER else "d")
            if array_store
            and column.sql_type in (SqlType.INTEGER, SqlType.REAL)
            else []
            for column in self.columns
        ]
        self.array_store = array_store
        self._dict_threshold = (
            DICT_ENCODING_MAX_DISTINCT
            if dict_encoding_threshold is None
            else max(0, dict_encoding_threshold)
        )
        #: per-column dictionary (TEXT columns under the threshold; None
        #: once a column is unencoded) and the aligned code lists
        self._dictionaries: list = [
            ColumnDictionary()
            if self._dict_threshold and column.sql_type is SqlType.TEXT
            else None
            for column in self.columns
        ]
        self._codes: list = [
            [] if dictionary is not None else None
            for dictionary in self._dictionaries
        ]
        self._encoded_indexes: list[int] = [
            i for i, d in enumerate(self._dictionaries) if d is not None
        ]
        #: bumped on every insert/update/delete (plan-cache validity)
        self._version = 0
        #: updates + deletes only (feeds the catalog fingerprint)
        self._mutation_count = 0
        # shared with the owning catalog (see Catalog.register_observer)
        self._observers: list[CatalogObserver] = []
        #: active undo log (see repro.sqlengine.txn.undo) or None; every
        #: mutation below records its inverse here while a transaction —
        #: explicit or per-statement implicit — is open on this table
        self._undo = None
        #: frozen-segment + delta mirror (see repro.sqlengine.segments),
        #: or None for the classic flat-only storage
        self._segments = (
            SegmentedStorage(segment_rows) if segment_rows > 0 else None
        )
        #: guards every mutation and every pin; shared across all tables
        #: of one catalog so multi-table pins are a single atomic step
        self._storage_lock = (
            storage_lock if storage_lock is not None else SharedRLock()
        )

    # ------------------------------------------------------------------
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def column_index(self, name: str) -> int:
        try:
            return self._index_of[name]
        except KeyError:
            raise SqlCatalogError(
                f"no column {name!r} in table {self.name!r}"
            ) from None

    def has_column(self, name: str) -> bool:
        return name in self._index_of

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    def primary_key_columns(self) -> list[str]:
        return [c.name for c in self.columns if c.primary_key]

    # ------------------------------------------------------------------
    def column_data(self, index: int) -> list:
        """The value list of the column at *index* (live, do not mutate)."""
        return self._column_data[index]

    def column_values(self, name: str) -> list:
        """The value list of the named column (live, do not mutate)."""
        return self._column_data[self.column_index(name)]

    def column_dictionary(self, index: int) -> "ColumnDictionary | None":
        """The dictionary of the column at *index*, or None if unencoded."""
        return self._dictionaries[index]

    def column_codes(self, index: int) -> "list | None":
        """The per-row code list of the column at *index* (live), or None."""
        return self._codes[index]

    def encoded_column_names(self) -> list[str]:
        """Names of the columns currently carrying a dictionary."""
        return [self.columns[i].name for i in self._encoded_indexes]

    def _disable_dictionary(self, index: int) -> None:
        """Drop the dictionary of one column (cardinality outgrew the cap)."""
        self._dictionaries[index] = None
        self._codes[index] = None
        self._encoded_indexes.remove(index)

    def _check_dictionary_thresholds(self) -> None:
        for index in list(self._encoded_indexes):
            if self._dictionaries[index].live_count > self._dict_threshold:
                self._disable_dictionary(index)

    # ------------------------------------------------------------------
    @property
    def segmented(self) -> bool:
        """True when this table keeps a frozen-segment + delta mirror."""
        return self._segments is not None

    def read_guard(self) -> "SharedRLock":
        """The storage lock, for callers that must iterate live storage.

        Used as ``with table.read_guard():`` by readers that walk the
        mutable flat lists directly (e.g. the statistics gatherer) and
        therefore cannot tolerate a concurrent compaction.  Pinned scans
        never need it.
        """
        return self._storage_lock

    def pin(self):
        """An immutable :class:`~repro.sqlengine.segments.TableSnapshot`.

        Only meaningful for segmented tables (None otherwise).  Cheap:
        the segment list plus a copy of the small delta, taken under
        the storage lock.
        """
        if self._segments is None:
            return None
        with self._storage_lock:
            return self._segments.snapshot(self)

    def segment_stats(self) -> "dict | None":
        """Segment/delta/tombstone counts, or None when unsegmented."""
        if self._segments is None:
            return None
        with self._storage_lock:
            return self._segments.stats(self)

    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Bumped on every insert/update/delete of this table."""
        return self._version

    @property
    def mutation_count(self) -> int:
        """Updates + deletes applied to this table (never appends)."""
        return self._mutation_count

    # ------------------------------------------------------------------
    @_locked
    def insert(self, values: Sequence[Any]) -> None:
        """Insert one row given positionally."""
        if len(values) != len(self.columns):
            raise SqlCatalogError(
                f"table {self.name!r} expects {len(self.columns)} values, "
                f"got {len(values)}"
            )
        row = tuple(
            coerce_value(value, column.sql_type)
            for value, column in zip(values, self.columns)
        )
        if self._undo is not None:
            self._undo.record_insert(self, len(self.rows))
        self.rows.append(row)
        for store, value in zip(self._column_data, row):
            store.append(value)
        if self._encoded_indexes:
            for index in self._encoded_indexes:
                value = row[index]
                self._codes[index].append(
                    None
                    if value is None
                    else self._dictionaries[index].encode(value)
                )
            self._check_dictionary_thresholds()
        if self._segments is not None:
            self._segments.note_insert(self)
        self._version += 1
        for observer in self._observers:
            observer.on_insert(self, row)

    def insert_named(self, **values: Any) -> None:
        """Insert one row given by column name; missing columns become NULL."""
        unknown = set(values) - set(self._index_of)
        if unknown:
            raise SqlCatalogError(
                f"unknown columns for table {self.name!r}: {sorted(unknown)}"
            )
        self.insert([values.get(c.name) for c in self.columns])

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> None:
        for row in rows:
            self.insert(row)

    # ------------------------------------------------------------------
    # the single mutation path (shared by both execution engines)
    # ------------------------------------------------------------------
    @_locked
    def update_positions(
        self, positions: Sequence[int], new_rows: Sequence[Sequence[Any]]
    ) -> int:
        """Rewrite the rows at *positions* with *new_rows*, in place.

        Values are validated and coerced exactly like inserts.  The
        tuple list and every per-column list are written together, and
        observers see one ``on_update(table, old_row, new_row)`` per
        row.  All validation (positions in range, values coercible)
        happens before the first write, so an error leaves the table
        untouched.  Returns the row count.
        """
        if len(positions) != len(new_rows):
            raise SqlCatalogError(
                f"table {self.name!r}: {len(positions)} positions but "
                f"{len(new_rows)} replacement rows"
            )
        if positions and (
            min(positions) < 0 or max(positions) >= len(self.rows)
        ):
            raise SqlCatalogError(
                f"table {self.name!r}: update position out of range "
                f"(have {len(self.rows)} rows)"
            )
        coerced = []
        for values in new_rows:
            if len(values) != len(self.columns):
                raise SqlCatalogError(
                    f"table {self.name!r} expects {len(self.columns)} "
                    f"values, got {len(values)}"
                )
            coerced.append(
                tuple(
                    coerce_value(value, column.sql_type)
                    for value, column in zip(values, self.columns)
                )
            )
        if not coerced:
            return 0
        rows = self.rows
        if self._undo is not None:
            self._undo.record_update(
                self,
                list(positions),
                [rows[position] for position in positions],
            )
        column_data = self._column_data
        encoded_indexes = self._encoded_indexes
        changes = []
        for position, new_row in zip(positions, coerced):
            old_row = rows[position]
            rows[position] = new_row
            for store, value in zip(column_data, new_row):
                store[position] = value
            for index in encoded_indexes:
                dictionary = self._dictionaries[index]
                codes = self._codes[index]
                old_code = codes[position]
                if old_code is not None:
                    dictionary.release(old_code)
                value = new_row[index]
                codes[position] = (
                    None if value is None else dictionary.encode(value)
                )
            changes.append((old_row, new_row))
        if encoded_indexes:
            self._check_dictionary_thresholds()
        if self._segments is not None:
            self._segments.note_update(self, positions)
        self._version += 1
        self._mutation_count += 1
        for observer in self._observers:
            for old_row, new_row in changes:
                observer.on_update(self, old_row, new_row)
        return len(changes)

    @_locked
    def delete_positions(self, positions: Sequence[int]) -> int:
        """Remove the rows at *positions* (tombstone-free compaction).

        Both storages are compacted together via in-place slice
        assignment, preserving list object identity for any operator
        holding a reference.  Observers see one ``on_delete(table,
        row)`` per removed row, in table order.  Returns the row count.
        """
        doomed = set(positions)
        if not doomed:
            return 0
        rows = self.rows
        if min(doomed) < 0 or max(doomed) >= len(rows):
            raise SqlCatalogError(
                f"table {self.name!r}: delete position out of range "
                f"(have {len(rows)} rows)"
            )
        removed = [rows[position] for position in sorted(doomed)]
        if self._undo is not None:
            self._undo.record_delete(self, sorted(doomed), removed)
        segment_plan = (
            self._segments.plan_delete(sorted(doomed))
            if self._segments is not None
            else None
        )
        rows[:] = [
            row for position, row in enumerate(rows) if position not in doomed
        ]
        for store in self._column_data:
            store[:] = [
                value
                for position, value in enumerate(store)
                if position not in doomed
            ]
        for index in self._encoded_indexes:
            dictionary = self._dictionaries[index]
            codes = self._codes[index]
            for position in doomed:
                code = codes[position]
                if code is not None:
                    dictionary.release(code)
            codes[:] = [
                code
                for position, code in enumerate(codes)
                if position not in doomed
            ]
        if self._segments is not None:
            self._segments.commit_delete(self, segment_plan)
        self._version += 1
        self._mutation_count += 1
        for observer in self._observers:
            for row in removed:
                observer.on_delete(self, row)
        return len(removed)

    @_locked
    def restore_rows(self, positions: Sequence[int], rows: Sequence[tuple]) -> None:
        """Re-insert previously removed rows at their original positions.

        The exact inverse of :meth:`delete_positions`: *positions* are
        the (strictly ascending) positions the rows occupied before the
        delete, and *rows* the already-coerced tuples it removed.  Both
        storages are rebuilt together via in-place slice assignment
        (list identity preserved), dictionary codes are re-interned for
        the restored rows only, and observers see one ``on_insert`` per
        row — so derived structures (the inverted index) converge to the
        pre-delete state.  Used by the transaction undo log; not a
        public mutation path.
        """
        if len(positions) != len(rows):
            raise SqlCatalogError(
                f"table {self.name!r}: {len(positions)} restore positions "
                f"but {len(rows)} rows"
            )
        if not positions:
            return
        final_len = len(self.rows) + len(positions)
        restored_at = dict(zip(positions, rows))
        if (
            len(restored_at) != len(positions)
            or list(positions) != sorted(positions)
            or positions[0] < 0
            or positions[-1] >= final_len
        ):
            raise SqlCatalogError(
                f"table {self.name!r}: restore positions must be unique, "
                f"ascending and within {final_len} rows"
            )
        survivors = iter(list(self.rows))
        merged = [
            restored_at[pos] if pos in restored_at else next(survivors)
            for pos in range(final_len)
        ]
        self.rows[:] = merged
        for index, store in enumerate(self._column_data):
            store[:] = [row[index] for row in merged]
        for index in self._encoded_indexes:
            dictionary = self._dictionaries[index]
            codes = self._codes[index]
            old_codes = iter(list(codes))
            merged_codes = []
            for pos in range(final_len):
                if pos in restored_at:
                    value = restored_at[pos][index]
                    merged_codes.append(
                        None if value is None else dictionary.encode(value)
                    )
                else:
                    merged_codes.append(next(old_codes))
            codes[:] = merged_codes
        if self._encoded_indexes:
            self._check_dictionary_thresholds()
        if self._segments is not None:
            # rollback rewrites arbitrary ranges; re-derive the mirror
            self._segments.rebuild(self)
        self._version += 1
        self._mutation_count += 1
        for observer in self._observers:
            for position in positions:
                observer.on_insert(self, restored_at[position])

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Table {self.name} cols={len(self.columns)} rows={len(self.rows)}>"


class Catalog:
    """All tables of one database, with FK metadata.

    The catalog tracks a DDL version so the planner can fingerprint it
    (see :meth:`fingerprint`) and invalidate cached plans when the
    schema or the data volume changes.
    """

    def __init__(
        self,
        dict_encoding_threshold: "int | None" = None,
        array_store: bool = False,
        segment_rows: int = 0,
    ) -> None:
        if not isinstance(array_store, bool):
            raise SqlCatalogError(
                f"array_store must be True or False, got {array_store!r}"
            )
        if (
            not isinstance(segment_rows, int)
            or isinstance(segment_rows, bool)
            or segment_rows < 0
        ):
            raise SqlCatalogError(
                f"segment_rows must be an integer >= 0, got {segment_rows!r}"
            )
        self._tables: dict[str, Table] = {}
        self._ddl_version = 0
        self._observers: list[CatalogObserver] = []
        #: passed to every table this catalog creates (None = default)
        self._dict_encoding_threshold = dict_encoding_threshold
        #: INTEGER/REAL columns of new tables use ArrayColumn buffers
        self.array_store = array_store
        #: > 0 opts every table into frozen-segment + delta storage
        self.segment_rows = segment_rows
        #: one lock for all tables: writers serialize catalog-wide, and
        #: pin_tables captures a multi-table snapshot set atomically
        self._storage_lock = SharedRLock()
        #: set to a unique token while an explicit transaction is open
        #: (see fingerprint); None outside transactions
        self._txn_token = None

    def register_observer(self, observer: CatalogObserver) -> None:
        """Subscribe *observer* to inserts/DDL on all current and future tables."""
        if observer in self._observers:
            return
        self._observers.append(observer)
        for table in self._tables.values():
            table._observers = self._observers

    def unregister_observer(self, observer: CatalogObserver) -> None:
        """Remove a previously registered observer (no-op if absent)."""
        if observer in self._observers:
            self._observers.remove(observer)

    def observers(self) -> list[CatalogObserver]:
        return list(self._observers)

    def create_table(
        self,
        name: str,
        columns: Sequence[Column],
        foreign_keys: Iterable[ForeignKey] = (),
    ) -> Table:
        key = name.lower()
        if key in self._tables:
            raise SqlCatalogError(f"table already exists: {name!r}")
        table = Table(
            key,
            columns,
            foreign_keys,
            dict_encoding_threshold=self._dict_encoding_threshold,
            array_store=self.array_store,
            segment_rows=self.segment_rows,
            storage_lock=self._storage_lock,
        )
        table._observers = self._observers
        self._tables[key] = table
        self._ddl_version += 1
        for observer in self._observers:
            observer.on_create_table(table)
        return table

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise SqlCatalogError(f"no such table: {name!r}")
        del self._tables[key]
        self._ddl_version += 1
        for observer in self._observers:
            observer.on_drop_table(key)

    @property
    def ddl_version(self) -> int:
        """Bumped on every CREATE/DROP; part of the plan-cache key."""
        return self._ddl_version

    def fingerprint(self) -> tuple:
        """A cheap token that changes whenever derived state could go stale.

        ``(ddl_version, total_rows, total_mutations)``: CREATE/DROP
        bumps the first, inserts grow the second, and UPDATE/DELETE bump
        the third — so a delete-then-reinsert that restores the row
        count, or an update that never changes it, still produces a new
        fingerprint.  Used by index snapshots and the serving-session
        result memo; the plan cache uses the finer-grained per-table
        :meth:`table_versions` instead.

        While an explicit transaction is open a unique ``("txn", n)``
        token is appended: uncommitted state must never validate a
        memo, and the token is never reused, so a later transaction
        that happens to reach the same counters cannot collide.  After
        COMMIT or ROLLBACK the plain three-tuple form returns, matching
        a catalog that only ever saw the committed statements.
        """
        total_rows = 0
        total_mutations = 0
        for table in self._tables.values():
            total_rows += len(table.rows)
            total_mutations += table.mutation_count
        base = (self._ddl_version, total_rows, total_mutations)
        if self._txn_token is not None:
            return base + (("txn", self._txn_token),)
        return base

    def table_versions(self, names: Iterable[str]) -> tuple:
        """``(name, version)`` per table, the plan-cache validity token.

        Unknown tables get version ``None`` so a cached plan whose table
        was dropped (or dropped and re-created, which resets the
        counter) can never validate.
        """
        tokens = []
        for name in names:
            table = self._tables.get(name.lower())
            tokens.append((name, table.version if table is not None else None))
        return tuple(tokens)

    def pin_tables(self, names: Iterable[str]) -> "dict | None":
        """Pin snapshots of the named tables as one atomic step.

        Returns ``{id(table): TableSnapshot}`` for installation via
        :func:`repro.sqlengine.segments.pinned`, or None when nothing
        is segmented (the common flat-storage case: a cheap fast path
        with no lock traffic).  Taking every snapshot under one
        acquisition of the catalog-wide storage lock guarantees a
        multi-table query reads one mutually consistent state.
        """
        if not self.segment_rows:
            return None
        pins: dict = {}
        with self._storage_lock:
            for name in names:
                table = self._tables.get(name.lower())
                if table is not None and table._segments is not None:
                    pins[id(table)] = table._segments.snapshot(table)
        return pins or None

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise SqlCatalogError(f"no such table: {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def tables(self) -> list[Table]:
        return [self._tables[name] for name in self.table_names()]

    def foreign_key_edges(self) -> list[tuple[str, str, ForeignKey]]:
        """All (from_table, to_table, fk) edges in the catalog."""
        edges = []
        for table in self.tables():
            for fk in table.foreign_keys:
                edges.append((table.name, fk.ref_table, fk))
        return edges
