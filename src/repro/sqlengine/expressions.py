"""Expression compilation and evaluation.

Expressions are compiled against a :class:`Scope` (the column layout of
the rows flowing through an operator) into Python closures.  Three-valued
logic is used throughout: a predicate evaluates to ``True``, ``False`` or
``None`` (unknown), and WHERE keeps only rows where the predicate is
``True``.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Sequence

from repro.errors import SqlCatalogError, SqlExecutionError, SqlTypeError
from repro.sqlengine.ast_nodes import (
    AGGREGATE_FUNCTIONS,
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
)
from repro.obs.metrics import registry as _metrics_registry
from repro.sqlengine.encoding import EncodedColumn, gather_column
from repro.sqlengine.types import compare_values, values_equal

# counts each batch served by the dictionary-code comparison fast path
# (one dictionary probe instead of per-row string compares)
_METRICS = _metrics_registry()
_DICT_FASTPATH = _METRICS.counter("engine.dict_fastpath_batches")


class Scope:
    """Column layout of rows produced by an operator.

    A scope is an ordered list of ``(binding, column)`` pairs where
    *binding* is the table alias (or ``None`` for computed columns).
    """

    def __init__(self, pairs: Sequence[tuple]) -> None:
        self.pairs = list(pairs)
        self._qualified: dict[tuple, int] = {}
        self._unqualified: dict[str, list[int]] = {}
        for index, (binding, column) in enumerate(self.pairs):
            self._qualified[(binding, column)] = index
            self._unqualified.setdefault(column, []).append(index)

    def __len__(self) -> int:
        return len(self.pairs)

    def concat(self, other: "Scope") -> "Scope":
        return Scope(self.pairs + other.pairs)

    def resolve(self, ref: ColumnRef) -> int:
        """Resolve a column reference to a row index."""
        if ref.table is not None:
            key = (ref.table, ref.column)
            if key in self._qualified:
                return self._qualified[key]
            raise SqlCatalogError(
                f"unknown column {ref.table}.{ref.column} "
                f"(available: {self._describe()})"
            )
        indexes = self._unqualified.get(ref.column, [])
        if not indexes:
            raise SqlCatalogError(
                f"unknown column {ref.column!r} (available: {self._describe()})"
            )
        if len(indexes) > 1:
            raise SqlCatalogError(
                f"ambiguous column {ref.column!r}; qualify it with a table name"
            )
        return indexes[0]

    def try_resolve(self, ref: ColumnRef) -> int | None:
        try:
            return self.resolve(ref)
        except SqlCatalogError:
            return None

    def bindings(self) -> set[str]:
        return {binding for binding, __ in self.pairs if binding is not None}

    def _describe(self) -> str:
        shown = ", ".join(
            f"{binding}.{column}" if binding else column
            for binding, column in self.pairs[:12]
        )
        if len(self.pairs) > 12:
            shown += ", ..."
        return shown


# ---------------------------------------------------------------------------
# scalar functions
# ---------------------------------------------------------------------------


def _fn_lower(value: Any) -> Any:
    return None if value is None else str(value).lower()


def _fn_upper(value: Any) -> Any:
    return None if value is None else str(value).upper()


def _fn_length(value: Any) -> Any:
    return None if value is None else len(str(value))


def _fn_abs(value: Any) -> Any:
    if value is None:
        return None
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise SqlTypeError(f"abs() expects a number, got {value!r}")
    return abs(value)


def _fn_year(value: Any) -> Any:
    if value is None:
        return None
    if hasattr(value, "year"):
        return value.year
    raise SqlTypeError(f"year() expects a DATE, got {value!r}")


def _fn_month(value: Any) -> Any:
    if value is None:
        return None
    if hasattr(value, "month"):
        return value.month
    raise SqlTypeError(f"month() expects a DATE, got {value!r}")


def _fn_coalesce(*values: Any) -> Any:
    for value in values:
        if value is not None:
            return value
    return None


SCALAR_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "lower": _fn_lower,
    "upper": _fn_upper,
    "length": _fn_length,
    "abs": _fn_abs,
    "year": _fn_year,
    "month": _fn_month,
    "coalesce": _fn_coalesce,
}


def like_to_regex(pattern: str) -> "re.Pattern[str]":
    """Translate a SQL LIKE pattern to a compiled regex (case-insensitive)."""
    out = []
    for char in pattern:
        if char == "%":
            out.append(".*")
        elif char == "_":
            out.append(".")
        else:
            out.append(re.escape(char))
    return re.compile("^" + "".join(out) + "$", re.IGNORECASE | re.DOTALL)


# ---------------------------------------------------------------------------
# compilation
# ---------------------------------------------------------------------------

RowFn = Callable[[tuple], Any]


def compile_expr(
    expr: Expr,
    scope: Scope,
    agg_slots: "dict[FuncCall, int] | None" = None,
) -> RowFn:
    """Compile *expr* into a closure evaluating it against a row tuple.

    *agg_slots* maps aggregate FuncCall nodes to row indexes; it is
    supplied by the aggregation operator so that post-aggregation
    expressions (select items, HAVING, ORDER BY) can read aggregate
    results out of the extended group rows.
    """
    if isinstance(expr, Literal):
        value = expr.value
        return lambda row: value

    if isinstance(expr, ColumnRef):
        index = scope.resolve(expr)
        return lambda row: row[index]

    if isinstance(expr, FuncCall):
        if expr.name in AGGREGATE_FUNCTIONS:
            if agg_slots is None or expr not in agg_slots:
                raise SqlExecutionError(
                    f"aggregate {expr.to_sql()} used outside aggregation context"
                )
            slot = agg_slots[expr]
            return lambda row: row[slot]
        if expr.name not in SCALAR_FUNCTIONS:
            raise SqlExecutionError(
                f"unknown function {expr.name!r} in {expr.to_sql()} "
                f"(available: {', '.join(sorted(SCALAR_FUNCTIONS))})"
            )
        fn = SCALAR_FUNCTIONS[expr.name]
        arg_fns = [compile_expr(arg, scope, agg_slots) for arg in expr.args]
        return lambda row: fn(*[arg_fn(row) for arg_fn in arg_fns])

    if isinstance(expr, UnaryOp):
        operand = compile_expr(expr.operand, scope, agg_slots)
        if expr.op == "NOT":
            def _not(row: tuple) -> Any:
                value = operand(row)
                if value is None:
                    return None
                return not value

            return _not
        if expr.op == "-":
            rendered = expr.to_sql()

            def _neg(row: tuple) -> Any:
                value = operand(row)
                if value is None:
                    return None
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    raise SqlTypeError(f"cannot negate {value!r} in {rendered}")
                return -value

            return _neg
        raise SqlExecutionError(
            f"unknown unary operator {expr.op!r} in {expr.to_sql()}"
        )

    if isinstance(expr, BinaryOp):
        return _compile_binary(expr, scope, agg_slots)

    if isinstance(expr, Like):
        operand = compile_expr(expr.operand, scope, agg_slots)
        pattern_fn = compile_expr(expr.pattern, scope, agg_slots)
        negated = expr.negated

        def _like(row: tuple) -> Any:
            value = operand(row)
            pattern = pattern_fn(row)
            if value is None or pattern is None:
                return None
            matched = like_to_regex(str(pattern)).match(str(value)) is not None
            return (not matched) if negated else matched

        return _like

    if isinstance(expr, InList):
        operand = compile_expr(expr.operand, scope, agg_slots)
        item_fns = [compile_expr(item, scope, agg_slots) for item in expr.items]
        negated = expr.negated

        def _in(row: tuple) -> Any:
            value = operand(row)
            if value is None:
                return None
            saw_null = False
            for item_fn in item_fns:
                item = item_fn(row)
                equal = values_equal(value, item)
                if equal is None:
                    saw_null = True
                elif equal:
                    return not negated
            if saw_null:
                return None
            return negated

        return _in

    if isinstance(expr, Between):
        operand = compile_expr(expr.operand, scope, agg_slots)
        low_fn = compile_expr(expr.low, scope, agg_slots)
        high_fn = compile_expr(expr.high, scope, agg_slots)
        negated = expr.negated

        def _between(row: tuple) -> Any:
            value = operand(row)
            low = low_fn(row)
            high = high_fn(row)
            cmp_low = compare_values(value, low)
            cmp_high = compare_values(value, high)
            if cmp_low is None or cmp_high is None:
                return None
            inside = cmp_low >= 0 and cmp_high <= 0
            return (not inside) if negated else inside

        return _between

    if isinstance(expr, IsNull):
        operand = compile_expr(expr.operand, scope, agg_slots)
        negated = expr.negated

        def _is_null(row: tuple) -> bool:
            value = operand(row)
            return (value is not None) if negated else (value is None)

        return _is_null

    if isinstance(expr, CaseWhen):
        branch_fns = [
            (compile_expr(condition, scope, agg_slots),
             compile_expr(value, scope, agg_slots))
            for condition, value in expr.branches
        ]
        default_fn = (
            compile_expr(expr.default, scope, agg_slots)
            if expr.default is not None
            else None
        )

        def _case(row: tuple) -> Any:
            for condition_fn, value_fn in branch_fns:
                if condition_fn(row) is True:
                    return value_fn(row)
            if default_fn is not None:
                return default_fn(row)
            return None

        return _case

    raise SqlExecutionError(f"cannot compile expression: {expr!r}")


def _compile_binary(
    expr: BinaryOp, scope: Scope, agg_slots: "dict[FuncCall, int] | None"
) -> RowFn:
    left = compile_expr(expr.left, scope, agg_slots)
    right = compile_expr(expr.right, scope, agg_slots)
    op = expr.op

    if op == "AND":
        def _and(row: tuple) -> Any:
            lhs = left(row)
            if lhs is False:
                return False
            rhs = right(row)
            if rhs is False:
                return False
            if lhs is None or rhs is None:
                return None
            return True

        return _and

    if op == "OR":
        def _or(row: tuple) -> Any:
            lhs = left(row)
            if lhs is True:
                return True
            rhs = right(row)
            if rhs is True:
                return True
            if lhs is None or rhs is None:
                return None
            return False

        return _or

    if op in ("=", "<>", "<", "<=", ">", ">="):
        def _compare(row: tuple) -> Any:
            result = compare_values(left(row), right(row))
            if result is None:
                return None
            if op == "=":
                return result == 0
            if op == "<>":
                return result != 0
            if op == "<":
                return result < 0
            if op == "<=":
                return result <= 0
            if op == ">":
                return result > 0
            return result >= 0

        return _compare

    if op in ("+", "-", "*", "/"):
        rendered = expr.to_sql()

        def _arith(row: tuple) -> Any:
            lhs = left(row)
            rhs = right(row)
            if lhs is None or rhs is None:
                return None
            if not isinstance(lhs, (int, float)) or isinstance(lhs, bool):
                raise SqlTypeError(
                    f"arithmetic on non-number {lhs!r} in {rendered}"
                )
            if not isinstance(rhs, (int, float)) or isinstance(rhs, bool):
                raise SqlTypeError(
                    f"arithmetic on non-number {rhs!r} in {rendered}"
                )
            if op == "+":
                return lhs + rhs
            if op == "-":
                return lhs - rhs
            if op == "*":
                return lhs * rhs
            if rhs == 0:
                raise SqlExecutionError(f"division by zero in {rendered}")
            return lhs / rhs

        return _arith

    if op == "||":
        def _concat(row: tuple) -> Any:
            lhs = left(row)
            rhs = right(row)
            if lhs is None or rhs is None:
                return None
            return str(lhs) + str(rhs)

        return _concat

    raise SqlExecutionError(
        f"unknown binary operator {op!r} in {expr.to_sql()}"
    )


# ---------------------------------------------------------------------------
# vectorized (batch) compilation
# ---------------------------------------------------------------------------

#: a batch expression: ``fn(cols, n) -> list`` where *cols* is a sequence
#: of aligned per-column value lists (each of length *n*) laid out by the
#: operator's :class:`Scope`, and the result is one value list of length
#: *n*.  Returned lists may alias input columns — callers must not mutate
#: them.
BatchFn = Callable[[Sequence[list], int], list]


def gather_columns(cols: Sequence[list], indices: Sequence[int]) -> list:
    """Compact every column of a batch down to the selected row indices.

    Dictionary-encoded columns stay encoded (their codes are gathered,
    not their decoded values), so compaction never forces early
    materialization.
    """
    return [gather_column(column, indices) for column in cols]


def compile_expr_batch(
    expr: Expr,
    scope: Scope,
    agg_slots: "dict[FuncCall, int] | None" = None,
) -> BatchFn:
    """Compile *expr* into a function evaluating it over a column batch.

    The companion of :func:`compile_expr` for the vectorized engine: the
    same three-valued logic, ``compare_values`` ordering and error
    semantics, but one call evaluates a whole batch.  Sub-expressions
    that row mode would skip via short-circuiting (the right side of
    AND/OR, CASE branch values, IN list items) are evaluated only over
    the rows that actually reach them, by compacting the batch through a
    selection vector first — so data-dependent errors (division by zero,
    type errors) surface exactly when they would row-at-a-time.
    """
    if isinstance(expr, Literal):
        value = expr.value
        return lambda cols, n: [value] * n

    if isinstance(expr, ColumnRef):
        index = scope.resolve(expr)
        return lambda cols, n: cols[index]

    if isinstance(expr, FuncCall):
        if expr.name in AGGREGATE_FUNCTIONS:
            if agg_slots is None or expr not in agg_slots:
                raise SqlExecutionError(
                    f"aggregate {expr.to_sql()} used outside aggregation context"
                )
            slot = agg_slots[expr]
            return lambda cols, n: cols[slot]
        if expr.name not in SCALAR_FUNCTIONS:
            raise SqlExecutionError(
                f"unknown function {expr.name!r} in {expr.to_sql()} "
                f"(available: {', '.join(sorted(SCALAR_FUNCTIONS))})"
            )
        fn = SCALAR_FUNCTIONS[expr.name]
        arg_fns = [
            compile_expr_batch(arg, scope, agg_slots) for arg in expr.args
        ]
        if len(arg_fns) == 1:
            arg_fn = arg_fns[0]
            return lambda cols, n: [fn(value) for value in arg_fn(cols, n)]

        def _call(cols: Sequence[list], n: int) -> list:
            arg_cols = [arg_fn(cols, n) for arg_fn in arg_fns]
            if not arg_cols:
                return [fn() for __ in range(n)]
            return [fn(*args) for args in zip(*arg_cols)]

        return _call

    if isinstance(expr, UnaryOp):
        operand = compile_expr_batch(expr.operand, scope, agg_slots)
        if expr.op == "NOT":
            return lambda cols, n: [
                None if value is None else not value
                for value in operand(cols, n)
            ]
        if expr.op == "-":
            rendered = expr.to_sql()

            def _neg_value(value: Any) -> Any:
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    raise SqlTypeError(f"cannot negate {value!r} in {rendered}")
                return -value

            return lambda cols, n: [
                None if value is None else _neg_value(value)
                for value in operand(cols, n)
            ]
        raise SqlExecutionError(
            f"unknown unary operator {expr.op!r} in {expr.to_sql()}"
        )

    if isinstance(expr, BinaryOp):
        return _compile_binary_batch(expr, scope, agg_slots)

    if isinstance(expr, Like):
        operand = compile_expr_batch(expr.operand, scope, agg_slots)
        negated = expr.negated
        if isinstance(expr.pattern, Literal):
            if expr.pattern.value is None:
                def _null_pattern(cols: Sequence[list], n: int) -> list:
                    operand(cols, n)  # operand errors must still surface
                    return [None] * n

                return _null_pattern
            match = like_to_regex(str(expr.pattern.value)).match
            # encoded operands evaluate the regex once per *dictionary
            # entry* instead of once per row; the match table is memoized
            # against the dictionary version
            memo: list = [None, None, None]  # dictionary, version, table

            def _match_table(dictionary) -> list:
                if (
                    memo[0] is dictionary
                    and memo[1] == dictionary.version
                ):
                    return memo[2]
                table = [
                    None if value is None else match(value) is not None
                    for value in dictionary.values
                ]
                memo[0], memo[1], memo[2] = dictionary, dictionary.version, table
                return table

            def _like_literal(cols: Sequence[list], n: int) -> list:
                values = operand(cols, n)
                if isinstance(values, EncodedColumn):
                    matched = _match_table(values.dictionary)
                    if negated:
                        return [
                            None if code is None else not matched[code]
                            for code in values.codes
                        ]
                    return [
                        None if code is None else matched[code]
                        for code in values.codes
                    ]
                if negated:
                    return [
                        None if value is None else match(str(value)) is None
                        for value in values
                    ]
                return [
                    None if value is None else match(str(value)) is not None
                    for value in values
                ]

            return _like_literal
        pattern_fn = compile_expr_batch(expr.pattern, scope, agg_slots)

        def _like(cols: Sequence[list], n: int) -> list:
            values = operand(cols, n)
            patterns = pattern_fn(cols, n)
            out: list = []
            for value, pattern in zip(values, patterns):
                if value is None or pattern is None:
                    out.append(None)
                    continue
                matched = (
                    like_to_regex(str(pattern)).match(str(value)) is not None
                )
                out.append((not matched) if negated else matched)
            return out

        return _like

    if isinstance(expr, InList):
        return _compile_in_list_batch(expr, scope, agg_slots)

    if isinstance(expr, Between):
        operand = compile_expr_batch(expr.operand, scope, agg_slots)
        low_fn = compile_expr_batch(expr.low, scope, agg_slots)
        high_fn = compile_expr_batch(expr.high, scope, agg_slots)
        negated = expr.negated

        def _between(cols: Sequence[list], n: int) -> list:
            values = operand(cols, n)
            lows = low_fn(cols, n)
            highs = high_fn(cols, n)
            out: list = []
            for value, low, high in zip(values, lows, highs):
                cmp_low = compare_values(value, low)
                cmp_high = compare_values(value, high)
                if cmp_low is None or cmp_high is None:
                    out.append(None)
                    continue
                inside = cmp_low >= 0 and cmp_high <= 0
                out.append((not inside) if negated else inside)
            return out

        return _between

    if isinstance(expr, IsNull):
        operand = compile_expr_batch(expr.operand, scope, agg_slots)
        if expr.negated:
            return lambda cols, n: [
                value is not None for value in operand(cols, n)
            ]
        return lambda cols, n: [value is None for value in operand(cols, n)]

    if isinstance(expr, CaseWhen):
        branch_fns = [
            (compile_expr_batch(condition, scope, agg_slots),
             compile_expr_batch(value, scope, agg_slots))
            for condition, value in expr.branches
        ]
        default_fn = (
            compile_expr_batch(expr.default, scope, agg_slots)
            if expr.default is not None
            else None
        )

        def _case(cols: Sequence[list], n: int) -> list:
            out: list = [None] * n
            live = list(range(n))  # absolute row indices still undecided
            sub_cols: Sequence[list] = cols
            for condition_fn, value_fn in branch_fns:
                if not live:
                    return out
                conditions = condition_fn(sub_cols, len(live))
                taken = [j for j, c in enumerate(conditions) if c is True]
                if not taken:
                    continue
                if len(taken) == len(live):
                    values = value_fn(sub_cols, len(live))
                    for j, i in enumerate(live):
                        out[i] = values[j]
                    return out
                values = value_fn(gather_columns(sub_cols, taken), len(taken))
                for j, position in enumerate(taken):
                    out[live[position]] = values[j]
                kept = [j for j, c in enumerate(conditions) if c is not True]
                live = [live[j] for j in kept]
                sub_cols = gather_columns(sub_cols, kept)
            if default_fn is not None and live:
                values = default_fn(sub_cols, len(live))
                for j, i in enumerate(live):
                    out[i] = values[j]
            return out

        return _case

    raise SqlExecutionError(f"cannot compile expression: {expr!r}")


#: post-``compare_values`` checks, shared by the generic comparison path
_COMPARE_CHECKS: dict[str, Callable[[int], bool]] = {
    "=": lambda r: r == 0,
    "<>": lambda r: r != 0,
    "<": lambda r: r < 0,
    "<=": lambda r: r <= 0,
    ">": lambda r: r > 0,
    ">=": lambda r: r >= 0,
}


def _compile_binary_batch(
    expr: BinaryOp, scope: Scope, agg_slots: "dict[FuncCall, int] | None"
) -> BatchFn:
    op = expr.op

    if op == "AND":
        left = compile_expr_batch(expr.left, scope, agg_slots)
        right = compile_expr_batch(expr.right, scope, agg_slots)

        def _and(cols: Sequence[list], n: int) -> list:
            lhs = left(cols, n)
            live = [i for i, value in enumerate(lhs) if value is not False]
            if not live:
                return lhs  # everything False already
            if len(live) == n:
                rhs = right(cols, n)
                return [
                    False if b is False
                    else (None if a is None or b is None else True)
                    for a, b in zip(lhs, rhs)
                ]
            # evaluate the right side only where row mode would
            rhs = right(gather_columns(cols, live), len(live))
            out: list = [False] * n
            for j, i in enumerate(live):
                b = rhs[j]
                if b is False:
                    continue
                out[i] = None if lhs[i] is None or b is None else True
            return out

        return _and

    if op == "OR":
        left = compile_expr_batch(expr.left, scope, agg_slots)
        right = compile_expr_batch(expr.right, scope, agg_slots)

        def _or(cols: Sequence[list], n: int) -> list:
            lhs = left(cols, n)
            live = [i for i, value in enumerate(lhs) if value is not True]
            if not live:
                return lhs  # everything True already
            if len(live) == n:
                rhs = right(cols, n)
                return [
                    True if b is True
                    else (None if a is None or b is None else False)
                    for a, b in zip(lhs, rhs)
                ]
            rhs = right(gather_columns(cols, live), len(live))
            out: list = [True] * n
            for j, i in enumerate(live):
                b = rhs[j]
                if b is True:
                    out[i] = True
                    continue
                out[i] = None if lhs[i] is None or b is None else False
            return out

        return _or

    if op in _COMPARE_CHECKS:
        fast = _compile_compare_fast_path(expr, scope)
        if fast is not None:
            return fast
        left = compile_expr_batch(expr.left, scope, agg_slots)
        right = compile_expr_batch(expr.right, scope, agg_slots)
        check = _COMPARE_CHECKS[op]

        def _compare(cols: Sequence[list], n: int) -> list:
            return [
                None if (result := compare_values(a, b)) is None
                else check(result)
                for a, b in zip(left(cols, n), right(cols, n))
            ]

        return _compare

    if op in ("+", "-", "*", "/"):
        left = compile_expr_batch(expr.left, scope, agg_slots)
        right = compile_expr_batch(expr.right, scope, agg_slots)
        rendered = expr.to_sql()

        def _num(value: Any) -> Any:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise SqlTypeError(
                    f"arithmetic on non-number {value!r} in {rendered}"
                )
            return value

        if op == "+":
            return lambda cols, n: [
                None if a is None or b is None else _num(a) + _num(b)
                for a, b in zip(left(cols, n), right(cols, n))
            ]
        if op == "-":
            return lambda cols, n: [
                None if a is None or b is None else _num(a) - _num(b)
                for a, b in zip(left(cols, n), right(cols, n))
            ]
        if op == "*":
            return lambda cols, n: [
                None if a is None or b is None else _num(a) * _num(b)
                for a, b in zip(left(cols, n), right(cols, n))
            ]

        def _div(a: Any, b: Any) -> Any:
            a, b = _num(a), _num(b)
            if b == 0:
                raise SqlExecutionError(f"division by zero in {rendered}")
            return a / b

        return lambda cols, n: [
            None if a is None or b is None else _div(a, b)
            for a, b in zip(left(cols, n), right(cols, n))
        ]

    if op == "||":
        left = compile_expr_batch(expr.left, scope, agg_slots)
        right = compile_expr_batch(expr.right, scope, agg_slots)
        return lambda cols, n: [
            None if a is None or b is None else str(a) + str(b)
            for a, b in zip(left(cols, n), right(cols, n))
        ]

    raise SqlExecutionError(
        f"unknown binary operator {op!r} in {expr.to_sql()}"
    )


def _compile_compare_fast_path(
    expr: BinaryOp, scope: Scope
) -> "BatchFn | None":
    """Specialized ``column <op> literal`` comparisons.

    The hottest predicate shape gets a single list comprehension with no
    per-row function calls.  Equality is phrased through ``<``/``>`` so
    the result matches :func:`compare_values` for every input it accepts
    (including NaN); values the fast type test rejects fall back to
    ``compare_values``, which raises the identical type errors.
    """
    column_side, literal_side, op = expr.left, expr.right, expr.op
    if isinstance(column_side, Literal) and isinstance(literal_side, ColumnRef):
        column_side, literal_side = literal_side, column_side
        flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
        op = flip.get(op, op)
    if not (
        isinstance(column_side, ColumnRef) and isinstance(literal_side, Literal)
    ):
        return None
    lit = literal_side.value
    if lit is None:
        return lambda cols, n: [None] * n
    if isinstance(lit, bool) or not isinstance(lit, (int, float, str)):
        return None
    index = scope.resolve(column_side)
    check = _COMPARE_CHECKS[op]
    # exact-type membership is call-free per row; anything else (bool,
    # date, cross-type) drops to compare_values for identical semantics
    text_literal = isinstance(lit, str)
    ok = frozenset((str,)) if text_literal else frozenset((int, float))

    if op == "=":
        def _eq(cols: Sequence[list], n: int) -> list:
            column = cols[index]
            if text_literal and isinstance(column, EncodedColumn):
                # encoded column: one dictionary probe resolves the
                # literal to a code, the rows compare small integers
                # (str = str equality matches compare_values exactly)
                if _METRICS.enabled:
                    _DICT_FASTPATH.inc()
                code = column.dictionary.code_of.get(lit)
                if code is None:
                    return [
                        None if c is None else False for c in column.codes
                    ]
                return [
                    None if c is None else c == code for c in column.codes
                ]
            return [
                None if v is None
                else (not (v < lit or v > lit) if type(v) in ok
                      else check(compare_values(v, lit)))
                for v in column
            ]

        return _eq
    if op == "<>":
        def _ne(cols: Sequence[list], n: int) -> list:
            column = cols[index]
            if text_literal and isinstance(column, EncodedColumn):
                if _METRICS.enabled:
                    _DICT_FASTPATH.inc()
                code = column.dictionary.code_of.get(lit)
                if code is None:
                    return [
                        None if c is None else True for c in column.codes
                    ]
                return [
                    None if c is None else c != code for c in column.codes
                ]
            return [
                None if v is None
                else ((v < lit or v > lit) if type(v) in ok
                      else check(compare_values(v, lit)))
                for v in column
            ]

        return _ne
    if op == "<":
        def _lt(cols: Sequence[list], n: int) -> list:
            return [
                None if v is None
                else (v < lit if type(v) in ok
                      else check(compare_values(v, lit)))
                for v in cols[index]
            ]

        return _lt
    if op == "<=":
        def _le(cols: Sequence[list], n: int) -> list:
            return [
                None if v is None
                else (not (v > lit) if type(v) in ok
                      else check(compare_values(v, lit)))
                for v in cols[index]
            ]

        return _le
    if op == ">":
        def _gt(cols: Sequence[list], n: int) -> list:
            return [
                None if v is None
                else (v > lit if type(v) in ok
                      else check(compare_values(v, lit)))
                for v in cols[index]
            ]

        return _gt

    def _ge(cols: Sequence[list], n: int) -> list:
        return [
            None if v is None
            else (not (v < lit) if type(v) in ok
                  else check(compare_values(v, lit)))
            for v in cols[index]
        ]

    return _ge


def _compile_in_list_batch(
    expr: InList, scope: Scope, agg_slots: "dict[FuncCall, int] | None"
) -> BatchFn:
    operand = compile_expr_batch(expr.operand, scope, agg_slots)
    negated = expr.negated

    # fast path: a homogeneous list of non-NULL literals becomes one set
    # membership test per row (falling back where the type test fails so
    # mixed-type errors still surface via values_equal)
    literals = [
        item.value for item in expr.items if isinstance(item, Literal)
    ]
    if len(literals) == len(expr.items) and literals:
        numeric = all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in literals
        )
        textual = all(type(v) is str for v in literals)
        if numeric or textual:
            member_set = set(literals)

            def _in_set(cols: Sequence[list], n: int) -> list:
                values = operand(cols, n)
                if textual and isinstance(values, EncodedColumn):
                    # encoded column: resolve the member strings to codes
                    # once, then the rows do integer set probes
                    code_of = values.dictionary.code_of
                    member_codes = {
                        code_of[v] for v in member_set if v in code_of
                    }
                    if negated:
                        return [
                            None if c is None else c not in member_codes
                            for c in values.codes
                        ]
                    return [
                        None if c is None else c in member_codes
                        for c in values.codes
                    ]
                out: list = []
                for value in values:
                    if value is None:
                        out.append(None)
                        continue
                    if numeric:
                        # NaN must take the values_equal walk below:
                        # compare_values treats NaN as equal to any
                        # number, set membership would never match it
                        ok = type(value) is int or (
                            type(value) is float and value == value
                        )
                    else:
                        ok = type(value) is str
                    if ok:
                        out.append(
                            (value not in member_set)
                            if negated
                            else (value in member_set)
                        )
                        continue
                    # mixed types: mirror the row-mode item walk so the
                    # same SqlTypeError surfaces from values_equal
                    hit = False
                    for item in literals:
                        if values_equal(value, item):
                            out.append(not negated)
                            hit = True
                            break
                    if not hit:
                        out.append(negated)
                return out

            return _in_set

    item_fns = [
        compile_expr_batch(item, scope, agg_slots) for item in expr.items
    ]

    def _in(cols: Sequence[list], n: int) -> list:
        values = operand(cols, n)
        out: list = [None] * n  # NULL operands stay NULL
        live = [i for i, value in enumerate(values) if value is not None]
        if not live:
            return out
        # each item expression is evaluated only over the rows that
        # actually reach it (no earlier item matched), mirroring row
        # mode's per-row early exit and its error behavior
        if len(live) == n:
            sub_cols: Sequence[list] = cols
        else:
            sub_cols = gather_columns(cols, live)
        live_values = [values[i] for i in live]
        null_flags = [False] * len(live)
        for item_fn in item_fns:
            if not live:
                break
            item_col = item_fn(sub_cols, len(live))
            kept: list = []
            for position, value in enumerate(live_values):
                equal = values_equal(value, item_col[position])
                if equal is None:
                    null_flags[position] = True
                elif equal:
                    out[live[position]] = not negated
                    continue
                kept.append(position)
            if len(kept) != len(live):
                live = [live[p] for p in kept]
                live_values = [live_values[p] for p in kept]
                null_flags = [null_flags[p] for p in kept]
                sub_cols = gather_columns(sub_cols, kept)
        for position, i in enumerate(live):
            out[i] = None if null_flags[position] else negated
        return out

    return _in


def split_conjuncts(expr: Expr | None) -> list[Expr]:
    """Split an expression on top-level ANDs.

    >>> from repro.sqlengine.parser import parse_select
    >>> stmt = parse_select("SELECT * FROM t WHERE a = 1 AND b = 2")
    >>> len(split_conjuncts(stmt.where))
    2
    """
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]
