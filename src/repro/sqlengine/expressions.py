"""Expression compilation and evaluation.

Expressions are compiled against a :class:`Scope` (the column layout of
the rows flowing through an operator) into Python closures.  Three-valued
logic is used throughout: a predicate evaluates to ``True``, ``False`` or
``None`` (unknown), and WHERE keeps only rows where the predicate is
``True``.

:func:`fuse_batch_exprs` is the third compilation tier: it translates a
plan's filter/projection expression trees into *generated Python source*
— one function per batch, no per-row closure dispatch — for the subset
of expressions it can prove never raise.  Anything it cannot prove falls
back to the closure chain, so fused execution is byte-identical to the
other tiers (results and errors).
"""

from __future__ import annotations

import datetime
import re
from typing import Any, Callable, Sequence

from repro.errors import SqlCatalogError, SqlExecutionError, SqlTypeError
from repro.sqlengine.ast_nodes import (
    AGGREGATE_FUNCTIONS,
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
)
from repro.obs.metrics import registry as _metrics_registry
from repro.sqlengine.encoding import EncodedColumn, gather_column
from repro.sqlengine.types import compare_values, parse_date, values_equal

# counts each batch served by the dictionary-code comparison fast path
# (one dictionary probe instead of per-row string compares)
_METRICS = _metrics_registry()
_DICT_FASTPATH = _METRICS.counter("engine.dict_fastpath_batches")


class Scope:
    """Column layout of rows produced by an operator.

    A scope is an ordered list of ``(binding, column)`` pairs where
    *binding* is the table alias (or ``None`` for computed columns).
    """

    def __init__(self, pairs: Sequence[tuple]) -> None:
        self.pairs = list(pairs)
        self._qualified: dict[tuple, int] = {}
        self._unqualified: dict[str, list[int]] = {}
        for index, (binding, column) in enumerate(self.pairs):
            self._qualified[(binding, column)] = index
            self._unqualified.setdefault(column, []).append(index)

    def __len__(self) -> int:
        return len(self.pairs)

    def concat(self, other: "Scope") -> "Scope":
        return Scope(self.pairs + other.pairs)

    def resolve(self, ref: ColumnRef) -> int:
        """Resolve a column reference to a row index."""
        if ref.table is not None:
            key = (ref.table, ref.column)
            if key in self._qualified:
                return self._qualified[key]
            raise SqlCatalogError(
                f"unknown column {ref.table}.{ref.column} "
                f"(available: {self._describe()})"
            )
        indexes = self._unqualified.get(ref.column, [])
        if not indexes:
            raise SqlCatalogError(
                f"unknown column {ref.column!r} (available: {self._describe()})"
            )
        if len(indexes) > 1:
            raise SqlCatalogError(
                f"ambiguous column {ref.column!r}; qualify it with a table name"
            )
        return indexes[0]

    def try_resolve(self, ref: ColumnRef) -> int | None:
        try:
            return self.resolve(ref)
        except SqlCatalogError:
            return None

    def bindings(self) -> set[str]:
        return {binding for binding, __ in self.pairs if binding is not None}

    def _describe(self) -> str:
        shown = ", ".join(
            f"{binding}.{column}" if binding else column
            for binding, column in self.pairs[:12]
        )
        if len(self.pairs) > 12:
            shown += ", ..."
        return shown


# ---------------------------------------------------------------------------
# scalar functions
# ---------------------------------------------------------------------------


def _fn_lower(value: Any) -> Any:
    return None if value is None else str(value).lower()


def _fn_upper(value: Any) -> Any:
    return None if value is None else str(value).upper()


def _fn_length(value: Any) -> Any:
    return None if value is None else len(str(value))


def _fn_abs(value: Any) -> Any:
    if value is None:
        return None
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise SqlTypeError(f"abs() expects a number, got {value!r}")
    return abs(value)


def _fn_year(value: Any) -> Any:
    if value is None:
        return None
    if hasattr(value, "year"):
        return value.year
    raise SqlTypeError(f"year() expects a DATE, got {value!r}")


def _fn_month(value: Any) -> Any:
    if value is None:
        return None
    if hasattr(value, "month"):
        return value.month
    raise SqlTypeError(f"month() expects a DATE, got {value!r}")


def _fn_coalesce(*values: Any) -> Any:
    for value in values:
        if value is not None:
            return value
    return None


SCALAR_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "lower": _fn_lower,
    "upper": _fn_upper,
    "length": _fn_length,
    "abs": _fn_abs,
    "year": _fn_year,
    "month": _fn_month,
    "coalesce": _fn_coalesce,
}


def like_to_regex(pattern: str) -> "re.Pattern[str]":
    """Translate a SQL LIKE pattern to a compiled regex (case-insensitive)."""
    out = []
    for char in pattern:
        if char == "%":
            out.append(".*")
        elif char == "_":
            out.append(".")
        else:
            out.append(re.escape(char))
    return re.compile("^" + "".join(out) + "$", re.IGNORECASE | re.DOTALL)


# ---------------------------------------------------------------------------
# compilation
# ---------------------------------------------------------------------------

RowFn = Callable[[tuple], Any]


def compile_expr(
    expr: Expr,
    scope: Scope,
    agg_slots: "dict[FuncCall, int] | None" = None,
) -> RowFn:
    """Compile *expr* into a closure evaluating it against a row tuple.

    *agg_slots* maps aggregate FuncCall nodes to row indexes; it is
    supplied by the aggregation operator so that post-aggregation
    expressions (select items, HAVING, ORDER BY) can read aggregate
    results out of the extended group rows.
    """
    if isinstance(expr, Literal):
        value = expr.value
        return lambda row: value

    if isinstance(expr, ColumnRef):
        index = scope.resolve(expr)
        return lambda row: row[index]

    if isinstance(expr, FuncCall):
        if expr.name in AGGREGATE_FUNCTIONS:
            if agg_slots is None or expr not in agg_slots:
                raise SqlExecutionError(
                    f"aggregate {expr.to_sql()} used outside aggregation context"
                )
            slot = agg_slots[expr]
            return lambda row: row[slot]
        if expr.name not in SCALAR_FUNCTIONS:
            raise SqlExecutionError(
                f"unknown function {expr.name!r} in {expr.to_sql()} "
                f"(available: {', '.join(sorted(SCALAR_FUNCTIONS))})"
            )
        fn = SCALAR_FUNCTIONS[expr.name]
        arg_fns = [compile_expr(arg, scope, agg_slots) for arg in expr.args]
        return lambda row: fn(*[arg_fn(row) for arg_fn in arg_fns])

    if isinstance(expr, UnaryOp):
        operand = compile_expr(expr.operand, scope, agg_slots)
        if expr.op == "NOT":
            def _not(row: tuple) -> Any:
                value = operand(row)
                if value is None:
                    return None
                return not value

            return _not
        if expr.op == "-":
            rendered = expr.to_sql()

            def _neg(row: tuple) -> Any:
                value = operand(row)
                if value is None:
                    return None
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    raise SqlTypeError(f"cannot negate {value!r} in {rendered}")
                return -value

            return _neg
        raise SqlExecutionError(
            f"unknown unary operator {expr.op!r} in {expr.to_sql()}"
        )

    if isinstance(expr, BinaryOp):
        return _compile_binary(expr, scope, agg_slots)

    if isinstance(expr, Like):
        operand = compile_expr(expr.operand, scope, agg_slots)
        pattern_fn = compile_expr(expr.pattern, scope, agg_slots)
        negated = expr.negated

        def _like(row: tuple) -> Any:
            value = operand(row)
            pattern = pattern_fn(row)
            if value is None or pattern is None:
                return None
            matched = like_to_regex(str(pattern)).match(str(value)) is not None
            return (not matched) if negated else matched

        return _like

    if isinstance(expr, InList):
        operand = compile_expr(expr.operand, scope, agg_slots)
        item_fns = [compile_expr(item, scope, agg_slots) for item in expr.items]
        negated = expr.negated

        def _in(row: tuple) -> Any:
            value = operand(row)
            if value is None:
                return None
            saw_null = False
            for item_fn in item_fns:
                item = item_fn(row)
                equal = values_equal(value, item)
                if equal is None:
                    saw_null = True
                elif equal:
                    return not negated
            if saw_null:
                return None
            return negated

        return _in

    if isinstance(expr, Between):
        operand = compile_expr(expr.operand, scope, agg_slots)
        low_fn = compile_expr(expr.low, scope, agg_slots)
        high_fn = compile_expr(expr.high, scope, agg_slots)
        negated = expr.negated

        def _between(row: tuple) -> Any:
            value = operand(row)
            low = low_fn(row)
            high = high_fn(row)
            cmp_low = compare_values(value, low)
            cmp_high = compare_values(value, high)
            if cmp_low is None or cmp_high is None:
                return None
            inside = cmp_low >= 0 and cmp_high <= 0
            return (not inside) if negated else inside

        return _between

    if isinstance(expr, IsNull):
        operand = compile_expr(expr.operand, scope, agg_slots)
        negated = expr.negated

        def _is_null(row: tuple) -> bool:
            value = operand(row)
            return (value is not None) if negated else (value is None)

        return _is_null

    if isinstance(expr, CaseWhen):
        branch_fns = [
            (compile_expr(condition, scope, agg_slots),
             compile_expr(value, scope, agg_slots))
            for condition, value in expr.branches
        ]
        default_fn = (
            compile_expr(expr.default, scope, agg_slots)
            if expr.default is not None
            else None
        )

        def _case(row: tuple) -> Any:
            for condition_fn, value_fn in branch_fns:
                if condition_fn(row) is True:
                    return value_fn(row)
            if default_fn is not None:
                return default_fn(row)
            return None

        return _case

    raise SqlExecutionError(f"cannot compile expression: {expr!r}")


def _compile_binary(
    expr: BinaryOp, scope: Scope, agg_slots: "dict[FuncCall, int] | None"
) -> RowFn:
    left = compile_expr(expr.left, scope, agg_slots)
    right = compile_expr(expr.right, scope, agg_slots)
    op = expr.op

    if op == "AND":
        def _and(row: tuple) -> Any:
            lhs = left(row)
            if lhs is False:
                return False
            rhs = right(row)
            if rhs is False:
                return False
            if lhs is None or rhs is None:
                return None
            return True

        return _and

    if op == "OR":
        def _or(row: tuple) -> Any:
            lhs = left(row)
            if lhs is True:
                return True
            rhs = right(row)
            if rhs is True:
                return True
            if lhs is None or rhs is None:
                return None
            return False

        return _or

    if op in ("=", "<>", "<", "<=", ">", ">="):
        def _compare(row: tuple) -> Any:
            result = compare_values(left(row), right(row))
            if result is None:
                return None
            if op == "=":
                return result == 0
            if op == "<>":
                return result != 0
            if op == "<":
                return result < 0
            if op == "<=":
                return result <= 0
            if op == ">":
                return result > 0
            return result >= 0

        return _compare

    if op in ("+", "-", "*", "/"):
        rendered = expr.to_sql()

        def _arith(row: tuple) -> Any:
            lhs = left(row)
            rhs = right(row)
            if lhs is None or rhs is None:
                return None
            if not isinstance(lhs, (int, float)) or isinstance(lhs, bool):
                raise SqlTypeError(
                    f"arithmetic on non-number {lhs!r} in {rendered}"
                )
            if not isinstance(rhs, (int, float)) or isinstance(rhs, bool):
                raise SqlTypeError(
                    f"arithmetic on non-number {rhs!r} in {rendered}"
                )
            if op == "+":
                return lhs + rhs
            if op == "-":
                return lhs - rhs
            if op == "*":
                return lhs * rhs
            if rhs == 0:
                raise SqlExecutionError(f"division by zero in {rendered}")
            return lhs / rhs

        return _arith

    if op == "||":
        def _concat(row: tuple) -> Any:
            lhs = left(row)
            rhs = right(row)
            if lhs is None or rhs is None:
                return None
            return str(lhs) + str(rhs)

        return _concat

    raise SqlExecutionError(
        f"unknown binary operator {op!r} in {expr.to_sql()}"
    )


# ---------------------------------------------------------------------------
# vectorized (batch) compilation
# ---------------------------------------------------------------------------

#: a batch expression: ``fn(cols, n) -> list`` where *cols* is a sequence
#: of aligned per-column value lists (each of length *n*) laid out by the
#: operator's :class:`Scope`, and the result is one value list of length
#: *n*.  Returned lists may alias input columns — callers must not mutate
#: them.
BatchFn = Callable[[Sequence[list], int], list]


def gather_columns(cols: Sequence[list], indices: Sequence[int]) -> list:
    """Compact every column of a batch down to the selected row indices.

    Dictionary-encoded columns stay encoded (their codes are gathered,
    not their decoded values), so compaction never forces early
    materialization.
    """
    return [gather_column(column, indices) for column in cols]


def compile_expr_batch(
    expr: Expr,
    scope: Scope,
    agg_slots: "dict[FuncCall, int] | None" = None,
) -> BatchFn:
    """Compile *expr* into a function evaluating it over a column batch.

    The companion of :func:`compile_expr` for the vectorized engine: the
    same three-valued logic, ``compare_values`` ordering and error
    semantics, but one call evaluates a whole batch.  Sub-expressions
    that row mode would skip via short-circuiting (the right side of
    AND/OR, CASE branch values, IN list items) are evaluated only over
    the rows that actually reach them, by compacting the batch through a
    selection vector first — so data-dependent errors (division by zero,
    type errors) surface exactly when they would row-at-a-time.
    """
    if isinstance(expr, Literal):
        value = expr.value
        return lambda cols, n: [value] * n

    if isinstance(expr, ColumnRef):
        index = scope.resolve(expr)
        return lambda cols, n: cols[index]

    if isinstance(expr, FuncCall):
        if expr.name in AGGREGATE_FUNCTIONS:
            if agg_slots is None or expr not in agg_slots:
                raise SqlExecutionError(
                    f"aggregate {expr.to_sql()} used outside aggregation context"
                )
            slot = agg_slots[expr]
            return lambda cols, n: cols[slot]
        if expr.name not in SCALAR_FUNCTIONS:
            raise SqlExecutionError(
                f"unknown function {expr.name!r} in {expr.to_sql()} "
                f"(available: {', '.join(sorted(SCALAR_FUNCTIONS))})"
            )
        fn = SCALAR_FUNCTIONS[expr.name]
        arg_fns = [
            compile_expr_batch(arg, scope, agg_slots) for arg in expr.args
        ]
        if len(arg_fns) == 1:
            arg_fn = arg_fns[0]
            return lambda cols, n: [fn(value) for value in arg_fn(cols, n)]

        def _call(cols: Sequence[list], n: int) -> list:
            arg_cols = [arg_fn(cols, n) for arg_fn in arg_fns]
            if not arg_cols:
                return [fn() for __ in range(n)]
            return [fn(*args) for args in zip(*arg_cols)]

        return _call

    if isinstance(expr, UnaryOp):
        operand = compile_expr_batch(expr.operand, scope, agg_slots)
        if expr.op == "NOT":
            return lambda cols, n: [
                None if value is None else not value
                for value in operand(cols, n)
            ]
        if expr.op == "-":
            rendered = expr.to_sql()

            def _neg_value(value: Any) -> Any:
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    raise SqlTypeError(f"cannot negate {value!r} in {rendered}")
                return -value

            return lambda cols, n: [
                None if value is None else _neg_value(value)
                for value in operand(cols, n)
            ]
        raise SqlExecutionError(
            f"unknown unary operator {expr.op!r} in {expr.to_sql()}"
        )

    if isinstance(expr, BinaryOp):
        return _compile_binary_batch(expr, scope, agg_slots)

    if isinstance(expr, Like):
        operand = compile_expr_batch(expr.operand, scope, agg_slots)
        negated = expr.negated
        if isinstance(expr.pattern, Literal):
            if expr.pattern.value is None:
                def _null_pattern(cols: Sequence[list], n: int) -> list:
                    operand(cols, n)  # operand errors must still surface
                    return [None] * n

                return _null_pattern
            match = like_to_regex(str(expr.pattern.value)).match
            # encoded operands evaluate the regex once per *dictionary
            # entry* instead of once per row; the match table is memoized
            # against the dictionary version
            memo: list = [None, None, None]  # dictionary, version, table

            def _match_table(dictionary) -> list:
                if (
                    memo[0] is dictionary
                    and memo[1] == dictionary.version
                ):
                    return memo[2]
                table = [
                    None if value is None else match(value) is not None
                    for value in dictionary.values
                ]
                memo[0], memo[1], memo[2] = dictionary, dictionary.version, table
                return table

            def _like_literal(cols: Sequence[list], n: int) -> list:
                values = operand(cols, n)
                if isinstance(values, EncodedColumn):
                    matched = _match_table(values.dictionary)
                    if negated:
                        return [
                            None if code is None else not matched[code]
                            for code in values.codes
                        ]
                    return [
                        None if code is None else matched[code]
                        for code in values.codes
                    ]
                if negated:
                    return [
                        None if value is None else match(str(value)) is None
                        for value in values
                    ]
                return [
                    None if value is None else match(str(value)) is not None
                    for value in values
                ]

            return _like_literal
        pattern_fn = compile_expr_batch(expr.pattern, scope, agg_slots)

        def _like(cols: Sequence[list], n: int) -> list:
            values = operand(cols, n)
            patterns = pattern_fn(cols, n)
            out: list = []
            for value, pattern in zip(values, patterns):
                if value is None or pattern is None:
                    out.append(None)
                    continue
                matched = (
                    like_to_regex(str(pattern)).match(str(value)) is not None
                )
                out.append((not matched) if negated else matched)
            return out

        return _like

    if isinstance(expr, InList):
        return _compile_in_list_batch(expr, scope, agg_slots)

    if isinstance(expr, Between):
        operand = compile_expr_batch(expr.operand, scope, agg_slots)
        low_fn = compile_expr_batch(expr.low, scope, agg_slots)
        high_fn = compile_expr_batch(expr.high, scope, agg_slots)
        negated = expr.negated

        def _between(cols: Sequence[list], n: int) -> list:
            values = operand(cols, n)
            lows = low_fn(cols, n)
            highs = high_fn(cols, n)
            out: list = []
            for value, low, high in zip(values, lows, highs):
                cmp_low = compare_values(value, low)
                cmp_high = compare_values(value, high)
                if cmp_low is None or cmp_high is None:
                    out.append(None)
                    continue
                inside = cmp_low >= 0 and cmp_high <= 0
                out.append((not inside) if negated else inside)
            return out

        return _between

    if isinstance(expr, IsNull):
        operand = compile_expr_batch(expr.operand, scope, agg_slots)
        if expr.negated:
            return lambda cols, n: [
                value is not None for value in operand(cols, n)
            ]
        return lambda cols, n: [value is None for value in operand(cols, n)]

    if isinstance(expr, CaseWhen):
        branch_fns = [
            (compile_expr_batch(condition, scope, agg_slots),
             compile_expr_batch(value, scope, agg_slots))
            for condition, value in expr.branches
        ]
        default_fn = (
            compile_expr_batch(expr.default, scope, agg_slots)
            if expr.default is not None
            else None
        )

        def _case(cols: Sequence[list], n: int) -> list:
            out: list = [None] * n
            live = list(range(n))  # absolute row indices still undecided
            sub_cols: Sequence[list] = cols
            for condition_fn, value_fn in branch_fns:
                if not live:
                    return out
                conditions = condition_fn(sub_cols, len(live))
                taken = [j for j, c in enumerate(conditions) if c is True]
                if not taken:
                    continue
                if len(taken) == len(live):
                    values = value_fn(sub_cols, len(live))
                    for j, i in enumerate(live):
                        out[i] = values[j]
                    return out
                values = value_fn(gather_columns(sub_cols, taken), len(taken))
                for j, position in enumerate(taken):
                    out[live[position]] = values[j]
                kept = [j for j, c in enumerate(conditions) if c is not True]
                live = [live[j] for j in kept]
                sub_cols = gather_columns(sub_cols, kept)
            if default_fn is not None and live:
                values = default_fn(sub_cols, len(live))
                for j, i in enumerate(live):
                    out[i] = values[j]
            return out

        return _case

    raise SqlExecutionError(f"cannot compile expression: {expr!r}")


#: post-``compare_values`` checks, shared by the generic comparison path
_COMPARE_CHECKS: dict[str, Callable[[int], bool]] = {
    "=": lambda r: r == 0,
    "<>": lambda r: r != 0,
    "<": lambda r: r < 0,
    "<=": lambda r: r <= 0,
    ">": lambda r: r > 0,
    ">=": lambda r: r >= 0,
}


def _compile_binary_batch(
    expr: BinaryOp, scope: Scope, agg_slots: "dict[FuncCall, int] | None"
) -> BatchFn:
    op = expr.op

    if op == "AND":
        left = compile_expr_batch(expr.left, scope, agg_slots)
        right = compile_expr_batch(expr.right, scope, agg_slots)

        def _and(cols: Sequence[list], n: int) -> list:
            lhs = left(cols, n)
            live = [i for i, value in enumerate(lhs) if value is not False]
            if not live:
                return lhs  # everything False already
            if len(live) == n:
                rhs = right(cols, n)
                return [
                    False if b is False
                    else (None if a is None or b is None else True)
                    for a, b in zip(lhs, rhs)
                ]
            # evaluate the right side only where row mode would
            rhs = right(gather_columns(cols, live), len(live))
            out: list = [False] * n
            for j, i in enumerate(live):
                b = rhs[j]
                if b is False:
                    continue
                out[i] = None if lhs[i] is None or b is None else True
            return out

        return _and

    if op == "OR":
        left = compile_expr_batch(expr.left, scope, agg_slots)
        right = compile_expr_batch(expr.right, scope, agg_slots)

        def _or(cols: Sequence[list], n: int) -> list:
            lhs = left(cols, n)
            live = [i for i, value in enumerate(lhs) if value is not True]
            if not live:
                return lhs  # everything True already
            if len(live) == n:
                rhs = right(cols, n)
                return [
                    True if b is True
                    else (None if a is None or b is None else False)
                    for a, b in zip(lhs, rhs)
                ]
            rhs = right(gather_columns(cols, live), len(live))
            out: list = [True] * n
            for j, i in enumerate(live):
                b = rhs[j]
                if b is True:
                    out[i] = True
                    continue
                out[i] = None if lhs[i] is None or b is None else False
            return out

        return _or

    if op in _COMPARE_CHECKS:
        fast = _compile_compare_fast_path(expr, scope)
        if fast is not None:
            return fast
        left = compile_expr_batch(expr.left, scope, agg_slots)
        right = compile_expr_batch(expr.right, scope, agg_slots)
        check = _COMPARE_CHECKS[op]

        def _compare(cols: Sequence[list], n: int) -> list:
            return [
                None if (result := compare_values(a, b)) is None
                else check(result)
                for a, b in zip(left(cols, n), right(cols, n))
            ]

        return _compare

    if op in ("+", "-", "*", "/"):
        left = compile_expr_batch(expr.left, scope, agg_slots)
        right = compile_expr_batch(expr.right, scope, agg_slots)
        rendered = expr.to_sql()

        def _num(value: Any) -> Any:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise SqlTypeError(
                    f"arithmetic on non-number {value!r} in {rendered}"
                )
            return value

        if op == "+":
            return lambda cols, n: [
                None if a is None or b is None else _num(a) + _num(b)
                for a, b in zip(left(cols, n), right(cols, n))
            ]
        if op == "-":
            return lambda cols, n: [
                None if a is None or b is None else _num(a) - _num(b)
                for a, b in zip(left(cols, n), right(cols, n))
            ]
        if op == "*":
            return lambda cols, n: [
                None if a is None or b is None else _num(a) * _num(b)
                for a, b in zip(left(cols, n), right(cols, n))
            ]

        def _div(a: Any, b: Any) -> Any:
            a, b = _num(a), _num(b)
            if b == 0:
                raise SqlExecutionError(f"division by zero in {rendered}")
            return a / b

        return lambda cols, n: [
            None if a is None or b is None else _div(a, b)
            for a, b in zip(left(cols, n), right(cols, n))
        ]

    if op == "||":
        left = compile_expr_batch(expr.left, scope, agg_slots)
        right = compile_expr_batch(expr.right, scope, agg_slots)
        return lambda cols, n: [
            None if a is None or b is None else str(a) + str(b)
            for a, b in zip(left(cols, n), right(cols, n))
        ]

    raise SqlExecutionError(
        f"unknown binary operator {op!r} in {expr.to_sql()}"
    )


def _compile_compare_fast_path(
    expr: BinaryOp, scope: Scope
) -> "BatchFn | None":
    """Specialized ``column <op> literal`` comparisons.

    The hottest predicate shape gets a single list comprehension with no
    per-row function calls.  Equality is phrased through ``<``/``>`` so
    the result matches :func:`compare_values` for every input it accepts
    (including NaN); values the fast type test rejects fall back to
    ``compare_values``, which raises the identical type errors.
    """
    column_side, literal_side, op = expr.left, expr.right, expr.op
    if isinstance(column_side, Literal) and isinstance(literal_side, ColumnRef):
        column_side, literal_side = literal_side, column_side
        flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
        op = flip.get(op, op)
    if not (
        isinstance(column_side, ColumnRef) and isinstance(literal_side, Literal)
    ):
        return None
    lit = literal_side.value
    if lit is None:
        return lambda cols, n: [None] * n
    if isinstance(lit, bool) or not isinstance(lit, (int, float, str)):
        return None
    index = scope.resolve(column_side)
    check = _COMPARE_CHECKS[op]
    # exact-type membership is call-free per row; anything else (bool,
    # date, cross-type) drops to compare_values for identical semantics
    text_literal = isinstance(lit, str)
    ok = frozenset((str,)) if text_literal else frozenset((int, float))

    if op == "=":
        def _eq(cols: Sequence[list], n: int) -> list:
            column = cols[index]
            if text_literal and isinstance(column, EncodedColumn):
                # encoded column: one dictionary probe resolves the
                # literal to a code, the rows compare small integers
                # (str = str equality matches compare_values exactly)
                if _METRICS.enabled:
                    _DICT_FASTPATH.inc()
                code = column.dictionary.code_of.get(lit)
                if code is None:
                    return [
                        None if c is None else False for c in column.codes
                    ]
                return [
                    None if c is None else c == code for c in column.codes
                ]
            return [
                None if v is None
                else (not (v < lit or v > lit) if type(v) in ok
                      else check(compare_values(v, lit)))
                for v in column
            ]

        return _eq
    if op == "<>":
        def _ne(cols: Sequence[list], n: int) -> list:
            column = cols[index]
            if text_literal and isinstance(column, EncodedColumn):
                if _METRICS.enabled:
                    _DICT_FASTPATH.inc()
                code = column.dictionary.code_of.get(lit)
                if code is None:
                    return [
                        None if c is None else True for c in column.codes
                    ]
                return [
                    None if c is None else c != code for c in column.codes
                ]
            return [
                None if v is None
                else ((v < lit or v > lit) if type(v) in ok
                      else check(compare_values(v, lit)))
                for v in column
            ]

        return _ne
    if op == "<":
        def _lt(cols: Sequence[list], n: int) -> list:
            return [
                None if v is None
                else (v < lit if type(v) in ok
                      else check(compare_values(v, lit)))
                for v in cols[index]
            ]

        return _lt
    if op == "<=":
        def _le(cols: Sequence[list], n: int) -> list:
            return [
                None if v is None
                else (not (v > lit) if type(v) in ok
                      else check(compare_values(v, lit)))
                for v in cols[index]
            ]

        return _le
    if op == ">":
        def _gt(cols: Sequence[list], n: int) -> list:
            return [
                None if v is None
                else (v > lit if type(v) in ok
                      else check(compare_values(v, lit)))
                for v in cols[index]
            ]

        return _gt

    def _ge(cols: Sequence[list], n: int) -> list:
        return [
            None if v is None
            else (not (v < lit) if type(v) in ok
                  else check(compare_values(v, lit)))
            for v in cols[index]
        ]

    return _ge


def _compile_in_list_batch(
    expr: InList, scope: Scope, agg_slots: "dict[FuncCall, int] | None"
) -> BatchFn:
    operand = compile_expr_batch(expr.operand, scope, agg_slots)
    negated = expr.negated

    # fast path: a homogeneous list of non-NULL literals becomes one set
    # membership test per row (falling back where the type test fails so
    # mixed-type errors still surface via values_equal)
    literals = [
        item.value for item in expr.items if isinstance(item, Literal)
    ]
    if len(literals) == len(expr.items) and literals:
        numeric = all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in literals
        )
        textual = all(type(v) is str for v in literals)
        if numeric or textual:
            member_set = set(literals)

            def _in_set(cols: Sequence[list], n: int) -> list:
                values = operand(cols, n)
                if textual and isinstance(values, EncodedColumn):
                    # encoded column: resolve the member strings to codes
                    # once, then the rows do integer set probes
                    code_of = values.dictionary.code_of
                    member_codes = {
                        code_of[v] for v in member_set if v in code_of
                    }
                    if negated:
                        return [
                            None if c is None else c not in member_codes
                            for c in values.codes
                        ]
                    return [
                        None if c is None else c in member_codes
                        for c in values.codes
                    ]
                out: list = []
                for value in values:
                    if value is None:
                        out.append(None)
                        continue
                    if numeric:
                        # NaN must take the values_equal walk below:
                        # compare_values treats NaN as equal to any
                        # number, set membership would never match it
                        ok = type(value) is int or (
                            type(value) is float and value == value
                        )
                    else:
                        ok = type(value) is str
                    if ok:
                        out.append(
                            (value not in member_set)
                            if negated
                            else (value in member_set)
                        )
                        continue
                    # mixed types: mirror the row-mode item walk so the
                    # same SqlTypeError surfaces from values_equal
                    hit = False
                    for item in literals:
                        if values_equal(value, item):
                            out.append(not negated)
                            hit = True
                            break
                    if not hit:
                        out.append(negated)
                return out

            return _in_set

    item_fns = [
        compile_expr_batch(item, scope, agg_slots) for item in expr.items
    ]

    def _in(cols: Sequence[list], n: int) -> list:
        values = operand(cols, n)
        out: list = [None] * n  # NULL operands stay NULL
        live = [i for i, value in enumerate(values) if value is not None]
        if not live:
            return out
        # each item expression is evaluated only over the rows that
        # actually reach it (no earlier item matched), mirroring row
        # mode's per-row early exit and its error behavior
        if len(live) == n:
            sub_cols: Sequence[list] = cols
        else:
            sub_cols = gather_columns(cols, live)
        live_values = [values[i] for i in live]
        null_flags = [False] * len(live)
        for item_fn in item_fns:
            if not live:
                break
            item_col = item_fn(sub_cols, len(live))
            kept: list = []
            for position, value in enumerate(live_values):
                equal = values_equal(value, item_col[position])
                if equal is None:
                    null_flags[position] = True
                elif equal:
                    out[live[position]] = not negated
                    continue
                kept.append(position)
            if len(kept) != len(live):
                live = [live[p] for p in kept]
                live_values = [live_values[p] for p in kept]
                null_flags = [null_flags[p] for p in kept]
                sub_cols = gather_columns(sub_cols, kept)
        for position, i in enumerate(live):
            out[i] = None if null_flags[position] else negated
        return out

    return _in


# ---------------------------------------------------------------------------
# fused expression codegen
# ---------------------------------------------------------------------------

#: sentinel bound as ``_MISS`` in generated preludes: a string literal
#: absent from a column's dictionary resolves to it, making ``code ==
#: _MISS`` False and ``code != _MISS`` True for every present row —
#: the same outcome the literal would have against the decoded strings
_FUSION_MISSING = object()

#: compiled code objects keyed by generated source, so plans that fuse
#: to identical shapes share one ``compile()`` (constants are bound per
#: plan at exec time)
_FUSED_CODE_CACHE: dict[str, Any] = {}
_FUSED_CODE_CACHE_MAX = 512

#: sources above this size fall back to closures: deeply nested trees
#: duplicate NULL guards, and past this point codegen stops paying off
_FUSION_MAX_SOURCE = 20000

_FUSIBLE_COMPARES = frozenset(("=", "<>", "<", "<=", ">", ">="))

_NEGATED_COMPARE = {
    "=": "<>",
    "<>": "=",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
}


def _cmp_formula(op: str, a: str, b: str, cls: str, positive: bool) -> str:
    """A Python expression deciding ``a <op> b`` for non-NULL operands.

    Numeric equality is phrased through ``<``/``>`` (and ``<=``/``>=``
    as negations) so NaN behaves exactly like :func:`compare_values`,
    which reports 0 for NaN against any number.  Strings and dates are
    total orders, where the direct operators agree with compare_values.
    """
    if not positive:
        op = _NEGATED_COMPARE[op]
    if op == "=":
        if cls == "num":
            return f"not ({a} < {b} or {a} > {b})"
        return f"{a} == {b}"
    if op == "<>":
        if cls == "num":
            return f"({a} < {b} or {a} > {b})"
        return f"{a} != {b}"
    if op == "<":
        return f"{a} < {b}"
    if op == "<=":
        return f"not ({a} > {b})"
    if op == ">":
        return f"{a} > {b}"
    return f"not ({a} < {b})"


class _Unfusible(Exception):
    """Raised by the codegen visitor on any node it cannot prove safe."""


class _Val:
    """A generated value expression: code string + value class + literal."""

    __slots__ = ("code", "cls", "lit", "is_lit")

    def __init__(self, code, cls, lit=None, is_lit=False) -> None:
        self.code = code
        self.cls = cls
        self.lit = lit
        self.is_lit = is_lit


class FusedBatch:
    """One generated batch function produced by :func:`fuse_batch_exprs`.

    ``fn(cols, n)`` evaluates the fused expressions over a column batch:
    in filter mode it returns the selected row indices (all conjuncts
    True); in value mode it returns a tuple of output columns, one per
    fused expression.  ``consumed`` is the number of leading predicates
    folded in (filter mode); ``indexes`` the positions of the fused
    expressions (value mode).  ``source`` keeps the generated Python for
    EXPLAIN-style debugging and tests.
    """

    __slots__ = ("fn", "consumed", "indexes", "source")

    def __init__(self, fn, consumed, indexes, source) -> None:
        self.fn = fn
        self.consumed = consumed
        self.indexes = indexes
        self.source = source


class _Fuser:
    """Codegen state shared across the expressions of one fuse call."""

    def __init__(self, scope: Scope, class_of) -> None:
        self.scope = scope
        self.class_of = class_of
        #: scope index -> {"id", "order", "eq"}; insertion order assigns
        #: deterministic variable ids
        self.cols: dict[int, dict] = {}
        self.consts: dict[str, Any] = {}
        #: row-local variable ids used by the expression being generated
        self.current_used: list[int] = []

    # -- rollback ------------------------------------------------------
    def snapshot(self):
        return (
            {
                index: {
                    "id": info["id"],
                    "order": info["order"],
                    "eq": list(info["eq"]),
                }
                for index, info in self.cols.items()
            },
            dict(self.consts),
        )

    def restore(self, snap) -> None:
        self.cols, self.consts = snap[0], snap[1]

    # -- registration --------------------------------------------------
    def use_col(self, index: int, order_sensitive: bool = True) -> dict:
        info = self.cols.get(index)
        if info is None:
            info = {"id": len(self.cols), "order": False, "eq": []}
            self.cols[index] = info
        if order_sensitive:
            info["order"] = True
        if info["id"] not in self.current_used:
            self.current_used.append(info["id"])
        return info

    def const(self, value: Any) -> str:
        name = f"_k{len(self.consts)}"
        self.consts[name] = value
        return name

    def eq_const(self, info: dict, value: Any, is_set: bool) -> str:
        """A literal used in an equality against a (possibly encoded)
        string column: the generated prelude rebinds the returned name
        to the literal's dictionary code (or code set) per batch."""
        raw = self.const(value)
        mapped = f"{raw}x{info['id']}"
        info["eq"].append((raw, mapped, is_set))
        return mapped

    def resolve_col(self, ref: ColumnRef) -> int:
        try:
            return self.scope.resolve(ref)
        except SqlCatalogError:
            raise _Unfusible from None

    def col_class(self, index: int) -> "str | None":
        binding, column = self.scope.pairs[index]
        return self.class_of(binding, column)

    # -- boolean-context generation ------------------------------------
    def boolish(self, expr: Expr) -> bool:
        """True when *expr* can only evaluate to True/False/None — the
        precondition for distributing NOT/AND/OR over it."""
        if isinstance(expr, (Between, InList, IsNull, Like)):
            return True
        if isinstance(expr, BinaryOp):
            return expr.op in ("AND", "OR") or expr.op in _FUSIBLE_COMPARES
        if isinstance(expr, UnaryOp):
            return expr.op == "NOT"
        if isinstance(expr, Literal):
            return isinstance(expr.value, bool) or expr.value is None
        if isinstance(expr, ColumnRef):
            return self.col_class(self.resolve_col(expr)) == "bool"
        return False

    def gen_bool(self, expr: Expr, positive: bool) -> str:
        """Code for t(expr) (``positive``) or f(expr): a plain Python
        bool deciding whether the 3VL value is True (resp. False)."""
        if isinstance(expr, Literal):
            hit = expr.value is True if positive else expr.value is False
            return "True" if hit else "False"
        if isinstance(expr, UnaryOp) and expr.op == "NOT":
            # NOT of a non-boolean uses Python truthiness in row mode;
            # only distribute over operands confined to 3VL values
            if not self.boolish(expr.operand):
                raise _Unfusible
            return self.gen_bool(expr.operand, not positive)
        if isinstance(expr, BinaryOp) and expr.op in ("AND", "OR"):
            if not (self.boolish(expr.left) and self.boolish(expr.right)):
                raise _Unfusible
            # t(AND)=t∧t, f(AND)=f∨f, t(OR)=t∨t, f(OR)=f∧f
            lhs = self.gen_bool(expr.left, positive)
            rhs = self.gen_bool(expr.right, positive)
            if expr.op == "AND":
                joiner = "and" if positive else "or"
            else:
                joiner = "or" if positive else "and"
            return f"(({lhs}) {joiner} ({rhs}))"
        if isinstance(expr, BinaryOp) and expr.op in _FUSIBLE_COMPARES:
            parts = self._compare_parts(expr.left, expr.right, expr.op)
            if parts is None:  # comparison against a NULL literal
                return "False"
            a, b, cls, nonlit = parts
            formula = _cmp_formula(expr.op, a, b, cls, positive)
            guards = [f"{code} is not None" for code in nonlit]
            return "(" + " and ".join(guards + [f"({formula})"]) + ")"
        if isinstance(expr, Between):
            a, low, high, cls, nonlit = self._between_parts(expr)
            inside = positive ^ expr.negated
            if inside:
                formula = f"not ({a} < {low}) and not ({a} > {high})"
            else:
                formula = f"(({a} < {low}) or ({a} > {high}))"
            guards = [f"{code} is not None" for code in nonlit]
            return "(" + " and ".join(guards + [f"({formula})"]) + ")"
        if isinstance(expr, InList):
            member, operand = self._in_parts(expr)
            want = positive ^ expr.negated
            test = f"({member})" if want else f"not ({member})"
            return f"({operand} is not None and {test})"
        if isinstance(expr, IsNull):
            code = self._is_null_operand(expr)
            test = "is None" if (positive ^ expr.negated) else "is not None"
            return f"({code} {test})"
        # generic fallback: the mask semantics are `value is True`; the
        # False polarity additionally requires a genuinely boolean value
        value = self.gen_value(expr)
        if positive:
            return f"(({value.code}) is True)"
        if value.cls != "bool":
            raise _Unfusible
        return f"(({value.code}) is False)"

    # -- value generation ----------------------------------------------
    def gen_value(self, expr: Expr) -> _Val:
        if isinstance(expr, Literal):
            value = expr.value
            if value is None:
                return _Val("None", None, None, True)
            if isinstance(value, bool):
                return _Val("True" if value else "False", "bool", value, True)
            if isinstance(value, (int, float)):
                return _Val(self.const(value), "num", value, True)
            if isinstance(value, str):
                return _Val(self.const(value), "str", value, True)
            if isinstance(value, datetime.date):
                return _Val(self.const(value), "date", value, True)
            raise _Unfusible

        if isinstance(expr, ColumnRef):
            index = self.resolve_col(expr)
            cls = self.col_class(index)
            if cls is None:
                raise _Unfusible
            info = self.use_col(index, order_sensitive=True)
            return _Val(f"_x{info['id']}", cls)

        if isinstance(expr, FuncCall):
            return self._gen_func(expr)

        if isinstance(expr, UnaryOp):
            if expr.op == "NOT":
                value = self.gen_value(expr.operand)
                return _Val(
                    f"(None if {value.code} is None else not {value.code})",
                    "bool",
                )
            if expr.op == "-":
                value = self.gen_value(expr.operand)
                if value.cls != "num":
                    raise _Unfusible
                return _Val(
                    f"(None if {value.code} is None else -({value.code}))",
                    "num",
                )
            raise _Unfusible

        if isinstance(expr, BinaryOp):
            return self._gen_binary_value(expr)

        if isinstance(expr, Between):
            a, low, high, cls, nonlit = self._between_parts(expr)
            if expr.negated:
                formula = f"(({a} < {low}) or ({a} > {high}))"
            else:
                formula = f"(not ({a} < {low}) and not ({a} > {high}))"
            if not nonlit:
                return _Val(formula, "bool")
            nulls = " or ".join(f"{code} is None" for code in nonlit)
            return _Val(f"(None if {nulls} else {formula})", "bool")

        if isinstance(expr, InList):
            member, operand = self._in_parts(expr)
            test = f"not ({member})" if expr.negated else f"({member})"
            return _Val(f"(None if {operand} is None else {test})", "bool")

        if isinstance(expr, IsNull):
            code = self._is_null_operand(expr)
            test = "is not None" if expr.negated else "is None"
            return _Val(f"({code} {test})", "bool")

        if isinstance(expr, CaseWhen):
            return self._gen_case(expr)

        raise _Unfusible

    def _gen_func(self, expr: FuncCall) -> _Val:
        if expr.name in AGGREGATE_FUNCTIONS:
            raise _Unfusible
        if expr.name in ("lower", "upper") and len(expr.args) == 1:
            value = self.gen_value(expr.args[0])
            code = (
                f"(None if {value.code} is None"
                f" else str({value.code}).{expr.name}())"
            )
            return _Val(code, "str")
        if expr.name == "length" and len(expr.args) == 1:
            value = self.gen_value(expr.args[0])
            return _Val(
                f"(None if {value.code} is None else len(str({value.code})))",
                "num",
            )
        if expr.name == "coalesce" and expr.args:
            values = [self.gen_value(arg) for arg in expr.args]
            classes = {v.cls for v in values if v.cls is not None}
            if len(classes) > 1:
                raise _Unfusible
            cls = classes.pop() if classes else None
            code = "None"
            for value in reversed(values):
                code = f"({value.code} if {value.code} is not None else {code})"
            return _Val(code, cls)
        raise _Unfusible

    def _gen_binary_value(self, expr: BinaryOp) -> _Val:
        op = expr.op
        if op in ("AND", "OR"):
            a = self.gen_value(expr.left)
            b = self.gen_value(expr.right)
            if op == "AND":
                code = (
                    f"(False if {a.code} is False or {b.code} is False"
                    f" else (None if {a.code} is None or {b.code} is None"
                    f" else True))"
                )
            else:
                code = (
                    f"(True if {a.code} is True or {b.code} is True"
                    f" else (None if {a.code} is None or {b.code} is None"
                    f" else False))"
                )
            return _Val(code, "bool")
        if op in _FUSIBLE_COMPARES:
            parts = self._compare_parts(expr.left, expr.right, op)
            if parts is None:
                return _Val("None", "bool")
            a, b, cls, nonlit = parts
            formula = f"({_cmp_formula(op, a, b, cls, True)})"
            if not nonlit:
                return _Val(formula, "bool")
            nulls = " or ".join(f"{code} is None" for code in nonlit)
            return _Val(f"(None if {nulls} else {formula})", "bool")
        if op in ("+", "-", "*", "/"):
            a = self.gen_value(expr.left)
            b = self.gen_value(expr.right)
            if a.cls != "num" or b.cls != "num":
                raise _Unfusible
            if op == "/":
                # only a provably nonzero literal divisor cannot raise
                if not (b.is_lit and b.lit != 0):
                    raise _Unfusible
            formula = f"({a.code} {op} {b.code})"
            nonlit = [v.code for v in (a, b) if not (v.is_lit and v.lit is not None)]
            if not nonlit:
                return _Val(formula, "num")
            nulls = " or ".join(f"{code} is None" for code in nonlit)
            return _Val(f"(None if {nulls} else {formula})", "num")
        if op == "||":
            a = self.gen_value(expr.left)
            b = self.gen_value(expr.right)
            formula = f"(str({a.code}) + str({b.code}))"
            nonlit = [v.code for v in (a, b) if not (v.is_lit and v.lit is not None)]
            if not nonlit:
                return _Val(formula, "str")
            nulls = " or ".join(f"{code} is None" for code in nonlit)
            return _Val(f"(None if {nulls} else {formula})", "str")
        raise _Unfusible

    def _gen_case(self, expr: CaseWhen) -> _Val:
        branches = [
            (self.gen_bool(condition, True), self.gen_value(value))
            for condition, value in expr.branches
        ]
        default = (
            self.gen_value(expr.default) if expr.default is not None else None
        )
        values = [value for __, value in branches]
        if default is not None:
            values.append(default)
        classes = {v.cls for v in values if v.cls is not None}
        if len(classes) > 1:
            raise _Unfusible
        cls = classes.pop() if classes else None
        code = default.code if default is not None else "None"
        for condition, value in reversed(branches):
            code = f"(({value.code}) if ({condition}) else {code})"
        return _Val(code, cls)

    # -- comparison plumbing -------------------------------------------
    def _compare_parts(self, left: Expr, right: Expr, op: str):
        """Aligned operand codes for a comparison, or None when one side
        is a NULL literal (a constant-NULL comparison).

        Returns ``(a, b, cls, nonlit)`` where *nonlit* lists the operand
        codes needing NULL guards.  Bare string column = string literal
        goes through a per-batch dictionary-code rebind so encoded
        columns compare small integers.
        """
        if op in ("=", "<>"):
            for col_side, lit_side in ((left, right), (right, left)):
                if (
                    isinstance(col_side, ColumnRef)
                    and isinstance(lit_side, Literal)
                    and type(lit_side.value) is str
                ):
                    index = self.resolve_col(col_side)
                    if self.col_class(index) == "str":
                        info = self.use_col(index, order_sensitive=False)
                        mapped = self.eq_const(info, lit_side.value, False)
                        x = f"_x{info['id']}"
                        return x, mapped, "str", [x]
        a = self.gen_value(left)
        b = self.gen_value(right)
        if (a.is_lit and a.lit is None) or (b.is_lit and b.lit is None):
            return None
        cls = self._align(a, b)
        nonlit = [v.code for v in (a, b) if not (v.is_lit and v.lit is not None)]
        return a.code, b.code, cls, nonlit

    def _align(self, a: _Val, b: _Val) -> str:
        """The common comparison class, parsing a string literal against
        a date side at codegen time exactly as compare_values would per
        row (an unparsable literal would raise per row: unfusible)."""
        if a.cls == b.cls and a.cls in ("num", "str", "date"):
            return a.cls
        for date_side, str_side in ((a, b), (b, a)):
            if date_side.cls == "date" and str_side.cls == "str" and str_side.is_lit:
                try:
                    parsed = parse_date(str_side.lit)
                except SqlTypeError:
                    raise _Unfusible from None
                self.consts[str_side.code] = parsed
                str_side.cls = "date"
                return "date"
        raise _Unfusible

    def _between_parts(self, expr: Between):
        a = self.gen_value(expr.operand)
        low = self.gen_value(expr.low)
        high = self.gen_value(expr.high)
        cls = self._align(a, low)
        if self._align(a, high) != cls:
            raise _Unfusible
        values = (a, low, high)
        nonlit = [v.code for v in values if not (v.is_lit and v.lit is not None)]
        return a.code, low.code, high.code, cls, nonlit

    def _in_parts(self, expr: InList):
        """``(member_test_code, operand_code)`` for a literal IN list."""
        literals = []
        for item in expr.items:
            if not isinstance(item, Literal) or item.value is None:
                raise _Unfusible
            literals.append(item.value)
        if not literals:
            raise _Unfusible
        numeric = all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in literals
        )
        textual = all(type(v) is str for v in literals)
        if not (numeric or textual):
            raise _Unfusible
        if textual and isinstance(expr.operand, ColumnRef):
            index = self.resolve_col(expr.operand)
            if self.col_class(index) != "str":
                raise _Unfusible
            info = self.use_col(index, order_sensitive=False)
            mapped = self.eq_const(info, frozenset(literals), True)
            x = f"_x{info['id']}"
            return f"{x} in {mapped}", x
        value = self.gen_value(expr.operand)
        if numeric:
            if value.cls != "num":
                raise _Unfusible
            members = self.const(frozenset(literals))
            # NaN: compare_values calls it equal to any number, so a NaN
            # operand matches the first item — membership alone wouldn't
            return (
                f"{value.code} in {members} or {value.code} != {value.code}",
                value.code,
            )
        if value.cls != "str":
            raise _Unfusible
        members = self.const(frozenset(literals))
        return f"{value.code} in {members}", value.code

    def _is_null_operand(self, expr: IsNull) -> str:
        if isinstance(expr.operand, ColumnRef):
            index = self.resolve_col(expr.operand)
            if self.col_class(index) is None:
                raise _Unfusible
            info = self.use_col(index, order_sensitive=False)
            return f"_x{info['id']}"
        return self.gen_value(expr.operand).code

    # -- source assembly -----------------------------------------------
    def preludes(self) -> list[str]:
        """Per-batch column normalization lines.

        Only string-class columns can arrive dictionary-encoded.  A
        column used solely in equality/NULL tests keeps its codes and
        rebinds its literals through the dictionary; any other use
        decodes the column up front (order comparisons and value uses
        need real strings).
        """
        lines: list[str] = []
        for index, info in self.cols.items():
            if self.col_class(index) != "str":
                continue
            vid = info["id"]
            if info["order"]:
                lines.append(f"    if type(_v{vid}) is _Enc:")
                lines.append(f"        _v{vid} = _v{vid}.decode()")
                for raw, mapped, __ in info["eq"]:
                    lines.append(f"    {mapped} = {raw}")
            elif info["eq"]:
                lines.append(f"    if type(_v{vid}) is _Enc:")
                lines.append(f"        _m{vid} = _v{vid}.dictionary.code_of")
                lines.append(f"        _v{vid} = _v{vid}.codes")
                for raw, mapped, is_set in info["eq"]:
                    if is_set:
                        lines.append(
                            f"        {mapped} = frozenset("
                            f"_c for _c in map(_m{vid}.get, {raw})"
                            f" if _c is not None)"
                        )
                    else:
                        lines.append(
                            f"        {mapped} = _m{vid}.get({raw}, _MISS)"
                        )
                lines.append("    else:")
                for raw, mapped, __ in info["eq"]:
                    lines.append(f"        {mapped} = {raw}")
            else:
                lines.append(f"    if type(_v{vid}) is _Enc:")
                lines.append(f"        _v{vid} = _v{vid}.codes")
        return lines

    def column_decls(self) -> list[str]:
        return [
            f"    _v{info['id']} = cols[{index}]"
            for index, info in self.cols.items()
        ]


def _row_iter(used: Sequence[int], with_index: bool) -> str:
    """The ``for`` clause iterating the used columns' row values."""
    if len(used) == 1:
        target = f"_x{used[0]}"
        source = f"_v{used[0]}"
    else:
        target = "(" + ", ".join(f"_x{vid}" for vid in used) + ")"
        source = "zip(" + ", ".join(f"_v{vid}" for vid in used) + ")"
    if with_index:
        return f"for _i, {target} in enumerate({source})"
    if len(used) > 1:
        target = target[1:-1]  # bare tuple target reads better in a comp
    return f"for {target} in {source}"


def _instantiate(source: str, consts: dict) -> Callable:
    code = _FUSED_CODE_CACHE.get(source)
    if code is None:
        if len(_FUSED_CODE_CACHE) >= _FUSED_CODE_CACHE_MAX:
            _FUSED_CODE_CACHE.clear()
        code = compile(source, "<fused-batch-exprs>", "exec")
        _FUSED_CODE_CACHE[source] = code
    namespace: dict = {"_Enc": EncodedColumn, "_MISS": _FUSION_MISSING}
    namespace.update(consts)
    exec(code, namespace)
    return namespace["_fused"]


def fuse_batch_exprs(
    exprs: Sequence[Expr],
    scope: Scope,
    class_of: Callable[["str | None", str], "str | None"],
    mode: str = "value",
) -> "FusedBatch | None":
    """Compile expression trees into one generated function per batch.

    *class_of* maps a scope pair ``(binding, column)`` to its value
    class (``"num"``/``"str"``/``"date"``/``"bool"``) or None for
    columns of unknown provenance; the generator refuses any node whose
    semantics it cannot pin down from those classes, so everything it
    emits is provably identical to the closure tier — results *and*
    errors (fused nodes never raise, making evaluation order and
    short-circuit differences unobservable).

    ``mode="filter"``: *exprs* are conjuncts applied in order; the
    longest fusible prefix becomes one function returning the selected
    row indices.  Remaining conjuncts must keep running as closures, in
    order, to preserve error semantics.

    ``mode="value"``: each fusible compound expression becomes one
    output column of the generated function (bare column refs and
    literals are excluded — the existing closures alias them for free).

    Returns None when nothing worthwhile could be fused.
    """
    if mode not in ("filter", "value"):
        raise ValueError(f"unknown fusion mode {mode!r}")
    fuser = _Fuser(scope, class_of)

    if mode == "filter":
        conds: list[str] = []
        used: list[int] = []
        for expr in exprs:
            snap = fuser.snapshot()
            fuser.current_used = []
            try:
                cond = fuser.gen_bool(expr, True)
            except _Unfusible:
                fuser.restore(snap)
                break
            conds.append(cond)
            for vid in fuser.current_used:
                if vid not in used:
                    used.append(vid)
        if not conds or not used:
            return None
        lines = ["def _fused(cols, n):"]
        lines += fuser.column_decls()
        lines += fuser.preludes()
        condition = " and ".join(f"({c})" for c in conds)
        lines.append(
            f"    return [_i {_row_iter(sorted(used), True)} if {condition}]"
        )
        source = "\n".join(lines) + "\n"
        if len(source) > _FUSION_MAX_SOURCE:
            return None
        fn = _instantiate(source, fuser.consts)
        return FusedBatch(fn, len(conds), None, source)

    outputs: list[tuple] = []
    for position, expr in enumerate(exprs):
        if not isinstance(expr, Expr) or isinstance(expr, (Literal, ColumnRef)):
            continue
        snap = fuser.snapshot()
        fuser.current_used = []
        try:
            value = fuser.gen_value(expr)
        except _Unfusible:
            fuser.restore(snap)
            continue
        if not fuser.current_used:
            fuser.restore(snap)
            continue
        outputs.append((position, value.code, sorted(fuser.current_used)))
    if not outputs:
        return None
    lines = ["def _fused(cols, n):"]
    lines += fuser.column_decls()
    lines += fuser.preludes()
    names = []
    for slot, (__, code, used) in enumerate(outputs):
        names.append(f"_o{slot}")
        lines.append(f"    _o{slot} = [{code} {_row_iter(used, False)}]")
    lines.append(f"    return ({', '.join(names)}{',' if len(names) == 1 else ''})")
    source = "\n".join(lines) + "\n"
    if len(source) > _FUSION_MAX_SOURCE:
        return None
    fn = _instantiate(source, fuser.consts)
    return FusedBatch(fn, None, [position for position, __, __ in outputs], source)


def split_conjuncts(expr: Expr | None) -> list[Expr]:
    """Split an expression on top-level ANDs.

    >>> from repro.sqlengine.parser import parse_select
    >>> stmt = parse_select("SELECT * FROM t WHERE a = 1 AND b = 2")
    >>> len(split_conjuncts(stmt.where))
    2
    """
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]
