"""Expression compilation and evaluation.

Expressions are compiled against a :class:`Scope` (the column layout of
the rows flowing through an operator) into Python closures.  Three-valued
logic is used throughout: a predicate evaluates to ``True``, ``False`` or
``None`` (unknown), and WHERE keeps only rows where the predicate is
``True``.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Sequence

from repro.errors import SqlCatalogError, SqlExecutionError, SqlTypeError
from repro.sqlengine.ast_nodes import (
    AGGREGATE_FUNCTIONS,
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
)
from repro.sqlengine.types import compare_values, values_equal


class Scope:
    """Column layout of rows produced by an operator.

    A scope is an ordered list of ``(binding, column)`` pairs where
    *binding* is the table alias (or ``None`` for computed columns).
    """

    def __init__(self, pairs: Sequence[tuple]) -> None:
        self.pairs = list(pairs)
        self._qualified: dict[tuple, int] = {}
        self._unqualified: dict[str, list[int]] = {}
        for index, (binding, column) in enumerate(self.pairs):
            self._qualified[(binding, column)] = index
            self._unqualified.setdefault(column, []).append(index)

    def __len__(self) -> int:
        return len(self.pairs)

    def concat(self, other: "Scope") -> "Scope":
        return Scope(self.pairs + other.pairs)

    def resolve(self, ref: ColumnRef) -> int:
        """Resolve a column reference to a row index."""
        if ref.table is not None:
            key = (ref.table, ref.column)
            if key in self._qualified:
                return self._qualified[key]
            raise SqlCatalogError(
                f"unknown column {ref.table}.{ref.column} "
                f"(available: {self._describe()})"
            )
        indexes = self._unqualified.get(ref.column, [])
        if not indexes:
            raise SqlCatalogError(
                f"unknown column {ref.column!r} (available: {self._describe()})"
            )
        if len(indexes) > 1:
            raise SqlCatalogError(
                f"ambiguous column {ref.column!r}; qualify it with a table name"
            )
        return indexes[0]

    def try_resolve(self, ref: ColumnRef) -> int | None:
        try:
            return self.resolve(ref)
        except SqlCatalogError:
            return None

    def bindings(self) -> set[str]:
        return {binding for binding, __ in self.pairs if binding is not None}

    def _describe(self) -> str:
        shown = ", ".join(
            f"{binding}.{column}" if binding else column
            for binding, column in self.pairs[:12]
        )
        if len(self.pairs) > 12:
            shown += ", ..."
        return shown


# ---------------------------------------------------------------------------
# scalar functions
# ---------------------------------------------------------------------------


def _fn_lower(value: Any) -> Any:
    return None if value is None else str(value).lower()


def _fn_upper(value: Any) -> Any:
    return None if value is None else str(value).upper()


def _fn_length(value: Any) -> Any:
    return None if value is None else len(str(value))


def _fn_abs(value: Any) -> Any:
    if value is None:
        return None
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise SqlTypeError(f"abs() expects a number, got {value!r}")
    return abs(value)


def _fn_year(value: Any) -> Any:
    if value is None:
        return None
    if hasattr(value, "year"):
        return value.year
    raise SqlTypeError(f"year() expects a DATE, got {value!r}")


def _fn_month(value: Any) -> Any:
    if value is None:
        return None
    if hasattr(value, "month"):
        return value.month
    raise SqlTypeError(f"month() expects a DATE, got {value!r}")


def _fn_coalesce(*values: Any) -> Any:
    for value in values:
        if value is not None:
            return value
    return None


SCALAR_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "lower": _fn_lower,
    "upper": _fn_upper,
    "length": _fn_length,
    "abs": _fn_abs,
    "year": _fn_year,
    "month": _fn_month,
    "coalesce": _fn_coalesce,
}


def like_to_regex(pattern: str) -> "re.Pattern[str]":
    """Translate a SQL LIKE pattern to a compiled regex (case-insensitive)."""
    out = []
    for char in pattern:
        if char == "%":
            out.append(".*")
        elif char == "_":
            out.append(".")
        else:
            out.append(re.escape(char))
    return re.compile("^" + "".join(out) + "$", re.IGNORECASE | re.DOTALL)


# ---------------------------------------------------------------------------
# compilation
# ---------------------------------------------------------------------------

RowFn = Callable[[tuple], Any]


def compile_expr(
    expr: Expr,
    scope: Scope,
    agg_slots: "dict[FuncCall, int] | None" = None,
) -> RowFn:
    """Compile *expr* into a closure evaluating it against a row tuple.

    *agg_slots* maps aggregate FuncCall nodes to row indexes; it is
    supplied by the aggregation operator so that post-aggregation
    expressions (select items, HAVING, ORDER BY) can read aggregate
    results out of the extended group rows.
    """
    if isinstance(expr, Literal):
        value = expr.value
        return lambda row: value

    if isinstance(expr, ColumnRef):
        index = scope.resolve(expr)
        return lambda row: row[index]

    if isinstance(expr, FuncCall):
        if expr.name in AGGREGATE_FUNCTIONS:
            if agg_slots is None or expr not in agg_slots:
                raise SqlExecutionError(
                    f"aggregate {expr.to_sql()} used outside aggregation context"
                )
            slot = agg_slots[expr]
            return lambda row: row[slot]
        if expr.name not in SCALAR_FUNCTIONS:
            raise SqlExecutionError(
                f"unknown function {expr.name!r} in {expr.to_sql()} "
                f"(available: {', '.join(sorted(SCALAR_FUNCTIONS))})"
            )
        fn = SCALAR_FUNCTIONS[expr.name]
        arg_fns = [compile_expr(arg, scope, agg_slots) for arg in expr.args]
        return lambda row: fn(*[arg_fn(row) for arg_fn in arg_fns])

    if isinstance(expr, UnaryOp):
        operand = compile_expr(expr.operand, scope, agg_slots)
        if expr.op == "NOT":
            def _not(row: tuple) -> Any:
                value = operand(row)
                if value is None:
                    return None
                return not value

            return _not
        if expr.op == "-":
            rendered = expr.to_sql()

            def _neg(row: tuple) -> Any:
                value = operand(row)
                if value is None:
                    return None
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    raise SqlTypeError(f"cannot negate {value!r} in {rendered}")
                return -value

            return _neg
        raise SqlExecutionError(
            f"unknown unary operator {expr.op!r} in {expr.to_sql()}"
        )

    if isinstance(expr, BinaryOp):
        return _compile_binary(expr, scope, agg_slots)

    if isinstance(expr, Like):
        operand = compile_expr(expr.operand, scope, agg_slots)
        pattern_fn = compile_expr(expr.pattern, scope, agg_slots)
        negated = expr.negated

        def _like(row: tuple) -> Any:
            value = operand(row)
            pattern = pattern_fn(row)
            if value is None or pattern is None:
                return None
            matched = like_to_regex(str(pattern)).match(str(value)) is not None
            return (not matched) if negated else matched

        return _like

    if isinstance(expr, InList):
        operand = compile_expr(expr.operand, scope, agg_slots)
        item_fns = [compile_expr(item, scope, agg_slots) for item in expr.items]
        negated = expr.negated

        def _in(row: tuple) -> Any:
            value = operand(row)
            if value is None:
                return None
            saw_null = False
            for item_fn in item_fns:
                item = item_fn(row)
                equal = values_equal(value, item)
                if equal is None:
                    saw_null = True
                elif equal:
                    return not negated
            if saw_null:
                return None
            return negated

        return _in

    if isinstance(expr, Between):
        operand = compile_expr(expr.operand, scope, agg_slots)
        low_fn = compile_expr(expr.low, scope, agg_slots)
        high_fn = compile_expr(expr.high, scope, agg_slots)
        negated = expr.negated

        def _between(row: tuple) -> Any:
            value = operand(row)
            low = low_fn(row)
            high = high_fn(row)
            cmp_low = compare_values(value, low)
            cmp_high = compare_values(value, high)
            if cmp_low is None or cmp_high is None:
                return None
            inside = cmp_low >= 0 and cmp_high <= 0
            return (not inside) if negated else inside

        return _between

    if isinstance(expr, IsNull):
        operand = compile_expr(expr.operand, scope, agg_slots)
        negated = expr.negated

        def _is_null(row: tuple) -> bool:
            value = operand(row)
            return (value is not None) if negated else (value is None)

        return _is_null

    if isinstance(expr, CaseWhen):
        branch_fns = [
            (compile_expr(condition, scope, agg_slots),
             compile_expr(value, scope, agg_slots))
            for condition, value in expr.branches
        ]
        default_fn = (
            compile_expr(expr.default, scope, agg_slots)
            if expr.default is not None
            else None
        )

        def _case(row: tuple) -> Any:
            for condition_fn, value_fn in branch_fns:
                if condition_fn(row) is True:
                    return value_fn(row)
            if default_fn is not None:
                return default_fn(row)
            return None

        return _case

    raise SqlExecutionError(f"cannot compile expression: {expr!r}")


def _compile_binary(
    expr: BinaryOp, scope: Scope, agg_slots: "dict[FuncCall, int] | None"
) -> RowFn:
    left = compile_expr(expr.left, scope, agg_slots)
    right = compile_expr(expr.right, scope, agg_slots)
    op = expr.op

    if op == "AND":
        def _and(row: tuple) -> Any:
            lhs = left(row)
            if lhs is False:
                return False
            rhs = right(row)
            if rhs is False:
                return False
            if lhs is None or rhs is None:
                return None
            return True

        return _and

    if op == "OR":
        def _or(row: tuple) -> Any:
            lhs = left(row)
            if lhs is True:
                return True
            rhs = right(row)
            if rhs is True:
                return True
            if lhs is None or rhs is None:
                return None
            return False

        return _or

    if op in ("=", "<>", "<", "<=", ">", ">="):
        def _compare(row: tuple) -> Any:
            result = compare_values(left(row), right(row))
            if result is None:
                return None
            if op == "=":
                return result == 0
            if op == "<>":
                return result != 0
            if op == "<":
                return result < 0
            if op == "<=":
                return result <= 0
            if op == ">":
                return result > 0
            return result >= 0

        return _compare

    if op in ("+", "-", "*", "/"):
        rendered = expr.to_sql()

        def _arith(row: tuple) -> Any:
            lhs = left(row)
            rhs = right(row)
            if lhs is None or rhs is None:
                return None
            if not isinstance(lhs, (int, float)) or isinstance(lhs, bool):
                raise SqlTypeError(
                    f"arithmetic on non-number {lhs!r} in {rendered}"
                )
            if not isinstance(rhs, (int, float)) or isinstance(rhs, bool):
                raise SqlTypeError(
                    f"arithmetic on non-number {rhs!r} in {rendered}"
                )
            if op == "+":
                return lhs + rhs
            if op == "-":
                return lhs - rhs
            if op == "*":
                return lhs * rhs
            if rhs == 0:
                raise SqlExecutionError(f"division by zero in {rendered}")
            return lhs / rhs

        return _arith

    if op == "||":
        def _concat(row: tuple) -> Any:
            lhs = left(row)
            rhs = right(row)
            if lhs is None or rhs is None:
                return None
            return str(lhs) + str(rhs)

        return _concat

    raise SqlExecutionError(
        f"unknown binary operator {op!r} in {expr.to_sql()}"
    )


def split_conjuncts(expr: Expr | None) -> list[Expr]:
    """Split an expression on top-level ANDs.

    >>> from repro.sqlengine.parser import parse_select
    >>> stmt = parse_select("SELECT * FROM t WHERE a = 1 AND b = 2")
    >>> len(split_conjuncts(stmt.where))
    2
    """
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]
