"""Tokenizer for the SQL subset understood by the engine."""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.errors import SqlSyntaxError


class TokenType(enum.Enum):
    KEYWORD = "KEYWORD"
    IDENTIFIER = "IDENTIFIER"
    NUMBER = "NUMBER"
    STRING = "STRING"
    OPERATOR = "OPERATOR"
    PUNCT = "PUNCT"
    EOF = "EOF"


KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING",
    "ORDER", "ASC", "DESC", "LIMIT", "OFFSET", "AS", "AND", "OR", "NOT",
    "LIKE", "IN", "BETWEEN", "IS", "NULL", "TRUE", "FALSE", "JOIN",
    "INNER", "LEFT", "RIGHT", "OUTER", "ON", "CREATE", "TABLE", "PRIMARY",
    "FOREIGN", "KEY", "REFERENCES", "INSERT", "INTO", "VALUES", "UNION",
    "ALL", "CASE", "WHEN", "THEN", "ELSE", "END", "DATE", "UPDATE",
    "SET", "DELETE", "BEGIN", "COMMIT", "ROLLBACK", "TRANSACTION",
    "RETURNING", "CHECKPOINT",
}


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def matches(self, token_type: TokenType, value: str | None = None) -> bool:
        if self.type is not token_type:
            return False
        return value is None or self.value == value


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+) |
    (?P<comment>--[^\n]*) |
    (?P<number>\d+\.\d+|\d+) |
    (?P<string>'(?:[^']|'')*') |
    (?P<operator><>|!=|<=|>=|=|<|>|\|\|) |
    (?P<identifier>[A-Za-z_][A-Za-z0-9_$]*) |
    (?P<punct>[(),.;*+\-/])
    """,
    re.VERBOSE,
)


def tokenize(sql: str) -> list[Token]:
    """Tokenize a SQL string; raises SqlSyntaxError on unknown input.

    >>> [t.value for t in tokenize('SELECT 1')[:-1]]
    ['SELECT', '1']
    """
    tokens: list[Token] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            raise SqlSyntaxError(
                f"unexpected character at offset {pos}: {sql[pos:pos + 15]!r}"
            )
        kind = match.lastgroup or ""
        text = match.group()
        if kind == "number":
            tokens.append(Token(TokenType.NUMBER, text, pos))
        elif kind == "string":
            tokens.append(Token(TokenType.STRING, text[1:-1].replace("''", "'"), pos))
        elif kind == "operator":
            normal = "<>" if text == "!=" else text
            tokens.append(Token(TokenType.OPERATOR, normal, pos))
        elif kind == "identifier":
            upper = text.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, pos))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, text.lower(), pos))
        elif kind == "punct":
            tokens.append(Token(TokenType.PUNCT, text, pos))
        pos = match.end()
    tokens.append(Token(TokenType.EOF, "", len(sql)))
    return tokens
