"""Recursive-descent parser for the SQL subset.

Supported statements: ``SELECT`` (comma joins and explicit ``JOIN .. ON``,
WHERE / GROUP BY / HAVING / ORDER BY / LIMIT, DISTINCT), ``CREATE TABLE``,
``INSERT INTO .. VALUES``, ``UPDATE .. SET .. [WHERE]`` and ``DELETE FROM
.. [WHERE]`` (both with an optional ``RETURNING`` tail), plus the
transaction-control statements ``BEGIN [TRANSACTION]`` / ``COMMIT`` /
``ROLLBACK`` and ``CHECKPOINT``.  This covers everything SODA generates
(Queries 1-4 in the paper), what the gold-standard statements need, and
the corrections / retractions a long-lived warehouse service receives.
"""

from __future__ import annotations

import datetime
from typing import Any

from repro.errors import SqlSyntaxError
from repro.sqlengine.ast_nodes import (
    Assignment,
    Begin,
    Between,
    BinaryOp,
    CaseWhen,
    Checkpoint,
    ColumnDef,
    ColumnRef,
    Commit,
    CreateTable,
    Delete,
    Expr,
    ForeignKeyDef,
    FuncCall,
    InList,
    Insert,
    IsNull,
    Join,
    Like,
    Literal,
    OrderItem,
    Rollback,
    Select,
    SelectItem,
    TableRef,
    UnaryOp,
    Union,
    Update,
)
from repro.sqlengine.lexer import Token, TokenType, tokenize
from repro.sqlengine.types import SqlType, parse_date

_COMPARISONS = {"=", "<>", "<", "<=", ">", ">="}


class Parser:
    """Parses a token stream into a statement AST."""

    def __init__(self, sql: str) -> None:
        self._sql = sql
        self._tokens = tokenize(sql)
        self._index = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------
    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        self._index += 1
        return token

    def _check(self, token_type: TokenType, value: str | None = None) -> bool:
        return self._current.matches(token_type, value)

    def _accept(self, token_type: TokenType, value: str | None = None) -> Token | None:
        if self._check(token_type, value):
            return self._advance()
        return None

    def _expect(self, token_type: TokenType, value: str | None = None) -> Token:
        if not self._check(token_type, value):
            expected = value or token_type.value
            raise SqlSyntaxError(
                f"expected {expected!r} at offset {self._current.position}, "
                f"got {self._current.value!r} in: {self._sql[:120]}"
            )
        return self._advance()

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def parse_statement(
        self,
    ) -> "Select | Union | CreateTable | Insert | Update | Delete":
        if self._check(TokenType.KEYWORD, "SELECT"):
            statement = self._parse_select_or_union()
        elif self._check(TokenType.KEYWORD, "CREATE"):
            statement = self._parse_create_table()
        elif self._check(TokenType.KEYWORD, "INSERT"):
            statement = self._parse_insert()
        elif self._check(TokenType.KEYWORD, "UPDATE"):
            statement = self._parse_update()
        elif self._check(TokenType.KEYWORD, "DELETE"):
            statement = self._parse_delete()
        elif self._accept(TokenType.KEYWORD, "BEGIN"):
            self._accept(TokenType.KEYWORD, "TRANSACTION")
            statement = Begin()
        elif self._accept(TokenType.KEYWORD, "COMMIT"):
            self._accept(TokenType.KEYWORD, "TRANSACTION")
            statement = Commit()
        elif self._accept(TokenType.KEYWORD, "ROLLBACK"):
            self._accept(TokenType.KEYWORD, "TRANSACTION")
            statement = Rollback()
        elif self._accept(TokenType.KEYWORD, "CHECKPOINT"):
            statement = Checkpoint()
        else:
            raise SqlSyntaxError(f"unsupported statement: {self._sql[:60]!r}")
        self._accept(TokenType.PUNCT, ";")
        self._expect(TokenType.EOF)
        return statement

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------
    def _parse_select_or_union(self) -> "Select | Union":
        first = self.parse_select()
        if not self._check(TokenType.KEYWORD, "UNION"):
            return first
        selects = [first]
        union_all: bool | None = None
        while self._accept(TokenType.KEYWORD, "UNION"):
            branch_all = self._accept(TokenType.KEYWORD, "ALL") is not None
            if union_all is None:
                union_all = branch_all
            elif union_all != branch_all:
                raise SqlSyntaxError(
                    "mixing UNION and UNION ALL is not supported"
                )
            selects.append(self.parse_select())
        return Union(selects=tuple(selects), all=bool(union_all))

    def parse_select(self) -> Select:
        self._expect(TokenType.KEYWORD, "SELECT")
        distinct = self._accept(TokenType.KEYWORD, "DISTINCT") is not None
        items = [self._parse_select_item()]
        while self._accept(TokenType.PUNCT, ","):
            items.append(self._parse_select_item())

        self._expect(TokenType.KEYWORD, "FROM")
        tables = [self._parse_table_ref()]
        joins: list[Join] = []
        while True:
            if self._accept(TokenType.PUNCT, ","):
                tables.append(self._parse_table_ref())
                continue
            join = self._parse_join_clause()
            if join is None:
                break
            joins.append(join)

        where = None
        if self._accept(TokenType.KEYWORD, "WHERE"):
            where = self._parse_expr()

        group_by: list[Expr] = []
        if self._accept(TokenType.KEYWORD, "GROUP"):
            self._expect(TokenType.KEYWORD, "BY")
            group_by.append(self._parse_expr())
            while self._accept(TokenType.PUNCT, ","):
                group_by.append(self._parse_expr())

        having = None
        if self._accept(TokenType.KEYWORD, "HAVING"):
            having = self._parse_expr()

        order_by: list[OrderItem] = []
        if self._accept(TokenType.KEYWORD, "ORDER"):
            self._expect(TokenType.KEYWORD, "BY")
            order_by.append(self._parse_order_item())
            while self._accept(TokenType.PUNCT, ","):
                order_by.append(self._parse_order_item())

        limit = None
        if self._accept(TokenType.KEYWORD, "LIMIT"):
            token = self._expect(TokenType.NUMBER)
            limit = int(token.value)

        return Select(
            items=tuple(items),
            tables=tuple(tables),
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
        )

    def _parse_select_item(self) -> SelectItem:
        if self._accept(TokenType.PUNCT, "*"):
            return SelectItem(expr=None)
        # "table.*"
        if (
            self._check(TokenType.IDENTIFIER)
            and self._tokens[self._index + 1].matches(TokenType.PUNCT, ".")
            and self._tokens[self._index + 2].matches(TokenType.PUNCT, "*")
        ):
            table = self._advance().value
            self._advance()  # '.'
            self._advance()  # '*'
            return SelectItem(expr=None, star_table=table)
        expr = self._parse_expr()
        alias = None
        if self._accept(TokenType.KEYWORD, "AS"):
            alias = self._expect(TokenType.IDENTIFIER).value
        elif self._check(TokenType.IDENTIFIER):
            alias = self._advance().value
        return SelectItem(expr=expr, alias=alias)

    def _parse_table_ref(self) -> TableRef:
        name = self._expect(TokenType.IDENTIFIER).value
        alias = None
        if self._accept(TokenType.KEYWORD, "AS"):
            alias = self._expect(TokenType.IDENTIFIER).value
        elif self._check(TokenType.IDENTIFIER):
            alias = self._advance().value
        return TableRef(name=name, alias=alias)

    def _parse_join_clause(self) -> Join | None:
        kind = "INNER"
        start = self._index
        if self._accept(TokenType.KEYWORD, "INNER"):
            kind = "INNER"
        elif self._accept(TokenType.KEYWORD, "LEFT"):
            kind = "LEFT"
            self._accept(TokenType.KEYWORD, "OUTER")
        if not self._accept(TokenType.KEYWORD, "JOIN"):
            self._index = start
            return None
        table = self._parse_table_ref()
        self._expect(TokenType.KEYWORD, "ON")
        condition = self._parse_expr()
        return Join(table=table, condition=condition, kind=kind)

    def _parse_order_item(self) -> OrderItem:
        expr = self._parse_expr()
        descending = False
        if self._accept(TokenType.KEYWORD, "DESC"):
            descending = True
        else:
            self._accept(TokenType.KEYWORD, "ASC")
        return OrderItem(expr=expr, descending=descending)

    # ------------------------------------------------------------------
    # expressions (precedence climbing)
    # ------------------------------------------------------------------
    def _parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._accept(TokenType.KEYWORD, "OR"):
            right = self._parse_and()
            left = BinaryOp("OR", left, right)
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self._accept(TokenType.KEYWORD, "AND"):
            right = self._parse_not()
            left = BinaryOp("AND", left, right)
        return left

    def _parse_not(self) -> Expr:
        if self._accept(TokenType.KEYWORD, "NOT"):
            return UnaryOp("NOT", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expr:
        left = self._parse_additive()
        if self._check(TokenType.OPERATOR) and self._current.value in _COMPARISONS:
            op = self._advance().value
            right = self._parse_additive()
            return BinaryOp(op, left, right)
        negated = False
        if self._check(TokenType.KEYWORD, "NOT"):
            upcoming = self._tokens[self._index + 1]
            if upcoming.type is TokenType.KEYWORD and upcoming.value in (
                "LIKE",
                "IN",
                "BETWEEN",
            ):
                self._advance()
                negated = True
        if self._accept(TokenType.KEYWORD, "LIKE"):
            pattern = self._parse_additive()
            return Like(left, pattern, negated=negated)
        if self._accept(TokenType.KEYWORD, "IN"):
            self._expect(TokenType.PUNCT, "(")
            items = [self._parse_expr()]
            while self._accept(TokenType.PUNCT, ","):
                items.append(self._parse_expr())
            self._expect(TokenType.PUNCT, ")")
            return InList(left, tuple(items), negated=negated)
        if self._accept(TokenType.KEYWORD, "BETWEEN"):
            low = self._parse_additive()
            self._expect(TokenType.KEYWORD, "AND")
            high = self._parse_additive()
            return Between(left, low, high, negated=negated)
        if self._accept(TokenType.KEYWORD, "IS"):
            is_negated = self._accept(TokenType.KEYWORD, "NOT") is not None
            self._expect(TokenType.KEYWORD, "NULL")
            return IsNull(left, negated=is_negated)
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            if self._accept(TokenType.PUNCT, "+"):
                left = BinaryOp("+", left, self._parse_multiplicative())
            elif self._accept(TokenType.PUNCT, "-"):
                left = BinaryOp("-", left, self._parse_multiplicative())
            elif self._accept(TokenType.OPERATOR, "||"):
                left = BinaryOp("||", left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while True:
            if self._accept(TokenType.PUNCT, "*"):
                left = BinaryOp("*", left, self._parse_unary())
            elif self._accept(TokenType.PUNCT, "/"):
                left = BinaryOp("/", left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expr:
        if self._accept(TokenType.PUNCT, "-"):
            return UnaryOp("-", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._current
        if token.type is TokenType.NUMBER:
            self._advance()
            if "." in token.value:
                return Literal(float(token.value))
            return Literal(int(token.value))
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value)
        if token.matches(TokenType.KEYWORD, "NULL"):
            self._advance()
            return Literal(None)
        if token.matches(TokenType.KEYWORD, "TRUE"):
            self._advance()
            return Literal(True)
        if token.matches(TokenType.KEYWORD, "FALSE"):
            self._advance()
            return Literal(False)
        if token.matches(TokenType.KEYWORD, "DATE"):
            # DATE '2010-01-01' literal
            self._advance()
            value = self._expect(TokenType.STRING).value
            return Literal(parse_date(value))
        if token.matches(TokenType.KEYWORD, "CASE"):
            return self._parse_case()
        if token.matches(TokenType.PUNCT, "("):
            self._advance()
            expr = self._parse_expr()
            self._expect(TokenType.PUNCT, ")")
            return expr
        if token.type is TokenType.IDENTIFIER:
            return self._parse_identifier_expr()
        raise SqlSyntaxError(
            f"unexpected token {token.value!r} at offset {token.position}"
        )

    def _parse_case(self) -> Expr:
        self._expect(TokenType.KEYWORD, "CASE")
        branches: list = []
        while self._accept(TokenType.KEYWORD, "WHEN"):
            condition = self._parse_expr()
            self._expect(TokenType.KEYWORD, "THEN")
            value = self._parse_expr()
            branches.append((condition, value))
        if not branches:
            raise SqlSyntaxError("CASE requires at least one WHEN branch")
        default = None
        if self._accept(TokenType.KEYWORD, "ELSE"):
            default = self._parse_expr()
        self._expect(TokenType.KEYWORD, "END")
        return CaseWhen(branches=tuple(branches), default=default)

    def _parse_identifier_expr(self) -> Expr:
        name = self._advance().value
        if self._accept(TokenType.PUNCT, "("):
            if self._accept(TokenType.PUNCT, "*"):
                self._expect(TokenType.PUNCT, ")")
                return FuncCall(name=name, star=True)
            if self._accept(TokenType.PUNCT, ")"):
                # count() in the paper's Q9.0 means count(*)
                return FuncCall(name=name, star=True)
            distinct = self._accept(TokenType.KEYWORD, "DISTINCT") is not None
            args = [self._parse_expr()]
            while self._accept(TokenType.PUNCT, ","):
                args.append(self._parse_expr())
            self._expect(TokenType.PUNCT, ")")
            return FuncCall(name=name, args=tuple(args), distinct=distinct)
        if self._accept(TokenType.PUNCT, "."):
            column = self._expect(TokenType.IDENTIFIER).value
            return ColumnRef(table=name, column=column)
        return ColumnRef(table=None, column=name)

    # ------------------------------------------------------------------
    # CREATE TABLE
    # ------------------------------------------------------------------
    def _parse_create_table(self) -> CreateTable:
        self._expect(TokenType.KEYWORD, "CREATE")
        self._expect(TokenType.KEYWORD, "TABLE")
        name = self._expect(TokenType.IDENTIFIER).value
        self._expect(TokenType.PUNCT, "(")
        columns: list[ColumnDef] = []
        foreign_keys: list[ForeignKeyDef] = []
        primary_names: list[str] = []
        while True:
            if self._accept(TokenType.KEYWORD, "PRIMARY"):
                self._expect(TokenType.KEYWORD, "KEY")
                self._expect(TokenType.PUNCT, "(")
                primary_names.append(self._expect(TokenType.IDENTIFIER).value)
                while self._accept(TokenType.PUNCT, ","):
                    primary_names.append(self._expect(TokenType.IDENTIFIER).value)
                self._expect(TokenType.PUNCT, ")")
            elif self._accept(TokenType.KEYWORD, "FOREIGN"):
                self._expect(TokenType.KEYWORD, "KEY")
                self._expect(TokenType.PUNCT, "(")
                local = [self._expect(TokenType.IDENTIFIER).value]
                while self._accept(TokenType.PUNCT, ","):
                    local.append(self._expect(TokenType.IDENTIFIER).value)
                self._expect(TokenType.PUNCT, ")")
                self._expect(TokenType.KEYWORD, "REFERENCES")
                ref_table = self._expect(TokenType.IDENTIFIER).value
                self._expect(TokenType.PUNCT, "(")
                remote = [self._expect(TokenType.IDENTIFIER).value]
                while self._accept(TokenType.PUNCT, ","):
                    remote.append(self._expect(TokenType.IDENTIFIER).value)
                self._expect(TokenType.PUNCT, ")")
                foreign_keys.append(
                    ForeignKeyDef(tuple(local), ref_table, tuple(remote))
                )
            else:
                col_name = self._expect(TokenType.IDENTIFIER).value
                type_token = self._advance()
                if type_token.type not in (TokenType.IDENTIFIER, TokenType.KEYWORD):
                    raise SqlSyntaxError(
                        f"expected type name after column {col_name!r}"
                    )
                sql_type = SqlType.from_name(type_token.value)
                is_primary = False
                if self._accept(TokenType.KEYWORD, "PRIMARY"):
                    self._expect(TokenType.KEYWORD, "KEY")
                    is_primary = True
                columns.append(ColumnDef(col_name, sql_type, is_primary))
            if not self._accept(TokenType.PUNCT, ","):
                break
        self._expect(TokenType.PUNCT, ")")
        if primary_names:
            columns = [
                ColumnDef(c.name, c.sql_type, c.primary_key or c.name in primary_names)
                for c in columns
            ]
        return CreateTable(
            name=name, columns=tuple(columns), foreign_keys=tuple(foreign_keys)
        )

    # ------------------------------------------------------------------
    # INSERT
    # ------------------------------------------------------------------
    def _parse_insert(self) -> Insert:
        self._expect(TokenType.KEYWORD, "INSERT")
        self._expect(TokenType.KEYWORD, "INTO")
        table = self._expect(TokenType.IDENTIFIER).value
        columns: list[str] = []
        if self._accept(TokenType.PUNCT, "("):
            columns.append(self._expect(TokenType.IDENTIFIER).value)
            while self._accept(TokenType.PUNCT, ","):
                columns.append(self._expect(TokenType.IDENTIFIER).value)
            self._expect(TokenType.PUNCT, ")")
        self._expect(TokenType.KEYWORD, "VALUES")
        rows: list[tuple] = []
        while True:
            self._expect(TokenType.PUNCT, "(")
            values = [self._parse_literal_value()]
            while self._accept(TokenType.PUNCT, ","):
                values.append(self._parse_literal_value())
            self._expect(TokenType.PUNCT, ")")
            rows.append(tuple(values))
            if not self._accept(TokenType.PUNCT, ","):
                break
        returning = self._parse_returning()
        return Insert(
            table=table,
            columns=tuple(columns),
            rows=tuple(rows),
            returning=returning,
        )

    def _parse_returning(self) -> tuple:
        """The optional ``RETURNING item [, ...]`` tail of a DML statement."""
        if not self._accept(TokenType.KEYWORD, "RETURNING"):
            return ()
        items = [self._parse_select_item()]
        while self._accept(TokenType.PUNCT, ","):
            items.append(self._parse_select_item())
        return tuple(items)

    # ------------------------------------------------------------------
    # UPDATE / DELETE
    # ------------------------------------------------------------------
    def _parse_update(self) -> Update:
        self._expect(TokenType.KEYWORD, "UPDATE")
        table = self._expect(TokenType.IDENTIFIER).value
        self._expect(TokenType.KEYWORD, "SET")
        assignments = [self._parse_assignment()]
        while self._accept(TokenType.PUNCT, ","):
            assignments.append(self._parse_assignment())
        where = None
        if self._accept(TokenType.KEYWORD, "WHERE"):
            where = self._parse_expr()
        returning = self._parse_returning()
        return Update(
            table=table,
            assignments=tuple(assignments),
            where=where,
            returning=returning,
        )

    def _parse_assignment(self) -> Assignment:
        column = self._expect(TokenType.IDENTIFIER).value
        self._expect(TokenType.OPERATOR, "=")
        return Assignment(column=column, value=self._parse_expr())

    def _parse_delete(self) -> Delete:
        self._expect(TokenType.KEYWORD, "DELETE")
        self._expect(TokenType.KEYWORD, "FROM")
        table = self._expect(TokenType.IDENTIFIER).value
        where = None
        if self._accept(TokenType.KEYWORD, "WHERE"):
            where = self._parse_expr()
        returning = self._parse_returning()
        return Delete(table=table, where=where, returning=returning)

    def _parse_literal_value(self) -> Any:
        expr = self._parse_expr()
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, UnaryOp) and expr.op == "-":
            inner = expr.operand
            if isinstance(inner, Literal) and isinstance(inner.value, (int, float)):
                return -inner.value
        raise SqlSyntaxError("INSERT values must be literals")


def parse_sql(sql: str) -> "Select | CreateTable | Insert | Update | Delete":
    """Parse a single SQL statement.

    >>> stmt = parse_sql("SELECT * FROM parties")
    >>> stmt.tables[0].name
    'parties'
    """
    return Parser(sql).parse_statement()


def parse_select(sql: str) -> Select:
    """Parse a statement and require it to be a SELECT."""
    statement = parse_sql(sql)
    if not isinstance(statement, Select):
        raise SqlSyntaxError(f"expected a SELECT statement: {sql[:60]!r}")
    return statement
