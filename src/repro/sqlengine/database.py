"""The `Database` facade: parse + execute SQL against an in-memory catalog.

This plays the role of the Oracle/MySQL/Derby backends in the paper: SODA
generates SQL text, and this engine executes it so that result snippets
and precision/recall can be computed.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.errors import SqlError
from repro.sqlengine.ast_nodes import (
    CreateTable,
    Delete,
    Insert,
    Select,
    Union,
    Update,
)
from repro.sqlengine.catalog import Catalog, Column, ForeignKey, Table
from repro.sqlengine.dml import execute_delete, execute_update
from repro.sqlengine.executor import ResultSet, execute_union
from repro.sqlengine.parser import parse_sql
from repro.sqlengine.planner import (
    DEFAULT_EXECUTION_MODE,
    DEFAULT_PLAN_CACHE_SIZE,
    QueryPlanner,
)
from repro.sqlengine.types import SqlType


class Database:
    """An in-memory relational database.

    SELECT statements run through a cost-aware :class:`QueryPlanner`
    whose LRU plan cache (``plan_cache_size`` prepared plans, keyed by
    normalized SQL + catalog fingerprint) lets repeated statements skip
    re-planning entirely.  Plans compile to the vectorized batch engine
    by default; ``execution_mode="row"`` selects the row-at-a-time
    volcano engine instead (byte-identical results, useful for
    debugging and as the vectorization benchmark baseline).
    ``dict_encoding_threshold`` tunes dictionary encoding of
    low-cardinality TEXT columns (None = the
    :data:`~repro.sqlengine.encoding.DICT_ENCODING_MAX_DISTINCT`
    default, 0 disables it; results are identical either way).

    Three further performance knobs, each locked to byte-identical
    results by construction: ``fused`` (default True) compiles batch
    filter/project expression chains into one generated function per
    batch; ``parallel_workers`` (default 1 = serial) runs eligible
    scan pipelines morsel-parallel on that many threads; and
    ``array_store`` (default False) backs INTEGER/REAL columns with
    typed ``array.array`` buffers instead of Python object lists.

    >>> db = Database()
    >>> _ = db.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)")
    >>> _ = db.execute("INSERT INTO t VALUES (1, 'alpha'), (2, 'beta')")
    >>> db.execute("SELECT name FROM t WHERE id = 2").rows
    [('beta',)]
    """

    def __init__(
        self,
        plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
        execution_mode: str = DEFAULT_EXECUTION_MODE,
        dict_encoding_threshold: "int | None" = None,
        fused: bool = True,
        parallel_workers: int = 1,
        array_store: bool = False,
    ) -> None:
        self.catalog = Catalog(
            dict_encoding_threshold=dict_encoding_threshold,
            array_store=array_store,
        )
        self.planner = QueryPlanner(
            self.catalog,
            cache_size=plan_cache_size,
            execution_mode=execution_mode,
            fused=fused,
            parallel_workers=parallel_workers,
        )

    @property
    def execution_mode(self) -> str:
        """Which engine SELECTs compile to: ``"batch"`` or ``"row"``."""
        return self.planner.execution_mode

    def set_execution_mode(self, mode: str) -> None:
        """Switch engines; cached plans for the old mode are dropped."""
        self.planner.set_execution_mode(mode)

    @property
    def fused(self) -> bool:
        """Whether batch plans compile fused expression functions."""
        return self.planner.fused

    def set_fused(self, fused: bool) -> None:
        """Toggle fused expression codegen; drops cached plans."""
        self.planner.set_fused(fused)

    @property
    def parallel_workers(self) -> int:
        """Morsel worker count for eligible batch pipelines (1 = serial)."""
        return self.planner.parallel_workers

    def set_parallel_workers(self, workers: int) -> None:
        """Set the morsel worker count; drops cached plans."""
        self.planner.set_parallel_workers(workers)

    @property
    def array_store(self) -> bool:
        """Whether new tables back INTEGER/REAL columns with typed arrays."""
        return self.catalog.array_store

    # ------------------------------------------------------------------
    # SQL entry point
    # ------------------------------------------------------------------
    def execute(self, sql: str) -> ResultSet:
        """Parse and execute one SQL statement.

        DDL statements return an empty ResultSet; DML statements return
        an empty ResultSet whose ``rowcount`` is the number of rows
        inserted/updated/deleted.

        >>> db = Database()
        >>> _ = db.execute("CREATE TABLE t (id INT, name TEXT)")
        >>> _ = db.execute("INSERT INTO t VALUES (1, 'alpha'), (2, 'beta')")
        >>> db.execute("UPDATE t SET name = 'gamma' WHERE id = 2").rowcount
        1
        >>> db.execute("DELETE FROM t WHERE id = 1").rowcount
        1
        >>> db.execute("SELECT name FROM t").rows
        [('gamma',)]
        """
        statement = parse_sql(sql)
        if isinstance(statement, Select):
            return self.planner.execute(statement)
        if isinstance(statement, Union):
            return execute_union(self.catalog, statement, self.planner)
        if isinstance(statement, CreateTable):
            columns = [
                Column(c.name, c.sql_type, c.primary_key) for c in statement.columns
            ]
            foreign_keys = [
                ForeignKey(fk.columns, fk.ref_table, fk.ref_columns)
                for fk in statement.foreign_keys
            ]
            self.catalog.create_table(statement.name, columns, foreign_keys)
            return ResultSet(columns=[], rows=[])
        if isinstance(statement, Insert):
            table = self.catalog.table(statement.table)
            if statement.columns:
                for row in statement.rows:
                    if len(row) != len(statement.columns):
                        raise SqlError(
                            f"INSERT arity mismatch for table {statement.table!r}"
                        )
                    table.insert_named(**dict(zip(statement.columns, row)))
            else:
                table.insert_many(statement.rows)
            return ResultSet(columns=[], rows=[], rowcount=len(statement.rows))
        if isinstance(statement, Update):
            changed = execute_update(
                self.catalog, statement, mode=self.execution_mode
            )
            return ResultSet(columns=[], rows=[], rowcount=changed)
        if isinstance(statement, Delete):
            removed = execute_delete(
                self.catalog, statement, mode=self.execution_mode
            )
            return ResultSet(columns=[], rows=[], rowcount=removed)
        raise SqlError(f"unsupported statement type: {type(statement).__name__}")

    def execute_select_ast(self, select: Select) -> ResultSet:
        """Execute an already-parsed SELECT (used by SODA internals)."""
        return self.planner.execute(select)

    def explain(self, sql: str, analyze: bool = False) -> str:
        """The optimized plan of a SELECT, as a deterministic text tree.

        With ``analyze=True`` the query is *executed* through
        instrumented operators and every plan line gains the actual
        rows (and batches, in batch mode) it produced plus its
        self-time, right next to the optimizer's ``[~N rows]``
        estimate.

        >>> db = Database()
        >>> _ = db.execute("CREATE TABLE t (id INT)")
        >>> print(db.explain("SELECT * FROM t WHERE id = 1"))
        project * [batch]
        └─ scan t as t (0 rows) filter: (id = 1) [~0 rows] [batch]
        """
        statement = parse_sql(sql)
        if isinstance(statement, Select):
            return self.planner.explain(statement, analyze=analyze)
        if isinstance(statement, Union):
            branches = [
                self.planner.explain(select, analyze=analyze)
                for select in statement.selects
            ]
            keyword = "union all" if statement.all else "union"
            return f"\n{keyword}\n".join(branches)
        raise SqlError("EXPLAIN supports SELECT statements only")

    def explain_select_ast(self, select: Select, analyze: bool = False) -> str:
        """Explain an already-parsed SELECT (used by SODA internals)."""
        return self.planner.explain(select, analyze=analyze)

    def metrics(self) -> dict:
        """A snapshot of the process-wide metrics registry.

        Point-in-time gauges owned by this database (plan-cache entry
        count) are refreshed here, at dump time, so several databases in
        one process don't fight over them between snapshots.
        """
        from repro.obs.metrics import registry

        reg = registry()
        reg.gauge("plan_cache.entries").set(len(self.planner.cache))
        reg.gauge("plan_cache.capacity").set(self.planner.cache.capacity)
        return reg.to_dict()

    # ------------------------------------------------------------------
    # programmatic schema/data API (used by the warehouse generators)
    # ------------------------------------------------------------------
    def create_table(
        self,
        name: str,
        columns: Sequence[tuple],
        primary_key: Sequence[str] = (),
        foreign_keys: Iterable[tuple] = (),
    ) -> Table:
        """Create a table from ``(name, type_name)`` column specs.

        *foreign_keys* entries are ``(local_cols, ref_table, ref_cols)``.
        """
        pk = set(primary_key)
        column_objects = [
            Column(col_name, SqlType.from_name(type_name), col_name in pk)
            for col_name, type_name in columns
        ]
        fk_objects = [
            ForeignKey(tuple(local), ref_table, tuple(remote))
            for local, ref_table, remote in foreign_keys
        ]
        return self.catalog.create_table(name, column_objects, fk_objects)

    def insert_rows(self, table_name: str, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk-insert positional rows; returns the number inserted."""
        table = self.catalog.table(table_name)
        count = 0
        for row in rows:
            table.insert(row)
            count += 1
        return count

    def table(self, name: str) -> Table:
        return self.catalog.table(name)

    def table_names(self) -> list[str]:
        return self.catalog.table_names()

    def row_count(self, table_name: str) -> int:
        return len(self.catalog.table(table_name))
