"""The `Database` facade: parse + execute SQL against an in-memory catalog.

This plays the role of the Oracle/MySQL/Derby backends in the paper: SODA
generates SQL text, and this engine executes it so that result snippets
and precision/recall can be computed.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Any, Iterable, Sequence

from repro.errors import SqlError, SqlExecutionError, TransactionError
from repro.resilience.deadline import (
    Deadline,
    current_deadline,
    deadline_scope,
)
from repro.sqlengine.ast_nodes import (
    Begin,
    Checkpoint,
    Commit,
    CreateTable,
    Delete,
    Insert,
    Rollback,
    Select,
    Union,
    Update,
)
from repro.sqlengine.catalog import Catalog, Column, ForeignKey, Table
from repro.sqlengine.config import EngineConfig
from repro.sqlengine.dml import (
    evaluate_returning,
    execute_delete,
    execute_update,
)
from repro.sqlengine.executor import ResultSet, execute_union
from repro.sqlengine.parser import parse_sql
from repro.sqlengine.planner import QueryPlanner
from repro.sqlengine.txn import DurabilityManager, TransactionManager
from repro.sqlengine.types import SqlType

#: marks a legacy engine kwarg the caller did not pass (None is a real
#: value for dict_encoding_threshold, so a sentinel is needed)
_UNSET = object()


class Database:
    """An in-memory relational database.

    SELECT statements run through a cost-aware :class:`QueryPlanner`
    whose LRU plan cache (``plan_cache_size`` prepared plans, keyed by
    normalized SQL + catalog fingerprint) lets repeated statements skip
    re-planning entirely.  Plans compile to the vectorized batch engine
    by default; ``execution_mode="row"`` selects the row-at-a-time
    volcano engine instead (byte-identical results, useful for
    debugging and as the vectorization benchmark baseline).
    ``dict_encoding_threshold`` tunes dictionary encoding of
    low-cardinality TEXT columns (None = the
    :data:`~repro.sqlengine.encoding.DICT_ENCODING_MAX_DISTINCT`
    default, 0 disables it; results are identical either way).

    Three further performance knobs, each locked to byte-identical
    results by construction: ``fused`` (default True) compiles batch
    filter/project expression chains into one generated function per
    batch; ``parallel_workers`` (default 1 = serial) runs eligible
    scan pipelines morsel-parallel on that many threads; and
    ``array_store`` (default False) backs INTEGER/REAL columns with
    typed ``array.array`` buffers instead of Python object lists.

    All engine knobs now live on one frozen
    :class:`~repro.sqlengine.config.EngineConfig` passed as
    ``Database(config=...)`` — including ``segment_rows``, which opts
    tables into frozen-segment + delta storage with snapshot-pinned
    reads (see :mod:`repro.sqlengine.segments`).  The historical
    individual keyword arguments still work but emit a
    ``DeprecationWarning`` and fold into the config;
    :attr:`Database.config` exposes the resolved settings.  The
    durability knobs (``data_dir``, ``wal_sync``,
    ``wal_storage_factory``) describe *where* the database lives rather
    than how the engine runs and stay ordinary keyword arguments.

    >>> db = Database()
    >>> _ = db.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)")
    >>> _ = db.execute("INSERT INTO t VALUES (1, 'alpha'), (2, 'beta')")
    >>> db.execute("SELECT name FROM t WHERE id = 2").rows
    [('beta',)]
    """

    def __init__(
        self,
        plan_cache_size: int = _UNSET,
        execution_mode: str = _UNSET,
        dict_encoding_threshold: "int | None" = _UNSET,
        fused: bool = _UNSET,
        parallel_workers: int = _UNSET,
        array_store: bool = _UNSET,
        data_dir: "str | None" = None,
        wal_sync: bool = True,
        wal_storage_factory=None,
        config: "EngineConfig | None" = None,
    ) -> None:
        legacy = {
            name: value
            for name, value in (
                ("plan_cache_size", plan_cache_size),
                ("execution_mode", execution_mode),
                ("dict_encoding_threshold", dict_encoding_threshold),
                ("fused", fused),
                ("parallel_workers", parallel_workers),
                ("array_store", array_store),
            )
            if value is not _UNSET
        }
        if config is None:
            config = EngineConfig()
        if legacy:
            warnings.warn(
                f"Database({', '.join(sorted(legacy))}) keyword arguments "
                "are deprecated; pass Database(config=EngineConfig(...)) "
                "instead",
                DeprecationWarning,
                stacklevel=2,
            )
            config = dataclasses.replace(config, **legacy)
        self._config = config
        self.catalog = Catalog(
            dict_encoding_threshold=config.dict_encoding_threshold,
            array_store=config.array_store,
            segment_rows=config.segment_rows,
        )
        self.planner = QueryPlanner(
            self.catalog,
            cache_size=config.plan_cache_size,
            execution_mode=config.execution_mode,
            fused=config.fused,
            parallel_workers=config.parallel_workers,
        )
        self.txn = TransactionManager(self.catalog)
        from repro.obs.metrics import registry

        reg = registry()
        self._metrics_registry = reg
        self._txn_begins = reg.counter("txn.begins")
        self._txn_commits = reg.counter("txn.commits")
        self._txn_rollbacks = reg.counter("txn.rollbacks")
        #: recovery summary dict when opened durably, else None
        self.recovery_info = None
        self.durability = None
        if data_dir is not None:
            self.durability = DurabilityManager(
                data_dir,
                wal_sync=wal_sync,
                storage_factory=wal_storage_factory,
            )
            self.recovery_info = self.durability.recover(self)

    def _durable(self) -> bool:
        """True when statements must be logged (not during replay)."""
        return self.durability is not None and not self.durability.replaying

    @property
    def config(self) -> EngineConfig:
        """The resolved engine settings, reflecting any runtime setter.

        ``execution_mode`` / ``fused`` / ``parallel_workers`` can change
        after construction via the setters below, so the returned config
        is rebuilt from the planner's live values on every read.
        """
        return dataclasses.replace(
            self._config,
            execution_mode=self.planner.execution_mode,
            fused=self.planner.fused,
            parallel_workers=self.planner.parallel_workers,
        )

    @property
    def execution_mode(self) -> str:
        """Which engine SELECTs compile to: ``"batch"`` or ``"row"``."""
        return self.planner.execution_mode

    def set_execution_mode(self, mode: str) -> None:
        """Switch engines; cached plans for the old mode are dropped."""
        self.planner.set_execution_mode(mode)

    @property
    def fused(self) -> bool:
        """Whether batch plans compile fused expression functions."""
        return self.planner.fused

    def set_fused(self, fused: bool) -> None:
        """Toggle fused expression codegen; drops cached plans."""
        self.planner.set_fused(fused)

    @property
    def parallel_workers(self) -> int:
        """Morsel worker count for eligible batch pipelines (1 = serial)."""
        return self.planner.parallel_workers

    def set_parallel_workers(self, workers: int) -> None:
        """Set the morsel worker count; drops cached plans."""
        self.planner.set_parallel_workers(workers)

    @property
    def array_store(self) -> bool:
        """Whether new tables back INTEGER/REAL columns with typed arrays."""
        return self.catalog.array_store

    # ------------------------------------------------------------------
    # SQL entry point
    # ------------------------------------------------------------------
    def execute(self, sql: str) -> ResultSet:
        """Parse and execute one SQL statement.

        DDL statements return an empty ResultSet; DML statements return
        an empty ResultSet whose ``rowcount`` is the number of rows
        inserted/updated/deleted.

        >>> db = Database()
        >>> _ = db.execute("CREATE TABLE t (id INT, name TEXT)")
        >>> _ = db.execute("INSERT INTO t VALUES (1, 'alpha'), (2, 'beta')")
        >>> db.execute("UPDATE t SET name = 'gamma' WHERE id = 2").rowcount
        1
        >>> db.execute("DELETE FROM t WHERE id = 1").rowcount
        1
        >>> db.execute("SELECT name FROM t").rows
        [('gamma',)]
        """
        statement = parse_sql(sql)
        if isinstance(statement, Select):
            with deadline_scope(self._default_deadline()):
                return self.planner.execute(statement)
        if isinstance(statement, Union):
            with deadline_scope(self._default_deadline()):
                return execute_union(self.catalog, statement, self.planner)
        if isinstance(statement, Begin):
            self.txn.begin()
            if self._metrics_registry.enabled:
                self._txn_begins.inc()
            return ResultSet(columns=[], rows=[])
        if isinstance(statement, Commit):
            # log first, discard the undo log only once durable: a WAL
            # failure here must leave the transaction rolled back, not
            # half-remembered
            ops = self.txn.pending_ops()
            if self._durable():
                try:
                    self.durability.log_transaction(ops)
                except BaseException:
                    self.txn.rollback()
                    raise
            self.txn.commit()
            if self._metrics_registry.enabled:
                self._txn_commits.inc()
            return ResultSet(columns=[], rows=[])
        if isinstance(statement, Rollback):
            self.txn.rollback()
            if self._metrics_registry.enabled:
                self._txn_rollbacks.inc()
            return ResultSet(columns=[], rows=[])
        if isinstance(statement, Checkpoint):
            self.checkpoint()
            return ResultSet(columns=[], rows=[])
        if isinstance(statement, CreateTable):
            if self.txn.active:
                raise TransactionError(
                    "CREATE TABLE inside an explicit transaction is not "
                    "supported (DDL is auto-commit)"
                )
            columns = [
                Column(c.name, c.sql_type, c.primary_key) for c in statement.columns
            ]
            foreign_keys = [
                ForeignKey(fk.columns, fk.ref_table, fk.ref_columns)
                for fk in statement.foreign_keys
            ]
            self.catalog.create_table(statement.name, columns, foreign_keys)
            if self._durable():
                try:
                    self.durability.log_statement(sql)
                except BaseException:
                    self.catalog.drop_table(statement.name)
                    raise
            return ResultSet(columns=[], rows=[])
        if isinstance(statement, Insert):
            table = self.catalog.table(statement.table)
            with self.txn.statement([table]):
                first_new = len(table.rows)
                if statement.columns:
                    for row in statement.rows:
                        if len(row) != len(statement.columns):
                            raise SqlError(
                                f"INSERT arity mismatch for table "
                                f"{statement.table!r}"
                            )
                        table.insert_named(**dict(zip(statement.columns, row)))
                else:
                    table.insert_many(statement.rows)
                if statement.returning:
                    result = evaluate_returning(
                        table,
                        table.rows[first_new:],
                        statement.returning,
                        len(statement.rows),
                    )
                else:
                    result = ResultSet(
                        columns=[], rows=[], rowcount=len(statement.rows)
                    )
                self._log_dml(sql)
            return result
        if isinstance(statement, Update):
            table = self.catalog.table(statement.table)
            with self.txn.statement([table]):
                result = execute_update(
                    self.catalog, statement, mode=self.execution_mode
                )
                self._log_dml(sql)
            return result
        if isinstance(statement, Delete):
            table = self.catalog.table(statement.table)
            with self.txn.statement([table]):
                result = execute_delete(
                    self.catalog, statement, mode=self.execution_mode
                )
                self._log_dml(sql)
            return result
        raise SqlError(f"unsupported statement type: {type(statement).__name__}")

    def _log_dml(self, sql: str) -> None:
        """Record one applied DML statement for durability.

        Called *inside* the statement's undo guard, after the in-memory
        apply: a WAL append/fsync failure propagates and the guard rolls
        the apply back, keeping live state equal to replayable state.
        """
        if self.txn.active:
            self.txn.note_op({"sql": sql})
        elif self._durable():
            self.durability.log_statement(sql)

    def checkpoint(self) -> dict:
        """Write a columnar checkpoint and truncate the WAL.

        Returns the durability manager's summary (new generation,
        checkpoint size).  Requires a durable database and no open
        explicit transaction (the image must not contain uncommitted
        writes).
        """
        if self.durability is None:
            raise SqlExecutionError(
                "CHECKPOINT requires a durable database (data_dir)"
            )
        if self.txn.active:
            raise TransactionError(
                "CHECKPOINT inside an explicit transaction is not supported"
            )
        return self.durability.checkpoint(self.catalog)

    def close(self) -> None:
        """Release durable resources (no-op for in-memory databases)."""
        if self.durability is not None:
            self.durability.close()

    def _default_deadline(self) -> "Deadline | None":
        """A fresh deadline from ``request_timeout_ms``, unless one is
        already active (the serving layer's request-level deadline wins
        over the engine default)."""
        timeout_ms = self._config.request_timeout_ms
        if timeout_ms is None or current_deadline() is not None:
            return None
        return Deadline(timeout_ms)

    def execute_select_ast(self, select: Select) -> ResultSet:
        """Execute an already-parsed SELECT (used by SODA internals)."""
        with deadline_scope(self._default_deadline()):
            return self.planner.execute(select)

    def explain(self, sql: str, analyze: bool = False) -> str:
        """The optimized plan of a SELECT, as a deterministic text tree.

        With ``analyze=True`` the query is *executed* through
        instrumented operators and every plan line gains the actual
        rows (and batches, in batch mode) it produced plus its
        self-time, right next to the optimizer's ``[~N rows]``
        estimate.

        >>> db = Database()
        >>> _ = db.execute("CREATE TABLE t (id INT)")
        >>> print(db.explain("SELECT * FROM t WHERE id = 1"))
        project * [batch]
        └─ scan t as t (0 rows) filter: (id = 1) [~0 rows] [batch]
        """
        statement = parse_sql(sql)
        if isinstance(statement, Select):
            return self.planner.explain(statement, analyze=analyze)
        if isinstance(statement, Union):
            branches = [
                self.planner.explain(select, analyze=analyze)
                for select in statement.selects
            ]
            keyword = "union all" if statement.all else "union"
            return f"\n{keyword}\n".join(branches)
        raise SqlError("EXPLAIN supports SELECT statements only")

    def explain_select_ast(self, select: Select, analyze: bool = False) -> str:
        """Explain an already-parsed SELECT (used by SODA internals)."""
        return self.planner.explain(select, analyze=analyze)

    def metrics(self) -> dict:
        """A snapshot of the process-wide metrics registry.

        Point-in-time gauges owned by this database (plan-cache entry
        count) are refreshed here, at dump time, so several databases in
        one process don't fight over them between snapshots.
        """
        from repro.obs.metrics import registry

        reg = registry()
        reg.gauge("plan_cache.entries").set(len(self.planner.cache))
        reg.gauge("plan_cache.capacity").set(self.planner.cache.capacity)
        return reg.to_dict()

    # ------------------------------------------------------------------
    # programmatic schema/data API (used by the warehouse generators)
    # ------------------------------------------------------------------
    def create_table(
        self,
        name: str,
        columns: Sequence[tuple],
        primary_key: Sequence[str] = (),
        foreign_keys: Iterable[tuple] = (),
    ) -> Table:
        """Create a table from ``(name, type_name)`` column specs.

        *foreign_keys* entries are ``(local_cols, ref_table, ref_cols)``.
        """
        if self.txn.active:
            raise TransactionError(
                "create_table inside an explicit transaction is not "
                "supported (DDL is auto-commit)"
            )
        pk = set(primary_key)
        column_objects = [
            Column(col_name, SqlType.from_name(type_name), col_name in pk)
            for col_name, type_name in columns
        ]
        fk_objects = [
            ForeignKey(tuple(local), ref_table, tuple(remote))
            for local, ref_table, remote in foreign_keys
        ]
        table = self.catalog.create_table(name, column_objects, fk_objects)
        if self._durable():
            try:
                self.durability.log_create(table)
            except BaseException:
                self.catalog.drop_table(table.name)
                raise
        return table

    def insert_rows(self, table_name: str, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk-insert positional rows; returns the number inserted.

        The insert is atomic: a coercion failure on any row leaves the
        table untouched.  On a durable database the batch is logged as
        one WAL record (value-form, skipping SQL round-tripping).
        """
        table = self.catalog.table(table_name)
        logged = self.txn.active or self._durable()
        if logged:
            rows = [list(row) for row in rows]
        count = 0
        with self.txn.statement([table]):
            for row in rows:
                table.insert(row)
                count += 1
            if self.txn.active:
                self.txn.note_op({"table": table.name, "rows": rows})
            elif self._durable():
                self.durability.log_rows(table.name, rows)
        return count

    def table(self, name: str) -> Table:
        return self.catalog.table(name)

    def table_names(self) -> list[str]:
        return self.catalog.table_names()

    def row_count(self, table_name: str) -> int:
        return len(self.catalog.table(table_name))
