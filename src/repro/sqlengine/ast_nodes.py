"""Abstract syntax tree for the SQL subset."""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.sqlengine.types import SqlType, format_value


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for expression nodes."""

    def to_sql(self) -> str:  # pragma: no cover - overridden everywhere
        raise NotImplementedError


@dataclass(frozen=True)
class Literal(Expr):
    value: Any

    def to_sql(self) -> str:
        return format_value(self.value)


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A possibly-qualified column reference (``table.column`` / ``column``)."""

    table: str | None
    column: str

    def to_sql(self) -> str:
        if self.table:
            return f"{self.table}.{self.column}"
        return self.column


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Arithmetic, comparison or logical binary operation."""

    op: str  # one of = <> < <= > >= AND OR + - * / ||
    left: Expr
    right: Expr

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # NOT or -
    operand: Expr

    def to_sql(self) -> str:
        if self.op == "NOT":
            return f"(NOT {self.operand.to_sql()})"
        return f"({self.op}{self.operand.to_sql()})"


@dataclass(frozen=True)
class Like(Expr):
    operand: Expr
    pattern: Expr
    negated: bool = False

    def to_sql(self) -> str:
        middle = "NOT LIKE" if self.negated else "LIKE"
        return f"({self.operand.to_sql()} {middle} {self.pattern.to_sql()})"


@dataclass(frozen=True)
class InList(Expr):
    operand: Expr
    items: tuple
    negated: bool = False

    def to_sql(self) -> str:
        middle = "NOT IN" if self.negated else "IN"
        rendered = ", ".join(item.to_sql() for item in self.items)
        return f"({self.operand.to_sql()} {middle} ({rendered}))"


@dataclass(frozen=True)
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def to_sql(self) -> str:
        middle = "NOT BETWEEN" if self.negated else "BETWEEN"
        return (
            f"({self.operand.to_sql()} {middle} "
            f"{self.low.to_sql()} AND {self.high.to_sql()})"
        )


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool = False

    def to_sql(self) -> str:
        middle = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.to_sql()} {middle})"


@dataclass(frozen=True)
class CaseWhen(Expr):
    """``CASE WHEN cond THEN value [...] [ELSE value] END``."""

    branches: tuple  # of (condition Expr, value Expr)
    default: Expr | None = None

    def to_sql(self) -> str:
        parts = ["CASE"]
        for condition, value in self.branches:
            parts.append(f"WHEN {condition.to_sql()} THEN {value.to_sql()}")
        if self.default is not None:
            parts.append(f"ELSE {self.default.to_sql()}")
        parts.append("END")
        return " ".join(parts)


@dataclass(frozen=True)
class FuncCall(Expr):
    """A function call; ``count(*)`` is represented with ``star=True``."""

    name: str  # lowercase
    args: tuple = ()
    star: bool = False
    distinct: bool = False

    def to_sql(self) -> str:
        if self.star:
            return f"{self.name}(*)"
        inner = ", ".join(arg.to_sql() for arg in self.args)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.name}({inner})"


AGGREGATE_FUNCTIONS = {"count", "sum", "avg", "min", "max"}


def contains_aggregate(expr: Expr) -> bool:
    """True if *expr* contains an aggregate function call anywhere."""
    if isinstance(expr, FuncCall):
        if expr.name in AGGREGATE_FUNCTIONS:
            return True
        return any(contains_aggregate(arg) for arg in expr.args)
    if isinstance(expr, BinaryOp):
        return contains_aggregate(expr.left) or contains_aggregate(expr.right)
    if isinstance(expr, UnaryOp):
        return contains_aggregate(expr.operand)
    if isinstance(expr, Like):
        return contains_aggregate(expr.operand) or contains_aggregate(expr.pattern)
    if isinstance(expr, InList):
        return contains_aggregate(expr.operand) or any(
            contains_aggregate(item) for item in expr.items
        )
    if isinstance(expr, Between):
        return (
            contains_aggregate(expr.operand)
            or contains_aggregate(expr.low)
            or contains_aggregate(expr.high)
        )
    if isinstance(expr, IsNull):
        return contains_aggregate(expr.operand)
    if isinstance(expr, CaseWhen):
        if any(
            contains_aggregate(condition) or contains_aggregate(value)
            for condition, value in expr.branches
        ):
            return True
        return expr.default is not None and contains_aggregate(expr.default)
    return False


def collect_column_refs(expr: Expr) -> list[ColumnRef]:
    """All column references in *expr*, in evaluation order."""
    refs: list[ColumnRef] = []

    def walk(node: Expr) -> None:
        if isinstance(node, ColumnRef):
            refs.append(node)
        elif isinstance(node, BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, UnaryOp):
            walk(node.operand)
        elif isinstance(node, Like):
            walk(node.operand)
            walk(node.pattern)
        elif isinstance(node, InList):
            walk(node.operand)
            for item in node.items:
                walk(item)
        elif isinstance(node, Between):
            walk(node.operand)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, IsNull):
            walk(node.operand)
        elif isinstance(node, FuncCall):
            for arg in node.args:
                walk(arg)
        elif isinstance(node, CaseWhen):
            for condition, value in node.branches:
                walk(condition)
                walk(value)
            if node.default is not None:
                walk(node.default)

    walk(expr)
    return refs


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    """One item of the select list; ``expr is None`` means ``*`` or ``t.*``."""

    expr: Expr | None
    alias: str | None = None
    star_table: str | None = None  # for "t.*"

    @property
    def is_star(self) -> bool:
        return self.expr is None

    def to_sql(self) -> str:
        if self.is_star:
            return f"{self.star_table}.*" if self.star_table else "*"
        assert self.expr is not None
        rendered = self.expr.to_sql()
        if self.alias:
            rendered += f" AS {self.alias}"
        return rendered


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        """The name this table is referred to by in the query."""
        return self.alias or self.name

    def to_sql(self) -> str:
        if self.alias:
            return f"{self.name} {self.alias}"
        return self.name


@dataclass(frozen=True)
class Join:
    """An explicit ``JOIN ... ON ...`` clause attached to the FROM list."""

    table: TableRef
    condition: Expr
    kind: str = "INNER"  # INNER or LEFT

    def to_sql(self) -> str:
        return f"{self.kind} JOIN {self.table.to_sql()} ON {self.condition.to_sql()}"


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False

    def to_sql(self) -> str:
        suffix = " DESC" if self.descending else ""
        return f"{self.expr.to_sql()}{suffix}"


@dataclass(frozen=True)
class Select:
    items: tuple
    tables: tuple
    joins: tuple = ()
    where: Expr | None = None
    group_by: tuple = ()
    having: Expr | None = None
    order_by: tuple = ()
    limit: int | None = None
    distinct: bool = False

    def to_sql(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(item.to_sql() for item in self.items))
        parts.append("FROM " + ", ".join(table.to_sql() for table in self.tables))
        for join in self.joins:
            parts.append(join.to_sql())
        if self.where is not None:
            parts.append("WHERE " + self.where.to_sql())
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(e.to_sql() for e in self.group_by))
        if self.having is not None:
            parts.append("HAVING " + self.having.to_sql())
        if self.order_by:
            parts.append(
                "ORDER BY " + ", ".join(item.to_sql() for item in self.order_by)
            )
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)


@dataclass(frozen=True)
class Union:
    """``<select> UNION [ALL] <select> [...]`` with set/bag semantics."""

    selects: tuple
    all: bool = False

    def to_sql(self) -> str:
        separator = " UNION ALL " if self.all else " UNION "
        return separator.join(select.to_sql() for select in self.selects)


@dataclass(frozen=True)
class ColumnDef:
    name: str
    sql_type: SqlType
    primary_key: bool = False


@dataclass(frozen=True)
class ForeignKeyDef:
    columns: tuple
    ref_table: str
    ref_columns: tuple


@dataclass(frozen=True)
class CreateTable:
    name: str
    columns: tuple
    foreign_keys: tuple = ()


def _render_returning(returning: tuple) -> str:
    return "RETURNING " + ", ".join(item.to_sql() for item in returning)


@dataclass(frozen=True)
class Insert:
    table: str
    columns: tuple  # may be empty -> all columns in order
    rows: tuple  # tuple of tuples of Literal values
    returning: tuple = ()  # of SelectItem; empty -> plain rowcount result


@dataclass(frozen=True)
class Assignment:
    """One ``column = expr`` item of an UPDATE's SET list."""

    column: str
    value: Expr

    def to_sql(self) -> str:
        return f"{self.column} = {self.value.to_sql()}"


@dataclass(frozen=True)
class Update:
    """``UPDATE table SET col = expr [, ...] [WHERE predicate] [RETURNING ...]``."""

    table: str
    assignments: tuple  # of Assignment
    where: Expr | None = None
    returning: tuple = ()  # of SelectItem; evaluated over the new rows

    def to_sql(self) -> str:
        rendered = ", ".join(a.to_sql() for a in self.assignments)
        sql = f"UPDATE {self.table} SET {rendered}"
        if self.where is not None:
            sql += f" WHERE {self.where.to_sql()}"
        if self.returning:
            sql += " " + _render_returning(self.returning)
        return sql


@dataclass(frozen=True)
class Delete:
    """``DELETE FROM table [WHERE predicate] [RETURNING ...]``."""

    table: str
    where: Expr | None = None
    returning: tuple = ()  # of SelectItem; evaluated over the removed rows

    def to_sql(self) -> str:
        sql = f"DELETE FROM {self.table}"
        if self.where is not None:
            sql += f" WHERE {self.where.to_sql()}"
        if self.returning:
            sql += " " + _render_returning(self.returning)
        return sql


# ---------------------------------------------------------------------------
# Transaction control
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Begin:
    """``BEGIN [TRANSACTION]`` — open an explicit transaction."""

    def to_sql(self) -> str:
        return "BEGIN"


@dataclass(frozen=True)
class Commit:
    """``COMMIT`` — make the open transaction's writes durable."""

    def to_sql(self) -> str:
        return "COMMIT"


@dataclass(frozen=True)
class Rollback:
    """``ROLLBACK`` — undo the open transaction's writes."""

    def to_sql(self) -> str:
        return "ROLLBACK"


@dataclass(frozen=True)
class Checkpoint:
    """``CHECKPOINT`` — persist a columnar segment file and truncate the WAL."""

    def to_sql(self) -> str:
        return "CHECKPOINT"
