"""The unified engine configuration: one frozen ``EngineConfig``.

``Database`` historically grew six independent constructor knobs
(``plan_cache_size``, ``execution_mode``, ``dict_encoding_threshold``,
``fused``, ``parallel_workers``, ``array_store``).  They are now fields
of one immutable dataclass, passed as ``Database(config=EngineConfig(
...))``; the old keyword arguments keep working as deprecation shims
that fold into the config (see :class:`~repro.sqlengine.database.
Database`).  The config also carries the storage knob introduced with
the concurrent serving layer: ``segment_rows`` opts a database's tables
into frozen-segment + delta storage (see :mod:`repro.sqlengine.
segments`).

``EngineConfig.from_cli`` parses the ``--engine-config
key=value[,key=value]`` flag shared by ``repro sql``, ``repro search``
and ``repro serve``, so one spelling configures the engine everywhere.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import SqlCatalogError, SqlExecutionError

#: mirrors repro.sqlengine.planner.cache.DEFAULT_PLAN_CACHE_SIZE (a
#: test locks the two together; duplicated to keep this module light)
_DEFAULT_PLAN_CACHE_SIZE = 128

#: mirrors repro.sqlengine.planner.parallel.MAX_PARALLEL_WORKERS
_MAX_PARALLEL_WORKERS = 64

#: freeze threshold ``repro serve`` uses when none is configured —
#: large enough to keep per-pin delta copies cheap, small enough that
#: sustained writes freeze regularly
DEFAULT_SEGMENT_ROWS = 4096

_EXECUTION_MODES = ("batch", "row")


def _require_bool(name: str, value, error=SqlExecutionError):
    if not isinstance(value, bool):
        raise error(f"{name} must be True or False, got {value!r}")
    return value


def _require_int(name: str, value, minimum: int, error=SqlExecutionError):
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        raise error(
            f"{name} must be an integer >= {minimum}, got {value!r}"
        )
    return value


@dataclass(frozen=True)
class EngineConfig:
    """Every construction-time knob of one :class:`Database`, immutable.

    >>> config = EngineConfig(execution_mode="row", parallel_workers=1)
    >>> dataclasses.replace(config, fused=False).fused
    False
    """

    #: prepared plans kept in the LRU plan cache (0 disables caching)
    plan_cache_size: int = _DEFAULT_PLAN_CACHE_SIZE
    #: ``"batch"`` (vectorized, default) or ``"row"`` (volcano)
    execution_mode: str = "batch"
    #: dictionary-encoding cardinality cap for TEXT columns
    #: (None = engine default, 0 disables encoding)
    dict_encoding_threshold: "int | None" = None
    #: fused filter/project expression codegen (batch mode)
    fused: bool = True
    #: morsel-driven parallel scan pipelines (1 = serial)
    parallel_workers: int = 1
    #: typed ``array.array`` buffers for INTEGER/REAL columns
    array_store: bool = False
    #: rows per frozen columnar segment; 0 (default) keeps the classic
    #: flat single-threaded storage, > 0 opts tables into immutable
    #: frozen segments + one mutable delta with snapshot-pinned reads
    segment_rows: int = 0
    #: default per-request time budget in milliseconds (None = no
    #: deadline).  A query over budget raises a structured
    #: :class:`~repro.resilience.deadline.DeadlineExceeded` at the next
    #: cooperative checkpoint (pipeline step / scan batch / morsel
    #: boundary); the HTTP front end maps it to 503 and accepts a
    #: per-request ``?timeout_ms=`` override
    request_timeout_ms: "int | None" = None

    def __post_init__(self) -> None:
        _require_int("plan_cache_size", self.plan_cache_size, 0)
        if self.execution_mode not in _EXECUTION_MODES:
            raise SqlExecutionError(
                f"unknown execution mode {self.execution_mode!r} (choose "
                f"from {', '.join(_EXECUTION_MODES)})"
            )
        if self.dict_encoding_threshold is not None:
            _require_int(
                "dict_encoding_threshold",
                self.dict_encoding_threshold,
                0,
                error=SqlCatalogError,
            )
        _require_bool("fused", self.fused)
        workers = self.parallel_workers
        if (
            not isinstance(workers, int)
            or isinstance(workers, bool)
            or not 1 <= workers <= _MAX_PARALLEL_WORKERS
        ):
            raise SqlExecutionError(
                "parallel_workers must be an integer between 1 and "
                f"{_MAX_PARALLEL_WORKERS}, got {workers!r}"
            )
        _require_bool("array_store", self.array_store, error=SqlCatalogError)
        _require_int("segment_rows", self.segment_rows, 0, error=SqlCatalogError)
        if self.request_timeout_ms is not None:
            _require_int("request_timeout_ms", self.request_timeout_ms, 1)

    # ------------------------------------------------------------------
    def replace(self, **changes) -> "EngineConfig":
        """A copy with *changes* applied (validated like construction)."""
        return dataclasses.replace(self, **changes)

    def as_dict(self) -> dict:
        """The resolved settings as a plain dict (stable key order)."""
        return {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
        }

    # ------------------------------------------------------------------
    @classmethod
    def from_cli(
        cls, spec: "str | None", base: "EngineConfig | None" = None
    ) -> "EngineConfig":
        """Parse a ``key=value[,key=value]`` CLI spec.

        Keys are the field names (``-`` accepted for ``_``); booleans
        accept ``true/false/1/0``, ``dict_encoding_threshold`` also
        accepts ``none``.  Unknown keys and malformed values raise
        :class:`SqlExecutionError` with the valid choices, so the CLI
        can report them as ordinary engine errors.

        >>> EngineConfig.from_cli("segment-rows=256,fused=false").fused
        False
        """
        config = base if base is not None else cls()
        if not spec:
            return config
        fields = {field.name: field for field in dataclasses.fields(cls)}
        changes: dict = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            key, sep, raw = item.partition("=")
            key = key.strip().replace("-", "_")
            if not sep:
                raise SqlExecutionError(
                    f"--engine-config entries must look like key=value, "
                    f"got {item!r}"
                )
            if key not in fields:
                raise SqlExecutionError(
                    f"unknown engine-config key {key!r} (choose from "
                    f"{', '.join(sorted(fields))})"
                )
            changes[key] = cls._parse_value(key, raw.strip())
        return dataclasses.replace(config, **changes)

    @staticmethod
    def _parse_value(key: str, raw: str):
        lowered = raw.lower()
        if key in ("fused", "array_store"):
            if lowered in ("true", "1", "yes", "on"):
                return True
            if lowered in ("false", "0", "no", "off"):
                return False
            raise SqlExecutionError(
                f"engine-config {key} expects true/false, got {raw!r}"
            )
        if key == "execution_mode":
            return lowered
        if key in ("dict_encoding_threshold", "request_timeout_ms") and (
            lowered in ("none", "null")
        ):
            return None
        try:
            return int(raw)
        except ValueError:
            raise SqlExecutionError(
                f"engine-config {key} expects an integer, got {raw!r}"
            ) from None
