"""SQL value model with three-valued comparison semantics.

Values are plain Python objects: ``int``, ``float``, ``str``,
``datetime.date``, ``bool`` and ``None`` (SQL NULL).  This module
centralises type names, coercion and the comparison rules used by the
expression evaluator — in particular that any comparison involving NULL
yields *unknown* (represented as ``None``), which a WHERE clause treats
as not-satisfied.
"""

from __future__ import annotations

import datetime
import enum
from typing import Any

from repro.errors import SqlTypeError


class SqlType(enum.Enum):
    """The column types supported by the engine."""

    INTEGER = "INTEGER"
    REAL = "REAL"
    TEXT = "TEXT"
    DATE = "DATE"
    BOOLEAN = "BOOLEAN"

    @classmethod
    def from_name(cls, name: str) -> "SqlType":
        """Parse a type name, accepting common aliases.

        >>> SqlType.from_name('int')
        <SqlType.INTEGER: 'INTEGER'>
        """
        upper = name.strip().upper()
        aliases = {
            "INT": cls.INTEGER,
            "INTEGER": cls.INTEGER,
            "BIGINT": cls.INTEGER,
            "SMALLINT": cls.INTEGER,
            "REAL": cls.REAL,
            "FLOAT": cls.REAL,
            "DOUBLE": cls.REAL,
            "DECIMAL": cls.REAL,
            "NUMERIC": cls.REAL,
            "TEXT": cls.TEXT,
            "VARCHAR": cls.TEXT,
            "CHAR": cls.TEXT,
            "STRING": cls.TEXT,
            "DATE": cls.DATE,
            "BOOLEAN": cls.BOOLEAN,
            "BOOL": cls.BOOLEAN,
        }
        if upper not in aliases:
            raise SqlTypeError(f"unknown SQL type: {name!r}")
        return aliases[upper]


def python_type_of(sql_type: SqlType) -> tuple[type, ...]:
    """Python types acceptable for a column of *sql_type*."""
    mapping = {
        SqlType.INTEGER: (int,),
        SqlType.REAL: (float, int),
        SqlType.TEXT: (str,),
        SqlType.DATE: (datetime.date,),
        SqlType.BOOLEAN: (bool,),
    }
    return mapping[sql_type]


def coerce_value(value: Any, sql_type: SqlType) -> Any:
    """Coerce *value* to *sql_type*, raising SqlTypeError if impossible.

    NULL (``None``) is valid for every type.
    """
    if value is None:
        return None
    if sql_type is SqlType.INTEGER:
        if isinstance(value, bool):
            raise SqlTypeError(f"boolean {value!r} is not an INTEGER")
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        raise SqlTypeError(f"cannot coerce {value!r} to INTEGER")
    if sql_type is SqlType.REAL:
        if isinstance(value, bool):
            raise SqlTypeError(f"boolean {value!r} is not a REAL")
        if isinstance(value, (int, float)):
            return float(value)
        raise SqlTypeError(f"cannot coerce {value!r} to REAL")
    if sql_type is SqlType.TEXT:
        if isinstance(value, str):
            return value
        raise SqlTypeError(f"cannot coerce {value!r} to TEXT")
    if sql_type is SqlType.DATE:
        if isinstance(value, datetime.date) and not isinstance(
            value, datetime.datetime
        ):
            return value
        if isinstance(value, str):
            return parse_date(value)
        raise SqlTypeError(f"cannot coerce {value!r} to DATE")
    if sql_type is SqlType.BOOLEAN:
        if isinstance(value, bool):
            return value
        raise SqlTypeError(f"cannot coerce {value!r} to BOOLEAN")
    raise SqlTypeError(f"unhandled SQL type: {sql_type}")  # pragma: no cover


def parse_date(text: str) -> datetime.date:
    """Parse an ISO ``YYYY-MM-DD`` date string."""
    try:
        return datetime.date.fromisoformat(text.strip())
    except ValueError as exc:
        raise SqlTypeError(f"invalid DATE literal: {text!r}") from exc


def compare_values(left: Any, right: Any) -> int | None:
    """Three-valued comparison: -1 / 0 / +1, or None if either is NULL.

    Numeric types compare across int/float.  Dates compare with dates and
    with ISO date strings (the engine stores dates natively but generated
    SQL uses string literals).  Mixed other types raise SqlTypeError.
    """
    if left is None or right is None:
        return None
    left, right = _align(left, right)
    if left < right:
        return -1
    if left > right:
        return 1
    return 0


def _align(left: Any, right: Any) -> tuple[Any, Any]:
    if isinstance(left, bool) or isinstance(right, bool):
        if isinstance(left, bool) and isinstance(right, bool):
            return left, right
        raise SqlTypeError(f"cannot compare {left!r} with {right!r}")
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return left, right
    if isinstance(left, datetime.date) and isinstance(right, datetime.date):
        return left, right
    if isinstance(left, datetime.date) and isinstance(right, str):
        return left, parse_date(right)
    if isinstance(left, str) and isinstance(right, datetime.date):
        return parse_date(left), right
    if isinstance(left, str) and isinstance(right, str):
        return left, right
    raise SqlTypeError(f"cannot compare {left!r} with {right!r}")


def values_equal(left: Any, right: Any) -> bool | None:
    """SQL equality: None if either side is NULL."""
    result = compare_values(left, right)
    if result is None:
        return None
    return result == 0


def infer_type(value: Any) -> SqlType:
    """Infer the SqlType of a non-NULL Python value."""
    if isinstance(value, bool):
        return SqlType.BOOLEAN
    if isinstance(value, int):
        return SqlType.INTEGER
    if isinstance(value, float):
        return SqlType.REAL
    if isinstance(value, str):
        return SqlType.TEXT
    if isinstance(value, datetime.date):
        return SqlType.DATE
    raise SqlTypeError(f"cannot infer SQL type of {value!r}")


def format_value(value: Any) -> str:
    """Render a value the way it would appear in a SQL literal."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, datetime.date):
        return f"'{value.isoformat()}'"
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"
