"""DML execution: UPDATE and DELETE over the shared catalog mutation path.

Unlike SELECT, DML needs no plan DAG — the work is one predicate over one
table — but it reuses the planner's expression machinery end to end:
WHERE predicates and SET values compile through
:func:`~repro.sqlengine.expressions.compile_expr` (or its vectorized twin
for the batch engine), so three-valued logic holds exactly as in
queries: a WHERE that evaluates to NULL does *not* match the row.

Matching happens first, mutation second, and all mutation flows through
:meth:`~repro.sqlengine.catalog.Table.update_positions` /
:meth:`~repro.sqlengine.catalog.Table.delete_positions` — the single
path that keeps the tuple list and the columnar store in lockstep and
notifies catalog observers (index maintenance, statistics) row by row.
SET expressions are evaluated against the *old* row, per standard SQL,
so ``SET a = b, b = a`` swaps.

In batch mode SET lists are evaluated **column-at-a-time** over the
matched positions via :func:`~repro.sqlengine.expressions.compile_expr_batch`
— but only when at most one assignment could possibly raise.  Row mode
evaluates row-major and batch mode assignment-major, so with two
fallible assignments the two engines could surface *different* first
errors; :func:`_never_raises` is a deliberately conservative static
check (typed columns, literal divisors, literal LIKE patterns) that
keeps the vectorized path restricted to plans whose error behaviour is
provably order-independent.  Mismatches fall back to row-major
evaluation, keeping the two modes byte- and error-identical.

``RETURNING`` clauses evaluate their select items over the affected
rows — the freshly inserted rows, the *new* image of updated rows, the
old image of deleted rows — and turn the usual empty DML result into a
real :class:`~repro.sqlengine.results.ResultSet`.
"""

from __future__ import annotations

import datetime

from repro.errors import SqlCatalogError, SqlExecutionError
from repro.sqlengine.ast_nodes import (
    BinaryOp,
    ColumnRef,
    Delete,
    Expr,
    FuncCall,
    IsNull,
    Like,
    Literal,
    UnaryOp,
    Update,
)
from repro.sqlengine.catalog import Catalog, Table
from repro.sqlengine.expressions import Scope, compile_expr, compile_expr_batch
from repro.sqlengine.results import ResultSet
from repro.sqlengine.types import SqlType

__all__ = ["evaluate_returning", "execute_delete", "execute_update"]


def _table_scope(table: Table) -> Scope:
    return Scope([(table.name, column.name) for column in table.columns])


def _matching_positions(
    table: Table, where: "Expr | None", mode: str
) -> list[int]:
    """Row positions where *where* is ``True`` (3VL: NULL never matches)."""
    if where is None:
        return list(range(len(table.rows)))
    scope = _table_scope(table)
    if mode == "batch":
        from repro.sqlengine.planner.physical import BATCH_SIZE

        fn = compile_expr_batch(where, scope)
        data = [table.column_data(i) for i in range(len(table.columns))]
        total = len(table.rows)
        positions: list[int] = []
        for start in range(0, total, BATCH_SIZE):
            stop = min(start + BATCH_SIZE, total)
            cols = [column[start:stop] for column in data]
            mask = fn(cols, stop - start)
            positions.extend(
                start + offset
                for offset, value in enumerate(mask)
                if value is True
            )
        return positions
    if mode != "row":
        raise SqlExecutionError(f"unknown execution mode {mode!r}")
    row_fn = compile_expr(where, scope)
    return [
        position
        for position, row in enumerate(table.rows)
        if row_fn(row) is True
    ]


# ---------------------------------------------------------------------------
# RETURNING
# ---------------------------------------------------------------------------


def evaluate_returning(
    table: Table, rows: list, items: tuple, rowcount: int
) -> ResultSet:
    """Project the RETURNING *items* over the affected *rows*.

    *rows* are full coerced tuples in the table's column order; ``*``
    expands to the table's columns, everything else is an arbitrary
    row expression with the usual ``alias or to_sql()`` column naming.
    """
    scope = _table_scope(table)
    columns: list[str] = []
    # each target is either a column index (star expansion) or a RowFn
    targets: list = []
    for item in items:
        if item.is_star:
            if item.star_table is not None and item.star_table != table.name:
                raise SqlCatalogError(
                    f"unknown table in RETURNING star: {item.star_table!r}"
                )
            for index, column in enumerate(table.columns):
                columns.append(column.name)
                targets.append(index)
            continue
        columns.append(item.alias or item.expr.to_sql())
        targets.append(compile_expr(item.expr, scope))
    out_rows = [
        tuple(
            row[target] if isinstance(target, int) else target(row)
            for target in targets
        )
        for row in rows
    ]
    return ResultSet(columns=columns, rows=out_rows, rowcount=rowcount)


# ---------------------------------------------------------------------------
# vectorized-SET safety analysis
# ---------------------------------------------------------------------------

_NUMERIC_TYPES = (SqlType.INTEGER, SqlType.REAL)
_SAFE_STR_FUNCS = ("lower", "upper")
_COMPARISONS = ("=", "<>", "<", "<=", ">", ">=")


def _type_class(expr: Expr, table: Table) -> "str | None":
    """The value class of *expr* — ``num``/``str``/``date``/``bool`` —
    or None when unknown or mixed (which disables the batch path)."""
    if isinstance(expr, Literal):
        value = expr.value
        if isinstance(value, bool):
            return "bool"
        if isinstance(value, (int, float)):
            return "num"
        if isinstance(value, str):
            return "str"
        if isinstance(value, datetime.date):
            return "date"
        return None  # NULL literal: class unknown
    if isinstance(expr, ColumnRef):
        if not table.has_column(expr.column):
            return None
        sql_type = table.column(expr.column).sql_type
        if sql_type in _NUMERIC_TYPES:
            return "num"
        if sql_type is SqlType.TEXT:
            return "str"
        if sql_type is SqlType.DATE:
            return "date"
        return "bool"
    if isinstance(expr, BinaryOp):
        if expr.op in ("+", "-", "*", "/"):
            return "num"
        if expr.op == "||":
            return "str"
        return "bool"  # comparisons, AND, OR
    if isinstance(expr, (UnaryOp, Like, IsNull)):
        if isinstance(expr, UnaryOp) and expr.op == "-":
            return "num"
        return "bool"
    if isinstance(expr, FuncCall):
        if expr.name in _SAFE_STR_FUNCS:
            return "str"
        if expr.name in ("length", "abs", "year", "month"):
            return "num"
        if expr.name == "coalesce":
            classes = {_type_class(arg, table) for arg in expr.args}
            classes.discard(None)
            return classes.pop() if len(classes) == 1 else None
    return None


def _never_raises(expr: Expr, table: Table) -> bool:
    """Conservatively True when evaluating *expr* cannot raise on any row.

    The whitelist leans on the engine's type invariants (a coerced
    INTEGER column holds only ``int``/``None``) and literal operands;
    anything unrecognised is treated as fallible.
    """
    if isinstance(expr, Literal):
        return True
    if isinstance(expr, ColumnRef):
        return table.has_column(expr.column)
    if isinstance(expr, BinaryOp):
        left_safe = _never_raises(expr.left, table)
        right_safe = _never_raises(expr.right, table)
        if not (left_safe and right_safe):
            return False
        if expr.op in ("AND", "OR", "||"):
            # 3VL short-circuits and concat tolerate NULL; neither raises
            return True
        left_class = _type_class(expr.left, table)
        right_class = _type_class(expr.right, table)
        if expr.op in ("+", "-", "*"):
            return left_class == "num" and right_class == "num"
        if expr.op == "/":
            # only a provably nonzero literal divisor is safe
            return (
                left_class == "num"
                and isinstance(expr.right, Literal)
                and isinstance(expr.right.value, (int, float))
                and not isinstance(expr.right.value, bool)
                and expr.right.value != 0
            )
        if expr.op in _COMPARISONS:
            # same class compares cleanly; date-vs-string would parse
            return left_class is not None and left_class == right_class
        return False
    if isinstance(expr, UnaryOp):
        if not _never_raises(expr.operand, table):
            return False
        operand_class = _type_class(expr.operand, table)
        if expr.op == "-":
            return operand_class == "num"
        return operand_class == "bool"  # NOT
    if isinstance(expr, Like):
        return (
            _never_raises(expr.operand, table)
            and _type_class(expr.operand, table) == "str"
            and isinstance(expr.pattern, Literal)
            and isinstance(expr.pattern.value, str)
        )
    if isinstance(expr, IsNull):
        return _never_raises(expr.operand, table)
    if isinstance(expr, FuncCall):
        if expr.star or expr.distinct:
            return False
        if not all(_never_raises(arg, table) for arg in expr.args):
            return False
        if expr.name in ("lower", "upper", "length"):
            return (
                len(expr.args) == 1
                and _type_class(expr.args[0], table) == "str"
            )
        if expr.name == "abs":
            return (
                len(expr.args) == 1
                and _type_class(expr.args[0], table) == "num"
            )
        if expr.name in ("year", "month"):
            return (
                len(expr.args) == 1
                and _type_class(expr.args[0], table) == "date"
            )
        if expr.name == "coalesce":
            return len(expr.args) > 0
        return False
    return False


# ---------------------------------------------------------------------------
# UPDATE / DELETE
# ---------------------------------------------------------------------------


def execute_update(
    catalog: Catalog, statement: Update, mode: str = "row"
) -> ResultSet:
    """Apply one UPDATE; the result carries rowcount and RETURNING rows."""
    table = catalog.table(statement.table)
    scope = _table_scope(table)
    seen: set[str] = set()
    targets = []  # (column index, value Expr) in SET order
    for assignment in statement.assignments:
        index = table.column_index(assignment.column)
        if assignment.column in seen:
            raise SqlCatalogError(
                f"column {assignment.column!r} assigned twice in UPDATE "
                f"{table.name!r}"
            )
        seen.add(assignment.column)
        targets.append((index, assignment.value))
    positions = _matching_positions(table, statement.where, mode)
    if not positions:
        if statement.returning:
            return evaluate_returning(table, [], statement.returning, 0)
        return ResultSet(columns=[], rows=[], rowcount=0)
    rows = table.rows
    fallible = sum(
        1 for _, value in targets if not _never_raises(value, table)
    )
    if mode == "batch" and fallible <= 1:
        # column-at-a-time over the matched positions only
        data = [table.column_data(i) for i in range(len(table.columns))]
        cols = [[column[p] for p in positions] for column in data]
        count = len(positions)
        new_rows = [list(rows[position]) for position in positions]
        for index, value in targets:
            batch = compile_expr_batch(value, scope)(cols, count)
            for offset in range(count):
                new_rows[offset][index] = batch[offset]
    else:
        compiled = [
            (index, compile_expr(value, scope)) for index, value in targets
        ]
        new_rows = []
        for position in positions:
            old_row = rows[position]
            new_row = list(old_row)
            for index, value_fn in compiled:
                new_row[index] = value_fn(old_row)
            new_rows.append(new_row)
    changed = table.update_positions(positions, new_rows)
    if statement.returning:
        return evaluate_returning(
            table,
            [rows[position] for position in positions],  # the new image
            statement.returning,
            changed,
        )
    return ResultSet(columns=[], rows=[], rowcount=changed)


def execute_delete(
    catalog: Catalog, statement: Delete, mode: str = "row"
) -> ResultSet:
    """Apply one DELETE; the result carries rowcount and RETURNING rows."""
    table = catalog.table(statement.table)
    positions = _matching_positions(table, statement.where, mode)
    if not positions:
        if statement.returning:
            return evaluate_returning(table, [], statement.returning, 0)
        return ResultSet(columns=[], rows=[], rowcount=0)
    removed_rows = (
        [table.rows[position] for position in positions]
        if statement.returning
        else None
    )
    removed = table.delete_positions(positions)
    if statement.returning:
        return evaluate_returning(
            table, removed_rows, statement.returning, removed
        )
    return ResultSet(columns=[], rows=[], rowcount=removed)
