"""DML execution: UPDATE and DELETE over the shared catalog mutation path.

Unlike SELECT, DML needs no plan DAG — the work is one predicate over one
table — but it reuses the planner's expression machinery end to end:
WHERE predicates and SET values compile through
:func:`~repro.sqlengine.expressions.compile_expr` (or its vectorized twin
for the batch engine), so three-valued logic holds exactly as in
queries: a WHERE that evaluates to NULL does *not* match the row.

Matching happens first, mutation second, and all mutation flows through
:meth:`~repro.sqlengine.catalog.Table.update_positions` /
:meth:`~repro.sqlengine.catalog.Table.delete_positions` — the single
path that keeps the tuple list and the columnar store in lockstep and
notifies catalog observers (index maintenance, statistics) row by row.
SET expressions are evaluated against the *old* row, per standard SQL,
so ``SET a = b, b = a`` swaps.
"""

from __future__ import annotations

from repro.errors import SqlCatalogError, SqlExecutionError
from repro.sqlengine.ast_nodes import Delete, Expr, Update
from repro.sqlengine.catalog import Catalog, Table
from repro.sqlengine.expressions import Scope, compile_expr, compile_expr_batch

__all__ = ["execute_delete", "execute_update"]


def _table_scope(table: Table) -> Scope:
    return Scope([(table.name, column.name) for column in table.columns])


def _matching_positions(
    table: Table, where: "Expr | None", mode: str
) -> list[int]:
    """Row positions where *where* is ``True`` (3VL: NULL never matches)."""
    if where is None:
        return list(range(len(table.rows)))
    scope = _table_scope(table)
    if mode == "batch":
        from repro.sqlengine.planner.physical import BATCH_SIZE

        fn = compile_expr_batch(where, scope)
        data = [table.column_data(i) for i in range(len(table.columns))]
        total = len(table.rows)
        positions: list[int] = []
        for start in range(0, total, BATCH_SIZE):
            stop = min(start + BATCH_SIZE, total)
            cols = [column[start:stop] for column in data]
            mask = fn(cols, stop - start)
            positions.extend(
                start + offset
                for offset, value in enumerate(mask)
                if value is True
            )
        return positions
    if mode != "row":
        raise SqlExecutionError(f"unknown execution mode {mode!r}")
    row_fn = compile_expr(where, scope)
    return [
        position
        for position, row in enumerate(table.rows)
        if row_fn(row) is True
    ]


def execute_update(
    catalog: Catalog, statement: Update, mode: str = "row"
) -> int:
    """Apply one UPDATE statement; returns the number of rows changed."""
    table = catalog.table(statement.table)
    scope = _table_scope(table)
    seen: set[str] = set()
    compiled = []
    for assignment in statement.assignments:
        index = table.column_index(assignment.column)
        if assignment.column in seen:
            raise SqlCatalogError(
                f"column {assignment.column!r} assigned twice in UPDATE "
                f"{table.name!r}"
            )
        seen.add(assignment.column)
        compiled.append((index, compile_expr(assignment.value, scope)))
    positions = _matching_positions(table, statement.where, mode)
    if not positions:
        return 0
    rows = table.rows
    new_rows = []
    for position in positions:
        old_row = rows[position]
        new_row = list(old_row)
        for index, value_fn in compiled:
            new_row[index] = value_fn(old_row)
        new_rows.append(new_row)
    return table.update_positions(positions, new_rows)


def execute_delete(
    catalog: Catalog, statement: Delete, mode: str = "row"
) -> int:
    """Apply one DELETE statement; returns the number of rows removed."""
    table = catalog.table(statement.table)
    positions = _matching_positions(table, statement.where, mode)
    if not positions:
        return 0
    return table.delete_positions(positions)
