"""Table statistics and selectivity estimation for the planner.

Statistics are gathered lazily from the :class:`~repro.sqlengine.catalog.
Catalog` (one pass per table) and cached per ``(table, row_count)`` so
that repeated planning against an unchanged table is free.  Estimates
use classic System-R style heuristics — ``1/distinct`` for equality,
measured null fractions for IS NULL, independence across conjuncts —
refined with **equi-width histograms**: every numeric/date column gets
a :class:`Histogram` over its non-NULL values, so range predicates
(``<``, ``<=``, ``>``, ``>=``, BETWEEN) against literals are estimated
from the actual value distribution instead of a fixed fraction,
equality against a literal scales ``1/distinct`` by the density of the
bin the literal falls into (skew-aware; zero outside the observed
range), and equi-join selectivity is damped by the overlap of the two
key ranges.  Shapes the histogram cannot see (non-literal comparisons,
LIKE, TEXT columns) fall back to the flat estimates.
"""

from __future__ import annotations

import datetime
import math
from dataclasses import dataclass

from repro.sqlengine.ast_nodes import (
    Between,
    BinaryOp,
    ColumnRef,
    Expr,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
)
from repro.sqlengine.catalog import Catalog
from repro.sqlengine.types import SqlType

#: default selectivities for predicate shapes the estimator cannot
#: inspect more precisely (same spirit as Selinger et al.'s constants)
RANGE_SELECTIVITY = 1 / 3
LIKE_SELECTIVITY = 1 / 4
DEFAULT_SELECTIVITY = 1 / 2

#: buckets per equi-width histogram (0 disables histogram collection)
HISTOGRAM_BINS = 16


@dataclass(frozen=True)
class Histogram:
    """Equi-width histogram over a column's non-NULL orderable values.

    Values are mapped to floats before binning (``date`` via
    ``toordinal``), so one histogram shape serves numeric and date
    columns alike.
    """

    low: float
    high: float
    counts: tuple
    total: int

    @classmethod
    def build(cls, values: list, bins: int) -> "Histogram | None":
        """Bin *values* (already floats) into *bins* buckets.

        Non-finite values (NaN, +/-inf) are excluded: they have no bin
        and would poison the min/max bounds.
        """
        if bins <= 0:
            return None
        if any(not math.isfinite(value) for value in values):
            values = [value for value in values if math.isfinite(value)]
        if not values:
            return None
        low = min(values)
        high = max(values)
        if low == high:
            return cls(low=low, high=high, counts=(len(values),),
                       total=len(values))
        width = (high - low) / bins
        counts = [0] * bins
        top = bins - 1
        for value in values:
            index = int((value - low) / width)
            counts[top if index > top else index] += 1
        return cls(low=low, high=high, counts=tuple(counts),
                   total=len(values))

    def fraction_below(self, value: float) -> float:
        """Estimated fraction of values ``<= value`` (linear within bins)."""
        if self.total == 0 or value < self.low:
            return 0.0
        if value >= self.high:
            return 1.0
        if self.low == self.high:
            return 1.0
        bins = len(self.counts)
        position = (value - self.low) / (self.high - self.low) * bins
        index = min(int(position), bins - 1)
        covered = sum(self.counts[:index])
        covered += self.counts[index] * (position - index)
        return min(1.0, covered / self.total)

    def fraction_between(self, low: float, high: float) -> float:
        """Estimated fraction of values in ``[low, high]``."""
        if high < low:
            return 0.0
        if self.low == self.high:
            return 1.0 if low <= self.low <= high else 0.0
        return max(0.0, self.fraction_below(high) - self.fraction_below(low))

    def bin_count(self, value: float) -> int:
        """Rows in the bin containing *value* (0 outside the range)."""
        if value < self.low or value > self.high:
            return 0
        if self.low == self.high:
            return self.total
        bins = len(self.counts)
        width = (self.high - self.low) / bins
        index = int((value - self.low) / width)
        return self.counts[min(index, bins - 1)]


@dataclass(frozen=True)
class ColumnStats:
    """Distinct/null counts plus the value histogram of one column."""

    distinct: int
    nulls: int
    histogram: "Histogram | None" = None


@dataclass(frozen=True)
class TableStats:
    """Row count plus per-column statistics of one table."""

    row_count: int
    columns: dict

    def column(self, name: str) -> "ColumnStats | None":
        return self.columns.get(name)

    def distinct(self, name: str) -> int:
        stats = self.columns.get(name)
        if stats is None or stats.distinct == 0:
            return 1
        return stats.distinct

    def null_fraction(self, name: str) -> float:
        stats = self.columns.get(name)
        if stats is None or self.row_count == 0:
            return 0.0
        return stats.nulls / self.row_count

    def histogram(self, name: str) -> "Histogram | None":
        stats = self.columns.get(name)
        return stats.histogram if stats is not None else None


def _as_number(value) -> "float | None":
    """Map a value onto the histogram axis; None if not orderable here."""
    if isinstance(value, bool) or value is None:
        return None
    if isinstance(value, (int, float)):
        number = float(value)
        return number if math.isfinite(number) else None
    if isinstance(value, datetime.date):
        return float(value.toordinal())
    if isinstance(value, str):
        try:
            return float(datetime.date.fromisoformat(value.strip()).toordinal())
        except ValueError:
            return None
    return None


class StatisticsProvider:
    """Lazily computes and caches :class:`TableStats` for a catalog.

    One entry per table, validated against the table's mutation version
    and the catalog's DDL version: statistics refresh automatically
    after inserts, updates, deletes or a DROP + re-CREATE, and stale
    snapshots never accumulate.  ``histogram_bins`` tunes the
    per-column equi-width histograms (0 disables them, restoring the
    fixed range constants).
    """

    def __init__(
        self, catalog: Catalog, histogram_bins: int = HISTOGRAM_BINS
    ) -> None:
        self._catalog = catalog
        self._bins = max(0, histogram_bins)
        self._cache: dict = {}  # table name -> (validity token, TableStats)

    def table_stats(self, table_name: str) -> TableStats:
        table = self._catalog.table(table_name)
        # the table version covers inserts, updates and deletes, so
        # histograms refresh after in-place mutations too; the DDL
        # version covers DROP + re-CREATE (which resets the counter)
        token = (table.version, self._catalog.ddl_version)
        cached = self._cache.get(table.name)
        if cached is not None and cached[0] == token:
            return cached[1]
        # the gather walks the *live* column lists, so hold the storage
        # lock for its duration: a concurrent DELETE compaction would
        # otherwise shrink an ArrayColumn mid-iteration (no-contention
        # no-op for the classic single-threaded setup)
        with table.read_guard():
            columns: dict = {}
            for index, column in enumerate(table.columns):
                values = set()
                numbers: list = []
                nulls = 0
                # histograms are collected type-directed: numeric columns
                # map straight onto the axis, DATE columns via toordinal;
                # TEXT/BOOLEAN columns carry no histogram (so the histogram
                # total is exactly the column's non-NULL count)
                is_date = column.sql_type is SqlType.DATE
                binned = self._bins and (
                    is_date
                    or column.sql_type in (SqlType.INTEGER, SqlType.REAL)
                )
                for value in table.column_data(index):
                    if value is None:
                        nulls += 1
                        continue
                    values.add(value)
                    if binned:
                        numbers.append(
                            float(value.toordinal()) if is_date else float(value)
                        )
                columns[column.name] = ColumnStats(
                    distinct=len(values),
                    nulls=nulls,
                    histogram=Histogram.build(numbers, self._bins),
                )
            stats = TableStats(row_count=len(table.rows), columns=columns)
        self._cache[table.name] = (token, stats)
        return stats


def predicate_selectivity(predicate: Expr, stats: TableStats) -> float:
    """Estimated fraction of rows of one table satisfying *predicate*."""
    if isinstance(predicate, Literal):
        return 1.0 if predicate.value is True else 0.0
    if isinstance(predicate, BinaryOp):
        if predicate.op == "AND":
            return predicate_selectivity(
                predicate.left, stats
            ) * predicate_selectivity(predicate.right, stats)
        if predicate.op == "OR":
            left = predicate_selectivity(predicate.left, stats)
            right = predicate_selectivity(predicate.right, stats)
            return min(1.0, left + right - left * right)
        if predicate.op in ("=", "<>"):
            column = _single_column(predicate)
            if column is not None:
                equality = _equality_selectivity(predicate, column, stats)
                return equality if predicate.op == "=" else 1.0 - equality
            return DEFAULT_SELECTIVITY
        if predicate.op in ("<", "<=", ">", ">="):
            estimate = _range_selectivity(predicate, stats)
            return estimate if estimate is not None else RANGE_SELECTIVITY
        return DEFAULT_SELECTIVITY
    if isinstance(predicate, UnaryOp) and predicate.op == "NOT":
        return 1.0 - predicate_selectivity(predicate.operand, stats)
    if isinstance(predicate, Like):
        inside = LIKE_SELECTIVITY
        return 1.0 - inside if predicate.negated else inside
    if isinstance(predicate, InList):
        column = _in_list_column(predicate)
        if column is not None:
            inside = min(1.0, len(predicate.items) / stats.distinct(column))
        else:
            inside = DEFAULT_SELECTIVITY
        return 1.0 - inside if predicate.negated else inside
    if isinstance(predicate, Between):
        inside = _between_selectivity(predicate, stats)
        if inside is None:
            inside = RANGE_SELECTIVITY
        return 1.0 - inside if predicate.negated else inside
    if isinstance(predicate, IsNull):
        refs = [predicate.operand] if isinstance(predicate.operand, ColumnRef) else []
        if refs:
            fraction = stats.null_fraction(refs[0].column)
            return 1.0 - fraction if predicate.negated else fraction
        return DEFAULT_SELECTIVITY
    return DEFAULT_SELECTIVITY


def _equality_selectivity(
    predicate: BinaryOp, column: str, stats: TableStats
) -> float:
    """Histogram-aware estimate for ``col = literal``.

    The classic ``1/distinct`` assumes every value is equally frequent;
    with a histogram, the estimate uses the *density of the bin the
    literal falls into* instead: the bin's row count divided by the
    expected number of distinct values per bin (distinct values assumed
    evenly spread over the bins).  Hot values in skewed columns
    estimate proportionally higher, values in sparse bins lower, and a
    literal outside the observed range estimates zero.  Without a
    histogram (TEXT/BOOLEAN columns, or ``histogram_bins=0``) the flat
    ``1/distinct`` path is unchanged.
    """
    flat = 1.0 / stats.distinct(column)
    shape = _column_literal(predicate)
    if shape is None:
        return flat
    histogram = stats.histogram(column)
    number = _as_number(shape[2])
    if histogram is None or number is None or stats.row_count == 0:
        return flat
    in_bin = histogram.bin_count(number)
    if in_bin == 0:
        return 0.0
    distinct_per_bin = max(
        1.0, stats.distinct(column) / len(histogram.counts)
    )
    estimate = in_bin / distinct_per_bin / stats.row_count
    return max(0.0, min(1.0, estimate))


def _range_selectivity(
    predicate: BinaryOp, stats: TableStats
) -> "float | None":
    """Histogram estimate for ``col <op> literal``; None without one."""
    shape = _column_literal(predicate)
    if shape is None:
        return None
    column, op, value = shape
    histogram = stats.histogram(column)
    number = _as_number(value)
    if histogram is None or number is None or stats.row_count == 0:
        return None
    below = histogram.fraction_below(number)
    if op in ("<", "<="):
        inside = below
    else:
        inside = 1.0 - below
    # rows with NULL in the column never satisfy a comparison
    non_null = histogram.total / stats.row_count
    return max(0.0, min(1.0, inside * non_null))


def _between_selectivity(
    predicate: Between, stats: TableStats
) -> "float | None":
    if not isinstance(predicate.operand, ColumnRef):
        return None
    if not (
        isinstance(predicate.low, Literal)
        and isinstance(predicate.high, Literal)
    ):
        return None
    histogram = stats.histogram(predicate.operand.column)
    low = _as_number(predicate.low.value)
    high = _as_number(predicate.high.value)
    if histogram is None or low is None or high is None or stats.row_count == 0:
        return None
    inside = histogram.fraction_between(low, high)
    non_null = histogram.total / stats.row_count
    return max(0.0, min(1.0, inside * non_null))


def _single_column(predicate: BinaryOp) -> "str | None":
    """The column name of a ``col <op> literal`` comparison, if that shape."""
    left, right = predicate.left, predicate.right
    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        return left.column
    if isinstance(right, ColumnRef) and isinstance(left, Literal):
        return right.column
    return None


def _column_literal(predicate: BinaryOp) -> "tuple | None":
    """``(column, op, literal value)`` with the column on the left."""
    left, right = predicate.left, predicate.right
    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        return left.column, predicate.op, right.value
    if isinstance(right, ColumnRef) and isinstance(left, Literal):
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
        return (
            right.column,
            flipped.get(predicate.op, predicate.op),
            left.value,
        )
    return None


def _in_list_column(predicate: InList) -> "str | None":
    if isinstance(predicate.operand, ColumnRef):
        return predicate.operand.column
    return None


def join_selectivity(
    left_stats: TableStats, left_column: str, right_stats: TableStats, right_column: str
) -> float:
    """Equi-join selectivity: ``1 / max(distinct)``, damped by overlap.

    When both join keys carry histograms, the classic estimate is
    multiplied by the fraction of each side's values falling inside the
    other side's range — disjoint key ranges estimate (near) zero
    matches, partially overlapping ranges shrink proportionally, and
    fully nested ranges reduce to the classic formula.
    """
    base = 1.0 / max(
        left_stats.distinct(left_column), right_stats.distinct(right_column), 1
    )
    left_hist = left_stats.histogram(left_column)
    right_hist = right_stats.histogram(right_column)
    if (
        left_hist is None
        or right_hist is None
        or left_hist.total == 0
        or right_hist.total == 0
    ):
        return base
    low = max(left_hist.low, right_hist.low)
    high = min(left_hist.high, right_hist.high)
    if high < low:
        return 0.0
    overlap = left_hist.fraction_between(low, high) * right_hist.fraction_between(
        low, high
    )
    return base * max(0.0, min(1.0, overlap))
