"""Table statistics and selectivity estimation for the planner.

Statistics are gathered lazily from the :class:`~repro.sqlengine.catalog.
Catalog` (one pass per table) and cached per ``(table, row_count)`` so
that repeated planning against an unchanged table is free.  Estimates
use classic System-R style heuristics: ``1/distinct`` for equality,
fixed fractions for ranges and LIKE, measured null fractions for IS
NULL, and independence across conjuncts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sqlengine.ast_nodes import (
    Between,
    BinaryOp,
    ColumnRef,
    Expr,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
)
from repro.sqlengine.catalog import Catalog

#: default selectivities for predicate shapes the estimator cannot
#: inspect more precisely (same spirit as Selinger et al.'s constants)
RANGE_SELECTIVITY = 1 / 3
LIKE_SELECTIVITY = 1 / 4
DEFAULT_SELECTIVITY = 1 / 2


@dataclass(frozen=True)
class ColumnStats:
    """Distinct/null counts of one column."""

    distinct: int
    nulls: int


@dataclass(frozen=True)
class TableStats:
    """Row count plus per-column statistics of one table."""

    row_count: int
    columns: dict

    def column(self, name: str) -> "ColumnStats | None":
        return self.columns.get(name)

    def distinct(self, name: str) -> int:
        stats = self.columns.get(name)
        if stats is None or stats.distinct == 0:
            return 1
        return stats.distinct

    def null_fraction(self, name: str) -> float:
        stats = self.columns.get(name)
        if stats is None or self.row_count == 0:
            return 0.0
        return stats.nulls / self.row_count


class StatisticsProvider:
    """Lazily computes and caches :class:`TableStats` for a catalog.

    One entry per table, validated against the row count and the
    catalog's DDL version: statistics refresh automatically after
    inserts or a DROP + re-CREATE, and stale snapshots never
    accumulate.
    """

    def __init__(self, catalog: Catalog) -> None:
        self._catalog = catalog
        self._cache: dict = {}  # table name -> (validity token, TableStats)

    def table_stats(self, table_name: str) -> TableStats:
        table = self._catalog.table(table_name)
        token = (len(table.rows), self._catalog.ddl_version)
        cached = self._cache.get(table.name)
        if cached is not None and cached[0] == token:
            return cached[1]
        columns: dict = {}
        for index, column in enumerate(table.columns):
            values = set()
            nulls = 0
            for row in table.rows:
                value = row[index]
                if value is None:
                    nulls += 1
                else:
                    values.add(value)
            columns[column.name] = ColumnStats(distinct=len(values), nulls=nulls)
        stats = TableStats(row_count=len(table.rows), columns=columns)
        self._cache[table.name] = (token, stats)
        return stats


def predicate_selectivity(predicate: Expr, stats: TableStats) -> float:
    """Estimated fraction of rows of one table satisfying *predicate*."""
    if isinstance(predicate, Literal):
        return 1.0 if predicate.value is True else 0.0
    if isinstance(predicate, BinaryOp):
        if predicate.op == "AND":
            return predicate_selectivity(
                predicate.left, stats
            ) * predicate_selectivity(predicate.right, stats)
        if predicate.op == "OR":
            left = predicate_selectivity(predicate.left, stats)
            right = predicate_selectivity(predicate.right, stats)
            return min(1.0, left + right - left * right)
        if predicate.op in ("=", "<>"):
            column = _single_column(predicate)
            if column is not None:
                equality = 1.0 / stats.distinct(column)
                return equality if predicate.op == "=" else 1.0 - equality
            return DEFAULT_SELECTIVITY
        if predicate.op in ("<", "<=", ">", ">="):
            return RANGE_SELECTIVITY
        return DEFAULT_SELECTIVITY
    if isinstance(predicate, UnaryOp) and predicate.op == "NOT":
        return 1.0 - predicate_selectivity(predicate.operand, stats)
    if isinstance(predicate, Like):
        inside = LIKE_SELECTIVITY
        return 1.0 - inside if predicate.negated else inside
    if isinstance(predicate, InList):
        column = _in_list_column(predicate)
        if column is not None:
            inside = min(1.0, len(predicate.items) / stats.distinct(column))
        else:
            inside = DEFAULT_SELECTIVITY
        return 1.0 - inside if predicate.negated else inside
    if isinstance(predicate, Between):
        inside = RANGE_SELECTIVITY
        return 1.0 - inside if predicate.negated else inside
    if isinstance(predicate, IsNull):
        refs = [predicate.operand] if isinstance(predicate.operand, ColumnRef) else []
        if refs:
            fraction = stats.null_fraction(refs[0].column)
            return 1.0 - fraction if predicate.negated else fraction
        return DEFAULT_SELECTIVITY
    return DEFAULT_SELECTIVITY


def _single_column(predicate: BinaryOp) -> "str | None":
    """The column name of a ``col <op> literal`` comparison, if that shape."""
    left, right = predicate.left, predicate.right
    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        return left.column
    if isinstance(right, ColumnRef) and isinstance(left, Literal):
        return right.column
    return None


def _in_list_column(predicate: InList) -> "str | None":
    if isinstance(predicate.operand, ColumnRef):
        return predicate.operand.column
    return None


def join_selectivity(
    left_stats: TableStats, left_column: str, right_stats: TableStats, right_column: str
) -> float:
    """Equi-join selectivity: ``1 / max(distinct(a), distinct(b))``."""
    return 1.0 / max(
        left_stats.distinct(left_column), right_stats.distinct(right_column), 1
    )
