"""Cost-aware query planner: lower → optimize → compile → (cache) → run.

The planner turns a parsed :class:`~repro.sqlengine.ast_nodes.Select`
into a logical plan DAG (:mod:`.logical`), optimizes it with rule-based
rewrites driven by catalog statistics (:mod:`.optimizer`, :mod:`.stats`),
compiles it into physical operators (:mod:`.physical`) and memoizes the
result in an LRU plan cache (:mod:`.cache`) keyed by the normalized SQL
text.  Each cache entry is stamped with the mutation versions of
exactly the tables its plan scans, so DML on one table invalidates only
the plans that read it — prepared plans for untouched tables survive.
``EXPLAIN`` output is rendered from the optimized logical plan
(:mod:`.explain`), annotated with the execution mode each operator runs
in.

Physical compilation targets one of two engines: the **vectorized
batch engine** (the default — operators exchange ~1024-row column
batches sliced straight out of the tables' columnar storage) or the
classic **row** volcano engine (one tuple at a time; the
compatibility/debug escape hatch).  Both produce byte-identical
results.

Knobs:

* ``cache_size`` — prepared plans kept per planner (default 128; 0
  disables caching),
* ``optimize`` — set False for the canonical (naive) plan, used by the
  planner-speedup benchmark as its baseline,
* ``execution_mode`` — ``"batch"`` (default) or ``"row"``,
* ``fused`` — compile filter/project expression chains into one
  generated function per batch (default True; batch mode only),
* ``parallel_workers`` — morsel-driven parallel scan pipelines when
  > 1 (default 1 = serial; batch mode only).

Every knob setter drops the plan cache when the value actually
changes, because cached plans bake the old configuration in.
"""

from __future__ import annotations

from repro.errors import SqlExecutionError
from repro.obs.metrics import registry as _metrics_registry
from repro.obs.tracing import current_tracer
from repro.sqlengine.ast_nodes import Select
from repro.sqlengine.catalog import Catalog
from repro.sqlengine.planner.analyze import Instrumenter
from repro.sqlengine.planner.cache import (
    DEFAULT_PLAN_CACHE_SIZE,
    PlanCache,
    PlanCacheStats,
)
from repro.sqlengine.planner.explain import render_plan
from repro.sqlengine.planner.logical import (
    LogicalNode,
    lower_select,
    referenced_tables,
)
from repro.sqlengine.planner.optimizer import optimize_plan
from repro.sqlengine.planner.parallel import MAX_PARALLEL_WORKERS
from repro.sqlengine.planner.physical import (
    BATCH_SIZE,
    EXECUTION_MODES,
    PreparedPlan,
    build_physical,
)
from repro.sqlengine.planner.stats import StatisticsProvider
from repro.sqlengine.segments import current_pins, pinned

__all__ = [
    "BATCH_SIZE",
    "DEFAULT_EXECUTION_MODE",
    "DEFAULT_PLAN_CACHE_SIZE",
    "EXECUTION_MODES",
    "MAX_PARALLEL_WORKERS",
    "Instrumenter",
    "PlanCache",
    "PlanCacheStats",
    "PreparedPlan",
    "QueryPlanner",
    "build_physical",
    "lower_select",
    "optimize_plan",
    "referenced_tables",
    "render_plan",
]

#: the engine new planners compile for unless told otherwise
DEFAULT_EXECUTION_MODE = "batch"

_METRICS = _metrics_registry()
_PARALLEL_WORKERS_GAUGE = _METRICS.gauge("engine.parallel_workers")


def _check_fused(fused) -> bool:
    if not isinstance(fused, bool):
        raise SqlExecutionError(
            f"fused must be True or False, got {fused!r}"
        )
    return fused


def _check_parallel_workers(workers) -> int:
    if not isinstance(workers, int) or isinstance(workers, bool) or not (
        1 <= workers <= MAX_PARALLEL_WORKERS
    ):
        raise SqlExecutionError(
            "parallel_workers must be an integer between 1 and "
            f"{MAX_PARALLEL_WORKERS}, got {workers!r}"
        )
    return workers


class _CachedPlan:
    """One plan-cache entry: the compiled plan plus its validity stamp."""

    __slots__ = ("plan", "ddl_version", "table_versions")

    def __init__(self, plan, ddl_version, table_versions) -> None:
        self.plan = plan
        self.ddl_version = ddl_version
        #: ``(table name, Table.version)`` for every table the plan scans
        self.table_versions = table_versions


class QueryPlanner:
    """Plans and executes SELECT statements against one catalog."""

    def __init__(
        self,
        catalog: Catalog,
        cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
        optimize: bool = True,
        execution_mode: str = DEFAULT_EXECUTION_MODE,
        fused: bool = True,
        parallel_workers: int = 1,
    ) -> None:
        if execution_mode not in EXECUTION_MODES:
            raise SqlExecutionError(
                f"unknown execution mode {execution_mode!r} (choose from "
                f"{', '.join(EXECUTION_MODES)})"
            )
        self.catalog = catalog
        self.statistics = StatisticsProvider(catalog)
        self.cache = PlanCache(cache_size)
        self._optimize = optimize
        self._execution_mode = execution_mode
        self._fused = _check_fused(fused)
        self._parallel_workers = _check_parallel_workers(parallel_workers)
        _PARALLEL_WORKERS_GAUGE.set(self._parallel_workers)

    @property
    def execution_mode(self) -> str:
        return self._execution_mode

    @property
    def fused(self) -> bool:
        return self._fused

    @property
    def parallel_workers(self) -> int:
        return self._parallel_workers

    def set_execution_mode(self, mode: str) -> None:
        """Switch engines; cached plans for the old mode are dropped."""
        if mode not in EXECUTION_MODES:
            raise SqlExecutionError(
                f"unknown execution mode {mode!r} (choose from "
                f"{', '.join(EXECUTION_MODES)})"
            )
        if mode == self._execution_mode:
            return
        self._execution_mode = mode
        self.cache.clear()

    def set_fused(self, fused: bool) -> None:
        """Toggle fused expression codegen; drops cached plans."""
        fused = _check_fused(fused)
        if fused == self._fused:
            return
        self._fused = fused
        self.cache.clear()

    def set_parallel_workers(self, workers: int) -> None:
        """Set the morsel worker count; drops cached plans."""
        workers = _check_parallel_workers(workers)
        if workers == self._parallel_workers:
            return
        self._parallel_workers = workers
        _PARALLEL_WORKERS_GAUGE.set(workers)
        self.cache.clear()

    # ------------------------------------------------------------------
    def prepare(self, select: Select) -> PreparedPlan:
        """Return a compiled plan, reusing a cached one when possible.

        Cache entries are keyed by the normalized SQL alone and stamped
        with the versions of exactly the tables the plan scans, so a
        write to one table invalidates only the plans that read it —
        prepared plans for untouched tables survive unrelated DML.
        The DDL version is part of the stamp because a DROP + re-CREATE
        swaps the underlying table object out from under the compiled
        operators.
        """
        key = select.to_sql()
        with current_tracer().span("plan") as span:
            entry = self.cache.get(key, validate=self._entry_is_fresh)
            if entry is not None:
                span.set(cache="hit")
                return entry.plan
            span.set(cache="miss")
            logical = self.plan_logical(select)
            plan = build_physical(
                logical,
                self.catalog,
                mode=self._execution_mode,
                fused=self._fused,
                parallel_workers=self._parallel_workers,
            )
            tables = referenced_tables(logical)
            self.cache.put(
                key,
                _CachedPlan(
                    plan=plan,
                    ddl_version=self.catalog.ddl_version,
                    table_versions=self.catalog.table_versions(tables),
                ),
            )
            return plan

    def prepare_instrumented(self, select: Select):
        """A fresh instrumented plan plus its :class:`Instrumenter`.

        Built outside the plan cache on purpose: the counting/timing
        shims would tax every later execution of a cached plan, and
        their stats are single-use.
        """
        logical = self.plan_logical(select)
        instrumenter = Instrumenter()
        plan = build_physical(
            logical,
            self.catalog,
            mode=self._execution_mode,
            instrument=instrumenter,
            fused=self._fused,
        )
        return plan, instrumenter

    def _entry_is_fresh(self, entry: "_CachedPlan") -> bool:
        if entry.ddl_version != self.catalog.ddl_version:
            return False
        return self.catalog.table_versions(
            name for name, __ in entry.table_versions
        ) == entry.table_versions

    def plan_logical(self, select: Select) -> LogicalNode:
        """Lower (and optionally optimize) without compiling or caching."""
        logical = lower_select(self.catalog, select)
        if self._optimize:
            logical = optimize_plan(logical, self.catalog, self.statistics)
        return logical

    # ------------------------------------------------------------------
    def _pin_scope(self, plan: PreparedPlan) -> pinned:
        """A pin scope for one execution of *plan*.

        With segmented storage enabled, every table the plan reads is
        snapshot-pinned in one atomic step so the whole execution —
        including morsel workers — observes a single consistent state
        regardless of concurrent DML.  With flat storage this is the
        no-op ``pinned(None)``.
        """
        if not self.catalog.segment_rows:
            return pinned(None)
        outer = current_pins()
        pins = self.catalog.pin_tables(referenced_tables(plan.logical))
        if outer:
            # a caller-installed pin scope (e.g. a multi-statement
            # consistent read) wins for the tables it covers; tables it
            # doesn't cover still get fresh per-execution snapshots
            merged = dict(pins or {})
            merged.update(outer)
            pins = merged or None
        return pinned(pins
        )

    def execute(self, select: Select):
        plan = self.prepare(select)
        with current_tracer().span("execute", mode=plan.mode) as span:
            with self._pin_scope(plan):
                if plan.parallel_nodes:
                    with current_tracer().span(
                        "parallel-execute", workers=self._parallel_workers
                    ):
                        result = plan.execute()
                else:
                    result = plan.execute()
            span.set(rows=len(result.rows))
        return result

    def explain(self, select: Select, analyze: bool = False) -> str:
        """The plan tree; ``analyze=True`` *runs the query* and adds
        each operator's actual rows/batches and self-time next to the
        optimizer's estimates (classic EXPLAIN ANALYZE semantics)."""
        if not analyze:
            plan = self.prepare(select)
            return render_plan(
                plan.logical,
                mode=self._execution_mode,
                catalog=self.catalog,
                parallel=plan.parallel_nodes,
            )
        plan, instrumenter = self.prepare_instrumented(select)
        with self._pin_scope(plan):
            plan.execute()
        return render_plan(
            plan.logical,
            mode=self._execution_mode,
            catalog=self.catalog,
            analyze=instrumenter,
        )
