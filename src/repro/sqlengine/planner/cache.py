"""An LRU cache of prepared plans with per-entry staleness validation.

SODA generates many template-shaped statements (same structure,
different literals are still frequent repeats across searches), so
skipping lower + optimize + compile for a statement seen before is a
direct win on the hot path.  Keys are the *normalized SQL* (the
canonical ``Select.to_sql()`` rendering of the parsed statement, which
collapses whitespace/keyword-case differences); staleness is handled by
an optional per-lookup ``validate`` callback rather than by baking a
whole-catalog fingerprint into the key, so the planner can check a
cached plan against exactly the tables it scans — a write to one table
drops only the plans that touch it, and prepared plans for every other
table keep serving hits.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.concurrency import SharedRLock
from repro.obs.metrics import registry as _metrics_registry

#: default number of prepared plans kept per database
DEFAULT_PLAN_CACHE_SIZE = 128


@dataclass
class PlanCacheStats:
    """Counters exposed for benchmarks and monitoring."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: entries dropped because validation found them stale
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PlanCache:
    """A bounded mapping from plan keys to prepared plans (LRU eviction).

    Thread-safe: concurrent serving sessions share one planner, so the
    LRU reorder in ``get`` and the insert/evict step in ``put`` run
    under a lock (an OrderedDict mutated from two threads at once can
    corrupt its ordering invariants).  Reading ``len()`` from a
    non-owner thread — the metrics gauges do — takes the same lock.
    """

    def __init__(self, capacity: int = DEFAULT_PLAN_CACHE_SIZE) -> None:
        self.capacity = max(0, capacity)
        self._entries: OrderedDict = OrderedDict()
        self._lock = SharedRLock()
        self.stats = PlanCacheStats()
        # per-cache stats stay the public shape; the same increments are
        # mirrored into the process-wide registry (handles cached here)
        self._metrics = _metrics_registry()
        self._hits_counter = self._metrics.counter("plan_cache.hits")
        self._misses_counter = self._metrics.counter("plan_cache.misses")
        self._evictions_counter = self._metrics.counter("plan_cache.evictions")
        self._invalidations_counter = self._metrics.counter(
            "plan_cache.invalidations"
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key, validate=None):
        """The cached entry for *key*, or None.

        With *validate* (a predicate over the stored entry), a stale
        entry is dropped and counted as an invalidation + miss instead
        of being returned.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                if self._metrics.enabled:
                    self._misses_counter.inc()
                return None
            if validate is not None and not validate(entry):
                del self._entries[key]
                self.stats.invalidations += 1
                self.stats.misses += 1
                if self._metrics.enabled:
                    self._invalidations_counter.inc()
                    self._misses_counter.inc()
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            if self._metrics.enabled:
                self._hits_counter.inc()
            return entry

    def put(self, key, plan) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = plan
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
                if self._metrics.enabled:
                    self._evictions_counter.inc()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
