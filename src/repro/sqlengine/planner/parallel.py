"""Morsel-driven parallel execution for the vectorized engine.

The exchange design follows the morsel-driven parallelism literature
(HyPer-style): the scan's row range is cut into fixed-size *morsels*
(a whole number of :data:`~repro.sqlengine.planner.physical.BATCH_SIZE`
batches, so the batch boundaries of a parallel run are identical to the
serial run), and each morsel is pushed through a copy-free pipeline of
the plan's own operators — ``BatchScanOp.batches_range`` at the leaf,
then each stage's ``process`` over the morsel's batch stream — on a
worker pool.  Results are re-emitted strictly in morsel order, so every
downstream operator sees exactly the batch sequence the serial engine
would have produced and byte-identical output follows by construction.

Error parity is handled the same way: a worker's exception is captured
with its morsel and re-raised when that morsel's slot comes up in the
ordered merge.  The earliest failing morsel therefore surfaces first —
the same exception, from the same row, that serial execution would have
hit — and later morsels' work (or errors) are discarded, exactly as if
execution had stopped there.

Operators that cannot stream (aggregation, hash-join build) instead run
one *task* per morsel via :meth:`ParallelChainOp.run_tasks` — partial
aggregation states or partial hash tables built inside the workers and
merged deterministically in morsel order by the consuming operator.

Everything here is architecture, not magic: under CPython's GIL the
speedup on pure-Python workloads is bounded, so the worker count knob
(``Database(parallel_workers=)``) defaults to 1 — the serial path,
untouched.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterator

from repro.obs.metrics import registry as _metrics_registry
from repro.resilience.deadline import current_deadline, deadline_scope
from repro.sqlengine.segments import current_pins, pinned

#: scan batches per morsel — a multiple of BATCH_SIZE rows, so parallel
#: batch boundaries line up exactly with the serial scan's
MORSEL_BATCHES = 8

#: upper bound a Database/QueryPlanner will accept for parallel_workers
MAX_PARALLEL_WORKERS = 64

_METRICS = _metrics_registry()
_MORSELS_DISPATCHED = _METRICS.counter("engine.morsels_dispatched")


class MorselDispatcher:
    """Run per-morsel tasks on a worker pool, yielding results in order.

    The pool is created per ``run_ordered`` call and torn down when the
    ordered stream is exhausted or abandoned, so plans hold no threads
    between executions.  At most ``2 * workers`` morsels are in flight
    at a time, which bounds memory to a few morsels' worth of batches
    regardless of table size.
    """

    def __init__(self, workers: int) -> None:
        self.workers = workers

    def run_ordered(self, tasks: list) -> Iterator:
        if len(tasks) <= 1:
            for task in tasks:
                yield task()
            return
        deadline = current_deadline()
        pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="morsel"
        )
        try:
            ahead = 2 * self.workers
            in_flight: deque = deque(
                pool.submit(task) for task in tasks[:ahead]
            )
            pending = iter(tasks[ahead:])
            while in_flight:
                # a spent deadline stops the dispatch loop before more
                # morsels are submitted; in-flight workers hit their own
                # per-batch checks and the pool teardown reaps them
                if deadline is not None:
                    deadline.check("morsel")
                future = in_flight.popleft()
                result = future.result()  # re-raises in morsel order
                for task in pending:
                    in_flight.append(pool.submit(task))
                    break
                yield result
        finally:
            pool.shutdown(wait=True, cancel_futures=True)


class ParallelChainOp:
    """Exchange operator over a scan-rooted stage chain.

    *scan* must expose ``row_count()`` and ``batches_range(start,
    stop)``; each entry of *stages* (``BatchFilterOp`` today) exposes
    ``process(stream)``.  ``batches()`` makes the exchange a drop-in
    :class:`~repro.sqlengine.planner.physical.BatchOperator`;
    ``run_tasks(post)`` is the partial-state interface for consumers
    that fold each morsel inside the worker (partial aggregation,
    partitioned hash-join build).
    """

    def __init__(self, dispatcher: MorselDispatcher, scan, stages) -> None:
        self._dispatcher = dispatcher
        self._scan = scan
        self._stages = list(stages)
        last = self._stages[-1] if self._stages else scan
        self.scope = last.scope
        self.parallel_workers = dispatcher.workers

    def _morsel_tasks(self, post: Callable) -> list:
        scan = self._scan
        stages = self._stages
        from repro.sqlengine.planner.physical import BATCH_SIZE

        morsel_rows = MORSEL_BATCHES * BATCH_SIZE
        # every morsel must read the same snapshot: capture the
        # coordinator's installed pins (or pin ad hoc for a segmented
        # scan outside a query scope) and re-install them inside each
        # worker thread, so partitioning and all workers agree on one
        # frozen row space even under concurrent DML
        pins = current_pins()
        table = getattr(scan, "_table", None)
        if pins is None and table is not None and table.segmented:
            pins = {id(table): table.pin()}
        with pinned(pins):
            total = scan.row_count()
        # the coordinator's request deadline rides into every worker
        # thread, so a morsel's per-batch scan checks honour it too
        deadline = current_deadline()

        def make(start: int, stop: int) -> Callable:
            def task():
                with deadline_scope(deadline), pinned(pins):
                    stream = scan.batches_range(start, stop)
                    for stage in stages:
                        stream = stage.process(stream)
                    return post(stream)

            return task

        tasks = [
            make(start, min(start + morsel_rows, total))
            for start in range(0, total, morsel_rows)
        ]
        if not tasks:  # empty table: one task so `post` still runs
            tasks.append(make(0, 0))
        return tasks

    def run_tasks(self, post: Callable) -> Iterator:
        """Run ``post(morsel_batch_stream)`` per morsel; ordered results."""
        tasks = self._morsel_tasks(post)
        if _METRICS.enabled:
            _MORSELS_DISPATCHED.inc(len(tasks))
        return self._dispatcher.run_ordered(tasks)

    def batches(self) -> Iterator[tuple]:
        for result in self.run_tasks(list):
            yield from result


class ParallelProjectOp:
    """Presentation exchange: project each morsel inside the workers."""

    def __init__(self, chain: ParallelChainOp, project) -> None:
        self._chain = chain
        self._project = project
        self.columns = project.columns
        self.scope = project.scope
        self.agg_slots = project.agg_slots
        self.parallel_workers = chain.parallel_workers

    def pres_batches(self) -> Iterator[tuple]:
        process = self._project.process
        for result in self._chain.run_tasks(
            lambda stream: list(process(stream))
        ):
            yield from result
