"""Rule-based plan optimizer.

Works on the canonical plan produced by ``lower_select`` and applies,
in order:

1. **constant folding** over WHERE/ON predicates (literal-only
   subexpressions are evaluated at plan time; always-true conjuncts are
   dropped),
2. **predicate classification + pushdown**: each conjunct becomes a
   single-table scan filter, a recognised equi-join predicate, or a
   residual filter applied as soon as its bindings are joined,
3. **join ordering** driven by table statistics: scans are combined
   greedily, starting from the smallest estimated relation and always
   picking the connected table that minimises the estimated join
   cardinality (falling back to a cross join with the smallest pending
   relation),
4. **projection pruning**: scan outputs are narrowed to the columns the
   rest of the plan actually references (skipped when ``SELECT *``
   needs everything).

Classification deliberately resolves unqualified columns against the
*inner* tables only, mirroring the pre-planner executor: predicates on
LEFT-joined tables stay residual and run after the outer join.
"""

from __future__ import annotations

from repro.errors import SqlError
from repro.sqlengine.ast_nodes import (
    AGGREGATE_FUNCTIONS,
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
    collect_column_refs,
)
from repro.sqlengine.catalog import Catalog
from repro.sqlengine.expressions import Scope, compile_expr
from repro.sqlengine.planner.logical import (
    EquiPredicate,
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLeftJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalTopN,
)
from repro.sqlengine.planner.stats import (
    DEFAULT_SELECTIVITY,
    StatisticsProvider,
    TableStats,
    join_selectivity,
    predicate_selectivity,
)


# ---------------------------------------------------------------------------
# constant folding
# ---------------------------------------------------------------------------

_EMPTY_SCOPE = Scope([])


def fold_constants(expr: Expr) -> Expr:
    """Fold literal-only subexpressions of *expr* into ``Literal`` nodes.

    Aggregate calls are left untouched (their node identity maps them to
    result slots later).  Subexpressions whose evaluation raises (e.g.
    ``1 / 0``) are left unfolded so the error still surfaces at
    execution time, exactly as before.
    """
    if isinstance(expr, (Literal, ColumnRef)):
        return expr
    if isinstance(expr, FuncCall):
        if expr.name in AGGREGATE_FUNCTIONS:
            return expr
        folded = FuncCall(
            name=expr.name,
            args=tuple(fold_constants(arg) for arg in expr.args),
            star=expr.star,
            distinct=expr.distinct,
        )
        return _try_evaluate(folded)
    if isinstance(expr, BinaryOp):
        folded = BinaryOp(
            op=expr.op,
            left=fold_constants(expr.left),
            right=fold_constants(expr.right),
        )
        return _try_evaluate(folded)
    if isinstance(expr, UnaryOp):
        folded = UnaryOp(op=expr.op, operand=fold_constants(expr.operand))
        return _try_evaluate(folded)
    if isinstance(expr, Like):
        folded = Like(
            operand=fold_constants(expr.operand),
            pattern=fold_constants(expr.pattern),
            negated=expr.negated,
        )
        return _try_evaluate(folded)
    if isinstance(expr, InList):
        folded = InList(
            operand=fold_constants(expr.operand),
            items=tuple(fold_constants(item) for item in expr.items),
            negated=expr.negated,
        )
        return _try_evaluate(folded)
    if isinstance(expr, Between):
        folded = Between(
            operand=fold_constants(expr.operand),
            low=fold_constants(expr.low),
            high=fold_constants(expr.high),
            negated=expr.negated,
        )
        return _try_evaluate(folded)
    if isinstance(expr, IsNull):
        folded = IsNull(operand=fold_constants(expr.operand), negated=expr.negated)
        return _try_evaluate(folded)
    if isinstance(expr, CaseWhen):
        return CaseWhen(
            branches=tuple(
                (fold_constants(condition), fold_constants(value))
                for condition, value in expr.branches
            ),
            default=(
                fold_constants(expr.default) if expr.default is not None else None
            ),
        )
    return expr


def _try_evaluate(expr: Expr) -> Expr:
    """Evaluate *expr* now if it references no columns or aggregates."""
    if collect_column_refs(expr) or _contains_func(expr):
        return expr
    try:
        value = compile_expr(expr, _EMPTY_SCOPE)(())
    except SqlError:
        return expr
    return Literal(value)


def _contains_func(expr: Expr) -> bool:
    """True if *expr* still contains any function call (kept unfolded)."""
    if isinstance(expr, FuncCall):
        return True
    from repro.sqlengine.planner.logical import expr_children

    return any(_contains_func(child) for child in expr_children(expr))


# ---------------------------------------------------------------------------
# conjunct classification (inner-table scopes only, as before the planner)
# ---------------------------------------------------------------------------


def bindings_of(refs, columns_by_binding: dict) -> "set | None":
    """The bindings referenced, or None if any ref is unresolvable."""
    found: set = set()
    for ref in refs:
        if ref.table is not None:
            if ref.table not in columns_by_binding:
                return None
            found.add(ref.table)
            continue
        owners = [
            binding
            for binding, columns in columns_by_binding.items()
            if ref.column in columns
        ]
        if len(owners) != 1:
            return None
        found.add(owners[0])
    return found


def as_equi_predicate(
    conjunct: Expr, columns_by_binding: dict
) -> "EquiPredicate | None":
    """Recognise ``a.x = b.y`` between two different bindings."""
    if not (isinstance(conjunct, BinaryOp) and conjunct.op == "="):
        return None
    left, right = conjunct.left, conjunct.right
    if not (isinstance(left, ColumnRef) and isinstance(right, ColumnRef)):
        return None
    left_binding = _owner_of(left, columns_by_binding)
    right_binding = _owner_of(right, columns_by_binding)
    if left_binding is None or right_binding is None:
        return None
    if left_binding == right_binding:
        return None
    return EquiPredicate(left_binding, left, right_binding, right, conjunct)


def _owner_of(ref: ColumnRef, columns_by_binding: dict) -> "str | None":
    if ref.table is not None:
        return ref.table if ref.table in columns_by_binding else None
    owners = [
        binding
        for binding, columns in columns_by_binding.items()
        if ref.column in columns
    ]
    return owners[0] if len(owners) == 1 else None


# ---------------------------------------------------------------------------
# the optimizer
# ---------------------------------------------------------------------------


def optimize_plan(
    root: LogicalNode, catalog: Catalog, stats_provider: StatisticsProvider
) -> LogicalNode:
    """Optimize a canonical plan in place and return the new root."""
    wrappers: list = []
    node = root
    while isinstance(
        node,
        (LogicalLimit, LogicalSort, LogicalDistinct, LogicalProject,
         LogicalAggregate),
    ):
        wrappers.append(node)
        node = node.child

    # TOP-N pushdown: a Limit directly over a Sort fuses into one
    # bounded-heap operator (physical TopNOp / BatchTopNOp) — the full
    # sort never materializes more than `limit` output rows
    if (
        len(wrappers) >= 2
        and isinstance(wrappers[0], LogicalLimit)
        and isinstance(wrappers[1], LogicalSort)
    ):
        wrappers[:2] = [
            LogicalTopN(
                child=None,  # re-attached with the rest of the stack below
                order_by=wrappers[1].order_by,
                limit=wrappers[0].limit,
            )
        ]
    conjuncts: list = []
    if isinstance(node, LogicalFilter):
        conjuncts = [fold_constants(p) for p in node.predicates]
        node = node.child
    left_nodes: list = []
    while isinstance(node, LogicalLeftJoin):
        left_nodes.append(node)
        node = node.left
    left_nodes.reverse()  # application order, innermost first
    scans = _flatten_joins(node)

    columns_by_binding = {
        scan.binding: set(catalog.table(scan.table).column_names())
        for scan in scans
    }
    table_stats = {
        scan.binding: stats_provider.table_stats(scan.table) for scan in scans
    }

    # classify
    pushed: dict = {scan.binding: [] for scan in scans}
    equi_predicates: list = []
    residual: list = []
    for conjunct in conjuncts:
        if isinstance(conjunct, Literal) and conjunct.value is True:
            continue  # always-true conjunct folded away
        refs = collect_column_refs(conjunct)
        ref_bindings = bindings_of(refs, columns_by_binding)
        if ref_bindings is not None and len(ref_bindings) == 1:
            pushed[next(iter(ref_bindings))].append(conjunct)
            continue
        equi = (
            as_equi_predicate(conjunct, columns_by_binding)
            if ref_bindings
            else None
        )
        if equi is not None:
            equi_predicates.append(equi)
        else:
            residual.append(conjunct)

    # annotate scans with pushed filters and estimates
    scan_by_binding: dict = {}
    for scan in scans:
        scan.predicates = tuple(pushed[scan.binding])
        stats = table_stats[scan.binding]
        selectivity = 1.0
        for predicate in scan.predicates:
            selectivity *= predicate_selectivity(predicate, stats)
        scan.est_rows = scan.base_rows * selectivity
        scan_by_binding[scan.binding] = scan

    # greedy cardinality-driven join ordering
    syntax_index = {scan.binding: i for i, scan in enumerate(scans)}
    joined_node, joined_bindings, remaining_equi, remaining_residual = (
        _order_joins(
            scans,
            equi_predicates,
            residual,
            table_stats,
            columns_by_binding,
            syntax_index,
        )
    )

    # leftover equi predicates (join cycles) become plain filters
    if remaining_equi:
        joined_node = LogicalFilter(
            child=joined_node,
            predicates=tuple(equi.expr for equi in remaining_equi),
        )
        joined_node.est_rows = _filtered_estimate(joined_node)

    # LEFT joins reapplied in order, conditions folded
    for left_node in left_nodes:
        left_node.left = joined_node
        left_node.condition = fold_constants(left_node.condition)
        left_node.est_rows = joined_node.est_rows
        joined_node = left_node

    if remaining_residual:
        joined_node = LogicalFilter(
            child=joined_node, predicates=tuple(remaining_residual)
        )
        joined_node.est_rows = _filtered_estimate(joined_node)

    # re-attach the wrapper stack (aggregate/project/distinct/sort/limit)
    node = joined_node
    for wrapper in reversed(wrappers):
        wrapper.child = node
        wrapper.est_rows = _wrapper_estimate(wrapper, node, table_stats)
        node = wrapper

    _prune_projections(wrappers, catalog, scans, left_nodes, conjuncts)
    return node


def _flatten_joins(node: LogicalNode) -> list:
    if isinstance(node, LogicalScan):
        return [node]
    assert isinstance(node, LogicalJoin)
    return _flatten_joins(node.left) + _flatten_joins(node.right)


def _order_joins(
    scans: list,
    equi_predicates: list,
    residual: list,
    table_stats: dict,
    columns_by_binding: dict,
    syntax_index: dict,
) -> tuple:
    """Build the join tree greedily; returns (node, bindings, equi, residual)."""
    estimates = {scan.binding: scan.est_rows for scan in scans}
    start = min(scans, key=lambda s: (s.est_rows, syntax_index[s.binding]))
    node: LogicalNode = start
    joined = {start.binding}
    current_est = max(start.est_rows, 0.0)
    pending = [scan for scan in scans if scan is not start]
    remaining_equi = list(equi_predicates)
    remaining_residual = list(residual)

    while pending:
        best = None
        best_cost = None
        best_usable: list = []
        for candidate in pending:
            usable = [
                equi
                for equi in remaining_equi
                if candidate.binding in equi.bindings
                and (equi.bindings - {candidate.binding}) <= joined
            ]
            if not usable:
                continue
            selectivity = 1.0
            for equi in usable:
                selectivity *= join_selectivity(
                    table_stats[equi.left_binding],
                    equi.left.column,
                    table_stats[equi.right_binding],
                    equi.right.column,
                )
            cost = current_est * estimates[candidate.binding] * selectivity
            key = (cost, syntax_index[candidate.binding])
            if best_cost is None or key < best_cost:
                best, best_cost, best_usable = candidate, key, usable
        if best is None:  # no connected table: cross join the smallest
            best = min(
                pending,
                key=lambda s: (estimates[s.binding], syntax_index[s.binding]),
            )
            best_cost = (current_est * estimates[best.binding], 0)
            best_usable = []

        pending.remove(best)
        usable = best_usable
        remaining_equi = [e for e in remaining_equi if e not in usable]
        node = LogicalJoin(left=node, right=best, equi=tuple(usable))
        joined.add(best.binding)
        current_est = max(best_cost[0], 0.0)
        node.est_rows = current_est

        # apply residuals as soon as every binding they need is joined
        ready = []
        waiting = []
        for conjunct in remaining_residual:
            needed = bindings_of(
                collect_column_refs(conjunct), columns_by_binding
            )
            if needed is not None and needed <= joined:
                ready.append(conjunct)
            else:
                waiting.append(conjunct)
        remaining_residual = waiting
        if ready:
            node = LogicalFilter(child=node, predicates=tuple(ready))
            node.est_rows = _filtered_estimate(node)
            current_est = node.est_rows

    return node, joined, remaining_equi, remaining_residual


def _filtered_estimate(filter_node: LogicalFilter) -> float:
    child_est = filter_node.child.est_rows or 0.0
    return child_est * (DEFAULT_SELECTIVITY ** len(filter_node.predicates))


def _wrapper_estimate(
    wrapper: LogicalNode, child: LogicalNode, table_stats: dict
) -> "float | None":
    child_est = child.est_rows
    if isinstance(wrapper, LogicalAggregate):
        if not wrapper.group_by:
            return 1.0
        groups = 1.0
        for expr in wrapper.group_by:
            if isinstance(expr, ColumnRef):
                owner = expr.table
                if owner in table_stats:
                    groups *= table_stats[owner].distinct(expr.column)
                    continue
            groups *= 10.0  # expression key: assume a few distinct values
        if child_est is not None:
            groups = min(groups, child_est)
        return groups
    if isinstance(wrapper, (LogicalLimit, LogicalTopN)):
        if child_est is None:
            return float(wrapper.limit)
        return min(child_est, float(wrapper.limit))
    return child_est


# ---------------------------------------------------------------------------
# projection pruning
# ---------------------------------------------------------------------------


def _prune_projections(
    wrappers: list,
    catalog: Catalog,
    scans: list,
    left_nodes: list,
    conjuncts: list,
) -> None:
    """Narrow scan outputs to the referenced columns (in place)."""
    project = _find_wrapper(wrappers, LogicalProject)
    if project is None:
        return
    star_tables: set = set()
    for item in project.items:
        if item.is_star:
            if item.star_table is None:
                return  # SELECT * needs every column
            star_tables.add(item.star_table)

    exprs: list = [item.expr for item in project.items if item.expr is not None]
    exprs.extend(conjuncts)
    for left_node in left_nodes:
        exprs.append(left_node.condition)
    aggregate = _find_wrapper(wrappers, LogicalAggregate)
    if aggregate is not None:
        exprs.extend(aggregate.group_by)
        if aggregate.having is not None:
            exprs.append(aggregate.having)
        exprs.extend(aggregate.agg_calls)
    sort = _find_wrapper(wrappers, (LogicalSort, LogicalTopN))
    if sort is not None:
        exprs.extend(item.expr for item in sort.order_by)

    all_scans = list(scans) + [left_node.right for left_node in left_nodes]
    tables = {scan.binding: catalog.table(scan.table) for scan in all_scans}

    needed: set = set()
    for expr in exprs:
        for ref in collect_column_refs(expr):
            if ref.table is not None:
                needed.add((ref.table, ref.column))
                continue
            for binding, table in tables.items():
                if table.has_column(ref.column):
                    needed.add((binding, ref.column))

    for scan in all_scans:
        if scan.binding in star_tables:
            continue
        table = tables[scan.binding]
        kept = tuple(
            name
            for name in table.column_names()
            if (scan.binding, name) in needed
        )
        if len(kept) < len(table.columns):
            scan.columns = kept


def _find_wrapper(wrappers: list, node_type: type):
    for wrapper in wrappers:
        if isinstance(wrapper, node_type):
            return wrapper
    return None
