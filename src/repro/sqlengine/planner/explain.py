"""Render an optimized logical plan as a deterministic text tree.

The node phrasing intentionally keeps the pre-planner vocabulary
(``scan t as t (N rows)``, ``hash join b on (...)``, ``cross join``,
``left join``, ``aggregate group by``, ``sort by``, ``limit N``,
``top-n N by ...``) so the output stays grep-friendly, and adds tree
structure, cardinality estimates (``~N rows``) and pruned column lists.
When an execution *mode* is supplied, every operator line is suffixed
with the engine it runs in (``[batch]`` for the vectorized engine,
``[row]`` for the volcano engine).  When a *catalog* is supplied, scans
over tables with dictionary-encoded TEXT columns mark the encoded
columns they emit (``[dict: status, region]``).
"""

from __future__ import annotations

from repro.sqlengine.planner.logical import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLeftJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalTopN,
)


def render_plan(
    root: LogicalNode, mode: "str | None" = None, catalog=None, analyze=None,
    parallel: "dict | None" = None,
) -> str:
    """The whole plan as an indented tree, one node per line.

    *mode* annotates each operator with the execution engine it is
    compiled for; ``None`` renders the bare logical tree.  *catalog*
    (optional) lets scans mark their dictionary-encoded columns.
    *analyze* (optional, an
    :class:`~repro.sqlengine.planner.analyze.Instrumenter` that has
    executed this plan) appends each operator's actual rows/batches and
    self-time next to the estimates — the EXPLAIN ANALYZE rendering.
    *parallel* (optional, ``id(scan node) -> worker count`` from
    :attr:`~repro.sqlengine.planner.physical.PreparedPlan.parallel_nodes`)
    marks scans whose pipelines run morsel-parallel
    (``[parallel n=K]``).
    """
    lines: list = []
    suffix = f" [{mode}]" if mode is not None else ""
    _render(root, prefix="", connector="", lines=lines, suffix=suffix,
            catalog=catalog, analyze=analyze, parallel=parallel)
    return "\n".join(lines)


def _render(
    node: LogicalNode, prefix: str, connector: str, lines: list, suffix: str,
    catalog=None, analyze=None, parallel=None,
) -> None:
    line = prefix + connector + describe_node(node, catalog) + suffix
    if parallel and id(node) in parallel:
        line += f" [parallel n={parallel[id(node)]}]"
    if analyze is not None:
        line += analyze.suffix_for(node)
    lines.append(line)
    children = node.children()
    if not children:
        return
    if connector == "":
        child_prefix = prefix
    elif connector.startswith("├"):
        child_prefix = prefix + "│  "
    else:
        child_prefix = prefix + "   "
    for index, child in enumerate(children):
        last = index == len(children) - 1
        _render(
            child, child_prefix, "└─ " if last else "├─ ", lines, suffix,
            catalog, analyze, parallel,
        )


def describe_node(node: LogicalNode, catalog=None) -> str:
    """One-line description of a plan node."""
    if isinstance(node, LogicalScan):
        text = f"scan {node.table} as {node.binding} ({node.base_rows} rows)"
        if node.predicates:
            rendered = " AND ".join(p.to_sql() for p in node.predicates)
            text += f" filter: {rendered}"
            text += _estimate(node)
        if node.columns is not None:
            text += f" [cols: {', '.join(node.columns) or '(none)'}]"
        encoded = _encoded_columns(node, catalog)
        if encoded:
            text += f" [dict: {', '.join(encoded)}]"
        return text
    if isinstance(node, LogicalJoin):
        right_binding = _rightmost_binding(node.right)
        if node.equi:
            conditions = " AND ".join(e.expr.to_sql() for e in node.equi)
            return f"hash join {right_binding} on {conditions}" + _estimate(node)
        return f"cross join {right_binding}" + _estimate(node)
    if isinstance(node, LogicalLeftJoin):
        return (
            f"left join {node.right.binding} on {node.condition.to_sql()}"
            + _estimate(node)
        )
    if isinstance(node, LogicalFilter):
        rendered = " AND ".join(p.to_sql() for p in node.predicates)
        return f"residual filter {rendered}" + _estimate(node)
    if isinstance(node, LogicalAggregate):
        keys = ", ".join(e.to_sql() for e in node.group_by) or "(all rows)"
        text = f"aggregate group by {keys}"
        if node.having is not None:
            text += f" having {node.having.to_sql()}"
        return text + _estimate(node)
    if isinstance(node, LogicalProject):
        rendered = ", ".join(item.to_sql() for item in node.items)
        return f"project {rendered}"
    if isinstance(node, LogicalDistinct):
        return "distinct"
    if isinstance(node, LogicalSort):
        return "sort by " + ", ".join(item.to_sql() for item in node.order_by)
    if isinstance(node, LogicalLimit):
        return f"limit {node.limit}"
    if isinstance(node, LogicalTopN):
        ordering = ", ".join(item.to_sql() for item in node.order_by)
        return f"top-n {node.limit} by {ordering}" + _estimate(node)
    return type(node).__name__  # pragma: no cover - future node types


def _encoded_columns(node: LogicalScan, catalog) -> list:
    """The dictionary-encoded columns this scan emits (needs a catalog)."""
    if catalog is None or not catalog.has_table(node.table):
        return []
    table = catalog.table(node.table)
    emitted = (
        table.column_names() if node.columns is None else list(node.columns)
    )
    encoded = set(table.encoded_column_names())
    return [name for name in emitted if name in encoded]


def _estimate(node: LogicalNode) -> str:
    if node.est_rows is None:
        return ""
    return f" [~{int(round(node.est_rows))} rows]"


def _rightmost_binding(node: LogicalNode) -> str:
    if isinstance(node, LogicalScan):
        return node.binding
    children = node.children()
    if children:
        return _rightmost_binding(children[-1])
    return "?"  # pragma: no cover - joins always end in scans
