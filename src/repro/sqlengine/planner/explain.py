"""Render an optimized logical plan as a deterministic text tree.

The node phrasing intentionally keeps the pre-planner vocabulary
(``scan t as t (N rows)``, ``hash join b on (...)``, ``cross join``,
``left join``, ``aggregate group by``, ``sort by``, ``limit N``) so the
output stays grep-friendly, and adds tree structure, cardinality
estimates (``~N rows``) and pruned column lists.  When an execution
*mode* is supplied, every operator line is suffixed with the engine it
runs in (``[batch]`` for the vectorized engine, ``[row]`` for the
volcano engine).
"""

from __future__ import annotations

from repro.sqlengine.planner.logical import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLeftJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
)


def render_plan(root: LogicalNode, mode: "str | None" = None) -> str:
    """The whole plan as an indented tree, one node per line.

    *mode* annotates each operator with the execution engine it is
    compiled for; ``None`` renders the bare logical tree.
    """
    lines: list = []
    suffix = f" [{mode}]" if mode is not None else ""
    _render(root, prefix="", connector="", lines=lines, suffix=suffix)
    return "\n".join(lines)


def _render(
    node: LogicalNode, prefix: str, connector: str, lines: list, suffix: str
) -> None:
    lines.append(prefix + connector + describe_node(node) + suffix)
    children = node.children()
    if not children:
        return
    if connector == "":
        child_prefix = prefix
    elif connector.startswith("├"):
        child_prefix = prefix + "│  "
    else:
        child_prefix = prefix + "   "
    for index, child in enumerate(children):
        last = index == len(children) - 1
        _render(
            child, child_prefix, "└─ " if last else "├─ ", lines, suffix
        )


def describe_node(node: LogicalNode) -> str:
    """One-line description of a plan node."""
    if isinstance(node, LogicalScan):
        text = f"scan {node.table} as {node.binding} ({node.base_rows} rows)"
        if node.predicates:
            rendered = " AND ".join(p.to_sql() for p in node.predicates)
            text += f" filter: {rendered}"
            text += _estimate(node)
        if node.columns is not None:
            text += f" [cols: {', '.join(node.columns) or '(none)'}]"
        return text
    if isinstance(node, LogicalJoin):
        right_binding = _rightmost_binding(node.right)
        if node.equi:
            conditions = " AND ".join(e.expr.to_sql() for e in node.equi)
            return f"hash join {right_binding} on {conditions}" + _estimate(node)
        return f"cross join {right_binding}" + _estimate(node)
    if isinstance(node, LogicalLeftJoin):
        return (
            f"left join {node.right.binding} on {node.condition.to_sql()}"
            + _estimate(node)
        )
    if isinstance(node, LogicalFilter):
        rendered = " AND ".join(p.to_sql() for p in node.predicates)
        return f"residual filter {rendered}" + _estimate(node)
    if isinstance(node, LogicalAggregate):
        keys = ", ".join(e.to_sql() for e in node.group_by) or "(all rows)"
        text = f"aggregate group by {keys}"
        if node.having is not None:
            text += f" having {node.having.to_sql()}"
        return text + _estimate(node)
    if isinstance(node, LogicalProject):
        rendered = ", ".join(item.to_sql() for item in node.items)
        return f"project {rendered}"
    if isinstance(node, LogicalDistinct):
        return "distinct"
    if isinstance(node, LogicalSort):
        return "sort by " + ", ".join(item.to_sql() for item in node.order_by)
    if isinstance(node, LogicalLimit):
        return f"limit {node.limit}"
    return type(node).__name__  # pragma: no cover - future node types


def _estimate(node: LogicalNode) -> str:
    if node.est_rows is None:
        return ""
    return f" [~{int(round(node.est_rows))} rows]"


def _rightmost_binding(node: LogicalNode) -> str:
    if isinstance(node, LogicalScan):
        return node.binding
    children = node.children()
    if children:
        return _rightmost_binding(children[-1])
    return "?"  # pragma: no cover - joins always end in scans
