"""EXPLAIN ANALYZE: per-operator actuals for both execution engines.

An :class:`Instrumenter` is threaded through
:func:`~repro.sqlengine.planner.physical.build_physical` as its
``instrument`` callback: every physical operator is wrapped in a thin
shim that times each pull from the operator's iterator and counts the
rows (and batches) it produces.  Stats are keyed by the *logical* node
the operator was built from — the build is 1:1 — so after execution
:meth:`Instrumenter.suffix_for` can annotate each line of
:func:`~repro.sqlengine.planner.explain.render_plan` with actual rows,
batches and self-time right next to the optimizer's ``[~N rows]``
estimate, making estimate-vs-actual skew directly visible.

Timing is *inclusive* at the wrapper (a parent's pull runs its
children's pulls), so an operator's self-time is its inclusive time
minus the sum of its children's — computed from the logical tree, never
stored.  Instrumented plans are built fresh per request and are never
placed in the plan cache: the wrappers would tax every later execution
and the stats objects are single-use.
"""

from __future__ import annotations

from time import perf_counter


class OperatorStats:
    """Actuals for one operator: rows out, batches out, inclusive time."""

    __slots__ = ("rows", "batches", "inclusive")

    def __init__(self) -> None:
        self.rows = 0
        #: batches yielded, or None for row-engine operators
        self.batches = None
        self.inclusive = 0.0


class _InstrumentedRows:
    """Times a relational row operator (``rows()`` protocol)."""

    def __init__(self, inner, stats: OperatorStats) -> None:
        self._inner = inner
        self._stats = stats
        self.scope = inner.scope

    def rows(self):
        stats = self._stats
        # some operators (sort, top-n) do their work eagerly when the
        # iterator is constructed — time that call, not just the pulls
        started = perf_counter()
        iterator = self._inner.rows()
        stats.inclusive += perf_counter() - started
        while True:
            started = perf_counter()
            try:
                row = next(iterator)
            except StopIteration:
                stats.inclusive += perf_counter() - started
                return
            stats.inclusive += perf_counter() - started
            stats.rows += 1
            yield row


class _InstrumentedPairs:
    """Times a presentation row operator (``pairs()`` protocol)."""

    def __init__(self, inner, stats: OperatorStats) -> None:
        self._inner = inner
        self._stats = stats
        self.scope = inner.scope
        self.columns = inner.columns
        self.agg_slots = inner.agg_slots

    def pairs(self):
        stats = self._stats
        # SortOp/TopNOp sort eagerly inside this call — time it
        started = perf_counter()
        iterator = self._inner.pairs()
        stats.inclusive += perf_counter() - started
        while True:
            started = perf_counter()
            try:
                pair = next(iterator)
            except StopIteration:
                stats.inclusive += perf_counter() - started
                return
            stats.inclusive += perf_counter() - started
            stats.rows += 1
            yield pair


class _InstrumentedBatches:
    """Times a relational batch operator (``batches()`` protocol)."""

    def __init__(self, inner, stats: OperatorStats) -> None:
        self._inner = inner
        self._stats = stats
        self.scope = inner.scope
        stats.batches = 0

    def batches(self):
        stats = self._stats
        started = perf_counter()
        iterator = self._inner.batches()
        stats.inclusive += perf_counter() - started
        while True:
            started = perf_counter()
            try:
                cols, n = next(iterator)
            except StopIteration:
                stats.inclusive += perf_counter() - started
                return
            stats.inclusive += perf_counter() - started
            stats.rows += n
            stats.batches += 1
            yield cols, n


class _InstrumentedPresBatches:
    """Times a presentation batch operator (``pres_batches()`` protocol)."""

    def __init__(self, inner, stats: OperatorStats) -> None:
        self._inner = inner
        self._stats = stats
        self.scope = inner.scope
        self.columns = inner.columns
        self.agg_slots = inner.agg_slots
        stats.batches = 0

    def pres_batches(self):
        stats = self._stats
        started = perf_counter()
        iterator = self._inner.pres_batches()
        stats.inclusive += perf_counter() - started
        while True:
            started = perf_counter()
            try:
                out_cols, pre_cols, n = next(iterator)
            except StopIteration:
                stats.inclusive += perf_counter() - started
                return
            stats.inclusive += perf_counter() - started
            stats.rows += n
            stats.batches += 1
            yield out_cols, pre_cols, n


class Instrumenter:
    """Wraps every operator of one plan build and renders its actuals.

    Pass as ``build_physical(..., instrument=instrumenter)``; after
    ``plan.execute()`` hand it to ``render_plan(..., analyze=...)``.
    """

    def __init__(self) -> None:
        self._stats: dict = {}  # id(logical node) -> OperatorStats

    def __call__(self, operator, node):
        """Wrap *operator* (built from logical *node*); returns the shim."""
        stats = OperatorStats()
        self._stats[id(node)] = stats
        if hasattr(operator, "pres_batches"):
            return _InstrumentedPresBatches(operator, stats)
        if hasattr(operator, "batches"):
            return _InstrumentedBatches(operator, stats)
        if hasattr(operator, "pairs"):
            return _InstrumentedPairs(operator, stats)
        return _InstrumentedRows(operator, stats)

    # ------------------------------------------------------------------
    def stats_for(self, node) -> "OperatorStats | None":
        return self._stats.get(id(node))

    def self_seconds(self, node) -> float:
        """Inclusive time minus the children's inclusive time."""
        stats = self._stats[id(node)]
        children = sum(
            self._stats[id(child)].inclusive
            for child in node.children()
            if id(child) in self._stats
        )
        return max(0.0, stats.inclusive - children)

    def suffix_for(self, node) -> str:
        """The ``(actual ...)`` annotation for one plan line."""
        stats = self._stats.get(id(node))
        if stats is None:  # pragma: no cover - builds cover every node
            return ""
        self_ms = self.self_seconds(node) * 1000.0
        if stats.batches is None:
            return f" (actual rows={stats.rows}, self={self_ms:.3f}ms)"
        return (
            f" (actual rows={stats.rows}, batches={stats.batches}, "
            f"self={self_ms:.3f}ms)"
        )
