"""Logical plan DAG and lowering from the parsed ``Select`` AST.

``lower_select`` produces the *canonical* (unoptimized) plan: scans in
syntax order combined by cross joins, LEFT joins applied in order, a
single filter holding every WHERE/ON conjunct, then aggregation,
projection, DISTINCT, sort and limit.  The canonical plan is directly
executable (the benchmark's "naive" baseline) and is the input to
:mod:`repro.sqlengine.planner.optimizer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SqlCatalogError
from repro.sqlengine.ast_nodes import (
    ColumnRef,
    Expr,
    FuncCall,
    Select,
    contains_aggregate,
)
from repro.sqlengine.catalog import Catalog, Table
from repro.sqlengine.expressions import split_conjuncts


class LogicalNode:
    """Base class for logical plan nodes."""

    est_rows: "float | None"

    def children(self) -> tuple:
        return ()


@dataclass(frozen=True)
class EquiPredicate:
    """A recognised ``a.x = b.y`` join predicate between two bindings."""

    left_binding: str
    left: ColumnRef
    right_binding: str
    right: ColumnRef
    expr: Expr

    @property
    def bindings(self) -> set:
        return {self.left_binding, self.right_binding}


@dataclass
class LogicalScan(LogicalNode):
    """Scan one base table, optionally filtered and column-pruned."""

    table: str
    binding: str
    base_rows: int = 0
    predicates: tuple = ()
    columns: "tuple | None" = None  # pruned output columns; None = all
    est_rows: "float | None" = None


@dataclass
class LogicalJoin(LogicalNode):
    """Inner join; hash join when ``equi`` is non-empty, else cross join."""

    left: LogicalNode
    right: LogicalNode
    equi: tuple = ()
    est_rows: "float | None" = None

    def children(self) -> tuple:
        return (self.left, self.right)


@dataclass
class LogicalLeftJoin(LogicalNode):
    """LEFT OUTER join; the right side is always a scan."""

    left: LogicalNode
    right: LogicalScan
    condition: Expr = None  # type: ignore[assignment]
    est_rows: "float | None" = None

    def children(self) -> tuple:
        return (self.left, self.right)


@dataclass
class LogicalFilter(LogicalNode):
    """Apply residual predicates to the child's rows."""

    child: LogicalNode
    predicates: tuple = ()
    est_rows: "float | None" = None

    def children(self) -> tuple:
        return (self.child,)


@dataclass
class LogicalAggregate(LogicalNode):
    """GROUP BY + aggregate evaluation (plus HAVING)."""

    child: LogicalNode
    group_by: tuple = ()
    agg_calls: tuple = ()
    having: "Expr | None" = None
    est_rows: "float | None" = None

    def children(self) -> tuple:
        return (self.child,)


@dataclass
class LogicalProject(LogicalNode):
    """Evaluate the select list.

    ``canonical_pairs`` records the full FROM-order column layout so star
    expansion is independent of the optimizer's join order.
    """

    child: LogicalNode
    items: tuple = ()
    canonical_pairs: tuple = ()
    est_rows: "float | None" = None

    def children(self) -> tuple:
        return (self.child,)


@dataclass
class LogicalDistinct(LogicalNode):
    child: LogicalNode = None  # type: ignore[assignment]
    est_rows: "float | None" = None

    def children(self) -> tuple:
        return (self.child,)


@dataclass
class LogicalSort(LogicalNode):
    child: LogicalNode = None  # type: ignore[assignment]
    order_by: tuple = ()
    est_rows: "float | None" = None

    def children(self) -> tuple:
        return (self.child,)


@dataclass
class LogicalLimit(LogicalNode):
    child: LogicalNode = None  # type: ignore[assignment]
    limit: int = 0
    est_rows: "float | None" = None

    def children(self) -> tuple:
        return (self.child,)


@dataclass
class LogicalTopN(LogicalNode):
    """Sort fused with the Limit directly above it (TOP-N pushdown).

    Produced by the optimizer only — the canonical plan always keeps
    the separate Sort + Limit pair.  Physical operators keep a bounded
    heap of the best *limit* rows instead of fully sorting the input;
    the ordering semantics (stable multi-key sort, NULLs-first
    ``sort_key`` ordering) are identical.
    """

    child: LogicalNode = None  # type: ignore[assignment]
    order_by: tuple = ()
    limit: int = 0
    est_rows: "float | None" = None

    def children(self) -> tuple:
        return (self.child,)


def referenced_tables(node: LogicalNode) -> tuple:
    """The sorted base-table names scanned anywhere in *node*'s tree.

    The plan cache validates a cached plan against exactly these
    tables' mutation versions, so writes to unrelated tables never
    evict it.
    """
    names: set = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, LogicalScan):
            names.add(current.table)
        stack.extend(current.children())
    return tuple(sorted(names))


# ---------------------------------------------------------------------------
# lowering
# ---------------------------------------------------------------------------


def collect_aggregate_calls(expr: "Expr | None", found: list) -> None:
    """Append the aggregate FuncCall nodes of *expr* to *found* (deduped)."""
    if expr is None:
        return
    if isinstance(expr, FuncCall):
        from repro.sqlengine.ast_nodes import AGGREGATE_FUNCTIONS

        if expr.name in AGGREGATE_FUNCTIONS:
            if expr not in found:
                found.append(expr)
            return
        for arg in expr.args:
            collect_aggregate_calls(arg, found)
        return
    for child in expr_children(expr):
        collect_aggregate_calls(child, found)


def expr_children(expr: Expr) -> list:
    """Direct sub-expressions of *expr* (empty for leaves)."""
    from repro.sqlengine.ast_nodes import (
        Between,
        BinaryOp,
        CaseWhen,
        InList,
        IsNull,
        Like,
        UnaryOp,
    )

    if isinstance(expr, BinaryOp):
        return [expr.left, expr.right]
    if isinstance(expr, UnaryOp):
        return [expr.operand]
    if isinstance(expr, Like):
        return [expr.operand, expr.pattern]
    if isinstance(expr, InList):
        return [expr.operand, *expr.items]
    if isinstance(expr, Between):
        return [expr.operand, expr.low, expr.high]
    if isinstance(expr, IsNull):
        return [expr.operand]
    if isinstance(expr, FuncCall):
        return list(expr.args)
    if isinstance(expr, CaseWhen):
        children = []
        for condition, value in expr.branches:
            children.append(condition)
            children.append(value)
        if expr.default is not None:
            children.append(expr.default)
        return children
    return []


def needs_aggregation(select: Select) -> bool:
    """Whether the query requires an aggregation operator."""
    if select.group_by or select.having is not None:
        return True
    if any(
        item.expr is not None and contains_aggregate(item.expr)
        for item in select.items
    ):
        return True
    return any(contains_aggregate(item.expr) for item in select.order_by)


def lower_select(catalog: Catalog, select: Select) -> LogicalNode:
    """Lower a parsed SELECT into the canonical logical plan."""
    bindings_seen: set = set()

    def register(binding: str, table_name: str) -> Table:
        if binding in bindings_seen:
            raise SqlCatalogError(f"duplicate table binding: {binding!r}")
        bindings_seen.add(binding)
        return catalog.table(table_name)

    def scan(binding: str, table: Table) -> LogicalScan:
        return LogicalScan(
            table=table.name, binding=binding, base_rows=len(table.rows)
        )

    inner_scans: list = []
    conjuncts: list = split_conjuncts(select.where)
    left_joins: list = []
    for table_ref in select.tables:
        inner_scans.append(
            scan(table_ref.binding, register(table_ref.binding, table_ref.name))
        )
    for join in select.joins:
        if join.kind == "INNER":
            inner_scans.append(
                scan(
                    join.table.binding,
                    register(join.table.binding, join.table.name),
                )
            )
            conjuncts.extend(split_conjuncts(join.condition))
        else:
            left_joins.append(join)

    node: LogicalNode = inner_scans[0]
    for right in inner_scans[1:]:
        node = LogicalJoin(left=node, right=right, equi=())

    canonical_pairs = []
    for inner_scan in inner_scans:
        table = catalog.table(inner_scan.table)
        canonical_pairs.extend(
            (inner_scan.binding, name) for name in table.column_names()
        )
    for join in left_joins:
        table = register(join.table.binding, join.table.name)
        node = LogicalLeftJoin(
            left=node,
            right=scan(join.table.binding, table),
            condition=join.condition,
        )
        canonical_pairs.extend(
            (join.table.binding, name) for name in table.column_names()
        )

    if conjuncts:
        node = LogicalFilter(child=node, predicates=tuple(conjuncts))

    if needs_aggregation(select):
        agg_calls: list = []
        for item in select.items:
            collect_aggregate_calls(item.expr, agg_calls)
        collect_aggregate_calls(select.having, agg_calls)
        for order_item in select.order_by:
            collect_aggregate_calls(order_item.expr, agg_calls)
        node = LogicalAggregate(
            child=node,
            group_by=tuple(select.group_by),
            agg_calls=tuple(agg_calls),
            having=select.having,
        )

    node = LogicalProject(
        child=node,
        items=tuple(select.items),
        canonical_pairs=tuple(canonical_pairs),
    )
    if select.distinct:
        node = LogicalDistinct(child=node)
    if select.order_by:
        node = LogicalSort(child=node, order_by=tuple(select.order_by))
    if select.limit is not None:
        node = LogicalLimit(child=node, limit=select.limit)
    return node
