"""Physical operators: volcano (row) and vectorized (batch) engines.

``build_physical`` compiles an optimized logical plan into a tree of
operators in one of two execution modes.  Expression compilation happens
once, at build time, so a cached :class:`PreparedPlan` can be
re-executed without re-planning — each execution streams fresh results
from the underlying tables.

**Row mode** is the classic volcano engine: every operator is an
iterator over row tuples, one ``next()`` and a handful of closure calls
per row.  Two row shapes flow through the tree:

* relational operators (scan/filter/join/aggregate) yield plain row
  tuples laid out by their :class:`~repro.sqlengine.expressions.Scope`;
* presentation operators (project/distinct/sort/limit) yield
  ``(out_row, pre_row)`` pairs, keeping the pre-projection row around so
  ORDER BY can sort on expressions that were never projected.

**Batch mode** is the vectorized engine: operators exchange *column
batches* — ``(cols, n)`` where ``cols`` is one Python list per scope
column, all of length ``n`` (at most :data:`BATCH_SIZE` rows out of a
scan).  Scans slice the table's columnar storage directly, filters turn
whole-batch predicate evaluation into selection vectors, hash joins
build and probe from column slices, and aggregation feeds grouped
accumulators from per-batch argument columns.  Expressions are compiled
by :func:`~repro.sqlengine.expressions.compile_expr_batch`, which
preserves row-mode semantics exactly (three-valued logic,
``compare_values`` ordering, short-circuit error behavior), so the two
modes produce byte-identical :class:`ResultSet`\\ s.

All pre-planner semantics are preserved in both modes: three-valued
predicate logic, hash joins skipping NULL keys, LEFT JOIN null padding,
the representative-row leniency for non-aggregated GROUP BY
expressions, ORDER BY aliases/positions, and NULLs-first mixed-type
ordering.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import SqlCatalogError, SqlExecutionError
from repro.sqlengine.ast_nodes import ColumnRef, Literal
from repro.sqlengine.catalog import Catalog
from repro.sqlengine.expressions import (
    Scope,
    compile_expr,
    compile_expr_batch,
    gather_columns,
)
from repro.sqlengine.functions import make_accumulator
from repro.sqlengine.planner.logical import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLeftJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
)
from repro.sqlengine.results import ResultSet

#: rows per column batch flowing through the vectorized operators
BATCH_SIZE = 1024

#: the execution modes ``build_physical`` understands
EXECUTION_MODES = ("row", "batch")


class PhysicalOperator:
    """Base class: a re-runnable iterator over row tuples."""

    scope: Scope

    def rows(self) -> Iterator[tuple]:  # pragma: no cover - overridden
        raise NotImplementedError


class ScanOp(PhysicalOperator):
    """Scan one table, applying pushed filters, then pruning columns."""

    def __init__(self, catalog: Catalog, node: LogicalScan) -> None:
        self._table = catalog.table(node.table)
        full_scope = Scope(
            [(node.binding, name) for name in self._table.column_names()]
        )
        self._predicate_fns = [
            compile_expr(predicate, full_scope) for predicate in node.predicates
        ]
        if node.columns is None:
            self._indexes = None
            self.scope = full_scope
        else:
            self._indexes = [
                self._table.column_index(name) for name in node.columns
            ]
            self.scope = Scope([(node.binding, name) for name in node.columns])

    def rows(self) -> Iterator[tuple]:
        indexes = self._indexes
        predicate_fns = self._predicate_fns
        for row in self._table.rows:
            ok = True
            for fn in predicate_fns:
                if fn(row) is not True:
                    ok = False
                    break
            if not ok:
                continue
            if indexes is None:
                yield row
            else:
                yield tuple(row[i] for i in indexes)


class FilterOp(PhysicalOperator):
    def __init__(self, child: PhysicalOperator, predicates) -> None:
        self._child = child
        self.scope = child.scope
        self._fns = [compile_expr(p, self.scope) for p in predicates]

    def rows(self) -> Iterator[tuple]:
        fns = self._fns
        for row in self._child.rows():
            if all(fn(row) is True for fn in fns):
                yield row


class HashJoinOp(PhysicalOperator):
    """Hash join on equi predicates; degrades to a cross join without any."""

    def __init__(
        self, left: PhysicalOperator, right: PhysicalOperator, equi
    ) -> None:
        self._left = left
        self._right = right
        self.scope = left.scope.concat(right.scope)
        self._left_indexes: list = []
        self._right_indexes: list = []
        for predicate in equi:
            if left.scope.try_resolve(predicate.left) is not None:
                self._left_indexes.append(left.scope.resolve(predicate.left))
                self._right_indexes.append(right.scope.resolve(predicate.right))
            else:
                self._left_indexes.append(left.scope.resolve(predicate.right))
                self._right_indexes.append(right.scope.resolve(predicate.left))

    def rows(self) -> Iterator[tuple]:
        if not self._left_indexes:  # cross join
            right_rows = list(self._right.rows())
            for left_row in self._left.rows():
                for right_row in right_rows:
                    yield left_row + right_row
            return
        table: dict = {}
        right_indexes = self._right_indexes
        for row in self._right.rows():
            key = tuple(row[i] for i in right_indexes)
            if any(value is None for value in key):
                continue
            table.setdefault(key, []).append(row)
        left_indexes = self._left_indexes
        for row in self._left.rows():
            key = tuple(row[i] for i in left_indexes)
            if any(value is None for value in key):
                continue
            for match in table.get(key, ()):
                yield row + match


class LeftJoinOp(PhysicalOperator):
    """Nested-loop LEFT OUTER join with NULL padding."""

    def __init__(
        self, left: PhysicalOperator, right: PhysicalOperator, condition
    ) -> None:
        self._left = left
        self._right = right
        self.scope = left.scope.concat(right.scope)
        self._condition_fn = compile_expr(condition, self.scope)
        self._null_pad = (None,) * len(right.scope)

    def rows(self) -> Iterator[tuple]:
        right_rows = list(self._right.rows())
        condition_fn = self._condition_fn
        null_pad = self._null_pad
        for left_row in self._left.rows():
            matched = False
            for right_row in right_rows:
                combined = left_row + right_row
                if condition_fn(combined) is True:
                    yield combined
                    matched = True
            if not matched:
                yield left_row + null_pad


class AggregateOp(PhysicalOperator):
    """GROUP BY with accumulator-based aggregates and HAVING.

    Output rows are the *representative row* of each group (its first
    input row) extended with one slot per aggregate call; the extended
    scope names those slots ``__agg_<i>`` and :attr:`agg_slots` maps each
    aggregate ``FuncCall`` to its slot so later expressions can read the
    results.
    """

    def __init__(self, child: PhysicalOperator, node: LogicalAggregate) -> None:
        self._child = child
        self._node = node
        scope = child.scope
        self._group_fns = [compile_expr(expr, scope) for expr in node.group_by]
        self._arg_fns: list = []
        for call in node.agg_calls:
            if call.star:
                self._arg_fns.append(None)
            else:
                if len(call.args) != 1:
                    raise SqlExecutionError(
                        f"aggregate {call.to_sql()} takes exactly one argument"
                    )
                self._arg_fns.append(compile_expr(call.args[0], scope))
        self.agg_slots = {
            call: len(scope) + i for i, call in enumerate(node.agg_calls)
        }
        self.scope = Scope(
            scope.pairs
            + [(None, f"__agg_{i}") for i in range(len(node.agg_calls))]
        )
        self._having_fn = (
            compile_expr(node.having, self.scope, self.agg_slots)
            if node.having is not None
            else None
        )

    def rows(self) -> Iterator[tuple]:
        node = self._node
        groups: dict = {}
        group_order: list = []
        for row in self._child.rows():
            key = tuple(fn(row) for fn in self._group_fns)
            if key not in groups:
                accumulators = [
                    make_accumulator(call.name, call.star, call.distinct)
                    for call in node.agg_calls
                ]
                groups[key] = (row, accumulators)
                group_order.append(key)
            __, accumulators = groups[key]
            for call, arg_fn, accumulator in zip(
                node.agg_calls, self._arg_fns, accumulators
            ):
                accumulator.add(1 if call.star else arg_fn(row))

        # aggregate query over empty input and no GROUP BY -> one empty group
        if not groups and not node.group_by:
            accumulators = [
                make_accumulator(call.name, call.star, call.distinct)
                for call in node.agg_calls
            ]
            null_row = (None,) * len(self._child.scope)
            groups[()] = (null_row, accumulators)
            group_order.append(())

        having_fn = self._having_fn
        for key in group_order:
            representative, accumulators = groups[key]
            extended = representative + tuple(
                accumulator.result() for accumulator in accumulators
            )
            if having_fn is None or having_fn(extended) is True:
                yield extended


def _project_targets(node: LogicalProject, scope: Scope) -> tuple:
    """Resolve the select list against *scope*.

    Returns ``(columns, targets)`` where each target is either a scope
    index (star expansion / plain pickers) or the item's ``Expr``.  Star
    items expand in *canonical* (FROM-clause) column order, so the
    visible column order never depends on the optimizer's join order.
    """
    bindings = {b for b, __ in scope.pairs if b is not None}
    multi_table = len(bindings) > 1
    columns: list = []
    targets: list = []
    for item in node.items:
        if item.is_star:
            matched_any = False
            for binding, column in node.canonical_pairs:
                if item.star_table is not None and binding != item.star_table:
                    continue
                index = scope.try_resolve(ColumnRef(binding, column))
                if index is None:
                    continue  # pruned away (only possible without '*')
                matched_any = True
                if item.star_table is None and multi_table:
                    columns.append(f"{binding}.{column}")
                else:
                    columns.append(column)
                targets.append(index)
            if item.star_table is not None and not matched_any:
                raise SqlCatalogError(
                    f"unknown table in star: {item.star_table!r}"
                )
            continue
        assert item.expr is not None
        columns.append(item.alias or item.expr.to_sql())
        targets.append(item.expr)
    return columns, targets


def _sort_targets(node: LogicalSort, columns: list) -> list:
    """Resolve ORDER BY items to ``(out_position, expr, descending)``.

    Exactly one of ``out_position`` / ``expr`` is set per item: integer
    positions and select-list aliases sort on the projected value,
    anything else sorts on an expression over the pre-projection row.
    """
    specs: list = []
    for item in node.order_by:
        expr = item.expr
        if isinstance(expr, Literal) and isinstance(expr.value, int):
            position = expr.value - 1
            if not 0 <= position < len(columns):
                raise SqlExecutionError(
                    f"ORDER BY position out of range: {expr.value} "
                    f"(select list has {len(columns)} columns)"
                )
            specs.append((position, None, item.descending))
            continue
        if (
            isinstance(expr, ColumnRef)
            and expr.table is None
            and expr.column in columns
        ):
            specs.append((columns.index(expr.column), None, item.descending))
            continue
        specs.append((None, expr, item.descending))
    return specs


class ProjectOp:
    """Evaluate the select list; yields ``(out_row, pre_row)`` pairs."""

    def __init__(
        self,
        child: PhysicalOperator,
        node: LogicalProject,
        agg_slots: "dict | None",
    ) -> None:
        self._child = child
        self.scope = child.scope
        self.agg_slots = agg_slots or {}
        self.columns, targets = _project_targets(node, child.scope)
        self._fns: list = [
            _make_picker(target)
            if isinstance(target, int)
            else compile_expr(target, child.scope, self.agg_slots)
            for target in targets
        ]

    def pairs(self) -> Iterator[tuple]:
        fns = self._fns
        for row in self._child.rows():
            yield tuple(fn(row) for fn in fns), row


class DistinctOp:
    """Deduplicate projected rows, keeping first occurrences."""

    def __init__(self, child) -> None:
        self._child = child
        self.columns = child.columns
        self.scope = child.scope
        self.agg_slots = child.agg_slots

    def pairs(self) -> Iterator[tuple]:
        seen: set = set()
        for out_row, pre_row in self._child.pairs():
            if out_row in seen:
                continue
            seen.add(out_row)
            yield out_row, pre_row


class SortOp:
    """Stable multi-key sort over aliases, positions or expressions."""

    def __init__(self, child, node: LogicalSort) -> None:
        self._child = child
        self.columns = child.columns
        self.scope = child.scope
        self.agg_slots = child.agg_slots
        self._key_fns: list = []
        for position, expr, descending in _sort_targets(node, self.columns):
            if position is not None:
                self._key_fns.append((_make_out_picker(position), descending))
            else:
                fn = compile_expr(expr, self.scope, self.agg_slots)
                self._key_fns.append((_make_pre_picker(fn), descending))

    def pairs(self) -> Iterator[tuple]:
        items = list(self._child.pairs())
        # stable multi-pass sort, last key first
        for key_fn, descending in reversed(self._key_fns):
            items.sort(key=lambda pair: sort_key(key_fn(pair)), reverse=descending)
        return iter(items)


class LimitOp:
    def __init__(self, child, limit: int) -> None:
        self._child = child
        self.columns = child.columns
        self.scope = child.scope
        self.agg_slots = child.agg_slots
        self._limit = limit

    def pairs(self) -> Iterator[tuple]:
        count = 0
        if self._limit <= 0:
            return
        for pair in self._child.pairs():
            yield pair
            count += 1
            if count >= self._limit:
                return


def _make_picker(index: int):
    return lambda row: row[index]


def _make_out_picker(position: int):
    return lambda pair: pair[0][position]


def _make_pre_picker(fn):
    return lambda pair: fn(pair[1])


def sort_key(value: Any) -> tuple:
    """Total order over mixed values: NULLs first, then by type group."""
    if value is None:
        return (0, 0, 0)
    if isinstance(value, bool):
        return (1, 0, int(value))
    if isinstance(value, (int, float)):
        return (1, 1, value)
    if isinstance(value, str):
        return (1, 2, value)
    return (1, 3, str(value))


# ---------------------------------------------------------------------------
# vectorized (batch) operators
# ---------------------------------------------------------------------------


class BatchOperator:
    """Base class: a re-runnable stream of ``(cols, n)`` column batches."""

    scope: Scope

    def batches(self) -> Iterator[tuple]:  # pragma: no cover - overridden
        raise NotImplementedError


def _materialize_batches(operator: BatchOperator) -> tuple:
    """Concatenate an operator's batches into full columns; ``(cols, n)``."""
    cols: list = [[] for __ in range(len(operator.scope))]
    total = 0
    for batch_cols, n in operator.batches():
        total += n
        for accumulated, column in zip(cols, batch_cols):
            accumulated.extend(column)
    return cols, total


def _apply_predicates(fns: list, cols: list, n: int) -> tuple:
    """Run predicate batch-fns in order, compacting between them.

    Returns the surviving ``(cols, n)``; predicates after the first are
    only evaluated over rows that passed the earlier ones, exactly like
    the row engine's per-row short-circuit.
    """
    for fn in fns:
        if n == 0:
            break
        mask = fn(cols, n)
        selected = [i for i, value in enumerate(mask) if value is True]
        if len(selected) == n:
            continue
        if not selected:
            return cols, 0
        cols = gather_columns(cols, selected)
        n = len(selected)
    return cols, n


class BatchScanOp(BatchOperator):
    """Slice the table's columnar storage into batches; filter and prune."""

    def __init__(self, catalog: Catalog, node: LogicalScan) -> None:
        self._table = catalog.table(node.table)
        full_scope = Scope(
            [(node.binding, name) for name in self._table.column_names()]
        )
        self._predicate_fns = [
            compile_expr_batch(predicate, full_scope)
            for predicate in node.predicates
        ]
        if node.columns is None:
            self._indexes = None
            self.scope = full_scope
        else:
            self._indexes = [
                self._table.column_index(name) for name in node.columns
            ]
            self.scope = Scope([(node.binding, name) for name in node.columns])

    def batches(self) -> Iterator[tuple]:
        table = self._table
        total = len(table.rows)
        width = len(table.columns)
        data = [table.column_data(i) for i in range(width)]
        indexes = self._indexes
        predicate_fns = self._predicate_fns
        if not predicate_fns:
            # nothing evaluates against the full layout: slice only the
            # columns the scan actually emits
            if indexes is not None:
                data = [data[i] for i in indexes]
            for start in range(0, total, BATCH_SIZE):
                stop = min(start + BATCH_SIZE, total)
                yield [column[start:stop] for column in data], stop - start
            return
        for start in range(0, total, BATCH_SIZE):
            stop = min(start + BATCH_SIZE, total)
            cols = [column[start:stop] for column in data]
            n = stop - start
            cols, n = _apply_predicates(predicate_fns, cols, n)
            if n == 0:
                continue
            if indexes is not None:
                cols = [cols[i] for i in indexes]
            yield cols, n


class BatchFilterOp(BatchOperator):
    def __init__(self, child: BatchOperator, predicates) -> None:
        self._child = child
        self.scope = child.scope
        self._fns = [compile_expr_batch(p, self.scope) for p in predicates]

    def batches(self) -> Iterator[tuple]:
        fns = self._fns
        for cols, n in self._child.batches():
            cols, n = _apply_predicates(fns, cols, n)
            if n:
                yield cols, n


class BatchHashJoinOp(BatchOperator):
    """Hash join building and probing from column slices.

    The build (right) side is materialized into full columns once; the
    hash table maps key -> row indices into those columns.  Probe output
    is assembled by gathering both sides through selection vectors, so
    no per-row tuples are built below the presentation operators.
    """

    def __init__(
        self, left: BatchOperator, right: BatchOperator, equi
    ) -> None:
        self._left = left
        self._right = right
        self.scope = left.scope.concat(right.scope)
        self._left_indexes: list = []
        self._right_indexes: list = []
        for predicate in equi:
            if left.scope.try_resolve(predicate.left) is not None:
                self._left_indexes.append(left.scope.resolve(predicate.left))
                self._right_indexes.append(right.scope.resolve(predicate.right))
            else:
                self._left_indexes.append(left.scope.resolve(predicate.right))
                self._right_indexes.append(right.scope.resolve(predicate.left))

    def batches(self) -> Iterator[tuple]:
        if not self._left_indexes:
            yield from self._cross_batches()
            return
        right_cols, right_n = _materialize_batches(self._right)
        table: dict = {}
        right_indexes = self._right_indexes
        if len(right_indexes) == 1:
            key_column = right_cols[right_indexes[0]]
            for i in range(right_n):
                key = key_column[i]
                if key is None:
                    continue
                bucket = table.get(key)
                if bucket is None:
                    table[key] = bucket = []
                bucket.append(i)
        else:
            key_columns = [right_cols[i] for i in right_indexes]
            for i, key in enumerate(zip(*key_columns)):
                if any(value is None for value in key):
                    continue
                bucket = table.get(key)
                if bucket is None:
                    table[key] = bucket = []
                bucket.append(i)

        left_indexes = self._left_indexes
        single = len(left_indexes) == 1
        get = table.get
        for cols, n in self._left.batches():
            left_sel: list = []
            right_sel: list = []
            extend_left = left_sel.extend
            append_left = left_sel.append
            extend_right = right_sel.extend
            append_right = right_sel.append
            if single:
                key_column = cols[left_indexes[0]]
                for i in range(n):
                    key = key_column[i]
                    if key is None:
                        continue
                    bucket = get(key)
                    if not bucket:
                        continue
                    if len(bucket) == 1:
                        append_left(i)
                        append_right(bucket[0])
                    else:
                        extend_left([i] * len(bucket))
                        extend_right(bucket)
            else:
                key_columns = [cols[i] for i in left_indexes]
                for i, key in enumerate(zip(*key_columns)):
                    if any(value is None for value in key):
                        continue
                    bucket = get(key)
                    if not bucket:
                        continue
                    if len(bucket) == 1:
                        append_left(i)
                        append_right(bucket[0])
                    else:
                        extend_left([i] * len(bucket))
                        extend_right(bucket)
            if not left_sel:
                continue
            out = [[column[i] for i in left_sel] for column in cols]
            out.extend(
                [column[j] for j in right_sel] for column in right_cols
            )
            yield out, len(left_sel)

    def _cross_batches(self) -> Iterator[tuple]:
        right_cols, right_n = _materialize_batches(self._right)
        if right_n == 0:
            return
        for cols, n in self._left.batches():
            for i in range(n):
                out = [[column[i]] * right_n for column in cols]
                out.extend(right_cols)
                yield out, right_n


class BatchLeftJoinOp(BatchOperator):
    """LEFT OUTER join: per-left-row vectorized condition, NULL padding."""

    def __init__(
        self, left: BatchOperator, right: BatchOperator, condition
    ) -> None:
        self._left = left
        self._right = right
        self.scope = left.scope.concat(right.scope)
        self._condition_fn = compile_expr_batch(condition, self.scope)

    def batches(self) -> Iterator[tuple]:
        right_cols, right_n = _materialize_batches(self._right)
        condition_fn = self._condition_fn
        for cols, n in self._left.batches():
            left_sel: list = []
            right_sel: list = []  # right row index, or None for padding
            for i in range(n):
                matches: list = []
                if right_n:
                    combined = [[column[i]] * right_n for column in cols]
                    combined.extend(right_cols)
                    mask = condition_fn(combined, right_n)
                    matches = [j for j, v in enumerate(mask) if v is True]
                if matches:
                    left_sel.extend([i] * len(matches))
                    right_sel.extend(matches)
                else:
                    left_sel.append(i)
                    right_sel.append(None)
            out = [[column[i] for i in left_sel] for column in cols]
            out.extend(
                [None if j is None else column[j] for j in right_sel]
                for column in right_cols
            )
            yield out, len(left_sel)


class BatchAggregateOp(BatchOperator):
    """GROUP BY over batches: grouped hash table + accumulators.

    Group keys and aggregate arguments are evaluated once per batch as
    whole columns; the per-row work is one dict probe and the
    accumulator updates.  Output follows row mode exactly: the
    representative (first) row of each group extended with the
    aggregate results, groups in first-occurrence order, HAVING applied
    over the extended batch.
    """

    def __init__(self, child: BatchOperator, node: LogicalAggregate) -> None:
        self._child = child
        self._node = node
        scope = child.scope
        self._group_fns = [
            compile_expr_batch(expr, scope) for expr in node.group_by
        ]
        self._arg_fns: list = []
        for call in node.agg_calls:
            if call.star:
                self._arg_fns.append(None)
            else:
                if len(call.args) != 1:
                    raise SqlExecutionError(
                        f"aggregate {call.to_sql()} takes exactly one argument"
                    )
                self._arg_fns.append(compile_expr_batch(call.args[0], scope))
        self.agg_slots = {
            call: len(scope) + i for i, call in enumerate(node.agg_calls)
        }
        self.scope = Scope(
            scope.pairs
            + [(None, f"__agg_{i}") for i in range(len(node.agg_calls))]
        )
        self._having_fn = (
            compile_expr_batch(node.having, self.scope, self.agg_slots)
            if node.having is not None
            else None
        )

    def batches(self) -> Iterator[tuple]:
        node = self._node
        groups: dict = {}
        group_order: list = []
        calls = node.agg_calls
        arg_fns = self._arg_fns
        group_fns = self._group_fns
        for cols, n in self._child.batches():
            key_cols = [fn(cols, n) for fn in group_fns]
            arg_cols = [
                None if fn is None else fn(cols, n) for fn in arg_fns
            ]
            if len(key_cols) == 1:
                keys = key_cols[0]
            elif key_cols:
                keys = list(zip(*key_cols))
            else:
                keys = None  # no GROUP BY: a single global group

            # bucket this batch's row indices per group (one dict probe
            # and one C-level append per row) ...
            touched: dict = {}
            get = touched.get
            if keys is None:
                if () not in groups:
                    groups[()] = (
                        tuple(column[0] for column in cols) if n else (),
                        [
                            make_accumulator(
                                call.name, call.star, call.distinct
                            )
                            for call in calls
                        ],
                    )
                    group_order.append(())
                touched[()] = list(range(n))
            else:
                for i in range(n):
                    key = keys[i]
                    bucket = get(key)
                    if bucket is None:
                        touched[key] = bucket = []
                        if key not in groups:
                            groups[key] = (
                                tuple(column[i] for column in cols),
                                [
                                    make_accumulator(
                                        call.name, call.star, call.distinct
                                    )
                                    for call in calls
                                ],
                            )
                            group_order.append(key)
                    bucket.append(i)

            # ... then feed each accumulator a whole value slice
            for key, indices in touched.items():
                accumulators = groups[key][1]
                count = len(indices)
                whole = count == n
                for arg_col, accumulator in zip(arg_cols, accumulators):
                    if arg_col is None:
                        accumulator.add_repeat(count)
                    elif whole:
                        accumulator.add_many(arg_col)
                    else:
                        accumulator.add_many([arg_col[i] for i in indices])

        # aggregate query over empty input and no GROUP BY -> one empty group
        if not groups and not node.group_by:
            accumulators = [
                make_accumulator(call.name, call.star, call.distinct)
                for call in calls
            ]
            null_row = (None,) * len(self._child.scope)
            groups[()] = (null_row, accumulators)
            group_order.append(())

        extended_rows = [
            groups[key][0]
            + tuple(accumulator.result() for accumulator in groups[key][1])
            for key in group_order
        ]
        n = len(extended_rows)
        if n == 0:
            return
        out_cols = [list(column) for column in zip(*extended_rows)]
        if self._having_fn is not None:
            mask = self._having_fn(out_cols, n)
            selected = [i for i, value in enumerate(mask) if value is True]
            if len(selected) != n:
                out_cols = gather_columns(out_cols, selected)
                n = len(selected)
        if n:
            yield out_cols, n


class BatchProjectOp:
    """Evaluate the select list over batches.

    Yields ``(out_cols, pre_cols, n)`` triples — the projected columns
    plus the pre-projection batch, the columnar analogue of row mode's
    ``(out_row, pre_row)`` pairs.
    """

    def __init__(
        self,
        child: BatchOperator,
        node: LogicalProject,
        agg_slots: "dict | None",
    ) -> None:
        self._child = child
        self.scope = child.scope
        self.agg_slots = agg_slots or {}
        self.columns, targets = _project_targets(node, child.scope)
        self._fns: list = [
            _make_batch_picker(target)
            if isinstance(target, int)
            else compile_expr_batch(target, child.scope, self.agg_slots)
            for target in targets
        ]

    def pres_batches(self) -> Iterator[tuple]:
        fns = self._fns
        for cols, n in self._child.batches():
            yield [fn(cols, n) for fn in fns], cols, n


class BatchDistinctOp:
    """Deduplicate projected rows across batches, keeping first occurrences."""

    def __init__(self, child) -> None:
        self._child = child
        self.columns = child.columns
        self.scope = child.scope
        self.agg_slots = child.agg_slots

    def pres_batches(self) -> Iterator[tuple]:
        seen: set = set()
        add = seen.add
        for out_cols, pre_cols, n in self._child.pres_batches():
            kept: list = []
            keep = kept.append
            for i, row in enumerate(zip(*out_cols)):
                if row in seen:
                    continue
                add(row)
                keep(i)
            if not kept:
                continue
            if len(kept) == n:
                yield out_cols, pre_cols, n
            else:
                yield (
                    gather_columns(out_cols, kept),
                    gather_columns(pre_cols, kept),
                    len(kept),
                )


class BatchSortOp:
    """Stable multi-key sort: materialize, argsort indices, gather."""

    def __init__(self, child, node: LogicalSort) -> None:
        self._child = child
        self.columns = child.columns
        self.scope = child.scope
        self.agg_slots = child.agg_slots
        self._key_specs: list = []
        for position, expr, descending in _sort_targets(node, self.columns):
            if position is not None:
                self._key_specs.append((position, None, descending))
            else:
                fn = compile_expr_batch(expr, self.scope, self.agg_slots)
                self._key_specs.append((None, fn, descending))

    def pres_batches(self) -> Iterator[tuple]:
        out_cols: list = [[] for __ in range(len(self.columns))]
        pre_cols: list = [[] for __ in range(len(self.scope))]
        total = 0
        for batch_out, batch_pre, n in self._child.pres_batches():
            total += n
            for accumulated, column in zip(out_cols, batch_out):
                accumulated.extend(column)
            for accumulated, column in zip(pre_cols, batch_pre):
                accumulated.extend(column)
        if total == 0:
            return
        indices = list(range(total))
        # stable multi-pass argsort, last key first (same as row mode)
        for position, key_fn, descending in reversed(self._key_specs):
            key_column = (
                out_cols[position]
                if position is not None
                else key_fn(pre_cols, total)
            )
            decorated = [sort_key(value) for value in key_column]
            indices.sort(key=decorated.__getitem__, reverse=descending)
        yield (
            gather_columns(out_cols, indices),
            gather_columns(pre_cols, indices),
            total,
        )


class BatchLimitOp:
    def __init__(self, child, limit: int) -> None:
        self._child = child
        self.columns = child.columns
        self.scope = child.scope
        self.agg_slots = child.agg_slots
        self._limit = limit

    def pres_batches(self) -> Iterator[tuple]:
        remaining = self._limit
        if remaining <= 0:
            return
        for out_cols, pre_cols, n in self._child.pres_batches():
            if n >= remaining:
                yield (
                    [column[:remaining] for column in out_cols],
                    [column[:remaining] for column in pre_cols],
                    remaining,
                )
                return
            yield out_cols, pre_cols, n
            remaining -= n


def _make_batch_picker(index: int):
    return lambda cols, n: cols[index]


# ---------------------------------------------------------------------------
# building
# ---------------------------------------------------------------------------


class PreparedPlan:
    """A compiled, re-executable plan (what the plan cache stores)."""

    def __init__(
        self, root, logical: LogicalNode, columns: list, mode: str = "row"
    ) -> None:
        self._root = root
        self.logical = logical
        self.columns = columns
        self.mode = mode

    def execute(self) -> ResultSet:
        if self.mode == "batch":
            rows: list = []
            extend = rows.extend
            for out_cols, __, n in self._root.pres_batches():
                if out_cols:
                    extend(zip(*out_cols))
                else:  # pragma: no cover - select lists are never empty
                    extend(() for __ in range(n))
            return ResultSet(columns=list(self.columns), rows=rows)
        return ResultSet(
            columns=list(self.columns),
            rows=[out_row for out_row, __ in self._root.pairs()],
        )


def build_physical(
    root: LogicalNode, catalog: Catalog, mode: str = "row"
) -> PreparedPlan:
    """Compile a logical plan into a :class:`PreparedPlan` for *mode*."""
    if mode not in EXECUTION_MODES:
        raise SqlExecutionError(
            f"unknown execution mode {mode!r} (choose from "
            f"{', '.join(EXECUTION_MODES)})"
        )
    if mode == "batch":
        operator = _build_presentation_batch(root, catalog)
    else:
        operator = _build_presentation(root, catalog)
    return PreparedPlan(
        root=operator, logical=root, columns=list(operator.columns), mode=mode
    )


def _build_presentation(node: LogicalNode, catalog: Catalog):
    """Build the pair-yielding presentation tree (project and above)."""
    if isinstance(node, LogicalLimit):
        return LimitOp(_build_presentation(node.child, catalog), node.limit)
    if isinstance(node, LogicalSort):
        return SortOp(_build_presentation(node.child, catalog), node)
    if isinstance(node, LogicalDistinct):
        return DistinctOp(_build_presentation(node.child, catalog))
    if isinstance(node, LogicalProject):
        child, agg_slots = _build_relational(node.child, catalog)
        return ProjectOp(child, node, agg_slots)
    raise SqlExecutionError(
        f"malformed plan: unexpected presentation node {type(node).__name__}"
    )


def _build_relational(node: LogicalNode, catalog: Catalog):
    """Build a row-yielding operator; returns ``(operator, agg_slots)``."""
    if isinstance(node, LogicalScan):
        return ScanOp(catalog, node), None
    if isinstance(node, LogicalFilter):
        child, agg_slots = _build_relational(node.child, catalog)
        return FilterOp(child, node.predicates), agg_slots
    if isinstance(node, LogicalJoin):
        left, __ = _build_relational(node.left, catalog)
        right, __ = _build_relational(node.right, catalog)
        return HashJoinOp(left, right, node.equi), None
    if isinstance(node, LogicalLeftJoin):
        left, __ = _build_relational(node.left, catalog)
        right, __ = _build_relational(node.right, catalog)
        return LeftJoinOp(left, right, node.condition), None
    if isinstance(node, LogicalAggregate):
        child, __ = _build_relational(node.child, catalog)
        operator = AggregateOp(child, node)
        return operator, operator.agg_slots
    raise SqlExecutionError(
        f"malformed plan: unexpected relational node {type(node).__name__}"
    )


def _build_presentation_batch(node: LogicalNode, catalog: Catalog):
    """Build the batch presentation tree (project and above)."""
    if isinstance(node, LogicalLimit):
        return BatchLimitOp(
            _build_presentation_batch(node.child, catalog), node.limit
        )
    if isinstance(node, LogicalSort):
        return BatchSortOp(_build_presentation_batch(node.child, catalog), node)
    if isinstance(node, LogicalDistinct):
        return BatchDistinctOp(_build_presentation_batch(node.child, catalog))
    if isinstance(node, LogicalProject):
        child, agg_slots = _build_relational_batch(node.child, catalog)
        return BatchProjectOp(child, node, agg_slots)
    raise SqlExecutionError(
        f"malformed plan: unexpected presentation node {type(node).__name__}"
    )


def _build_relational_batch(node: LogicalNode, catalog: Catalog):
    """Build a batch-yielding operator; returns ``(operator, agg_slots)``."""
    if isinstance(node, LogicalScan):
        return BatchScanOp(catalog, node), None
    if isinstance(node, LogicalFilter):
        child, agg_slots = _build_relational_batch(node.child, catalog)
        return BatchFilterOp(child, node.predicates), agg_slots
    if isinstance(node, LogicalJoin):
        left, __ = _build_relational_batch(node.left, catalog)
        right, __ = _build_relational_batch(node.right, catalog)
        return BatchHashJoinOp(left, right, node.equi), None
    if isinstance(node, LogicalLeftJoin):
        left, __ = _build_relational_batch(node.left, catalog)
        right, __ = _build_relational_batch(node.right, catalog)
        return BatchLeftJoinOp(left, right, node.condition), None
    if isinstance(node, LogicalAggregate):
        child, __ = _build_relational_batch(node.child, catalog)
        operator = BatchAggregateOp(child, node)
        return operator, operator.agg_slots
    raise SqlExecutionError(
        f"malformed plan: unexpected relational node {type(node).__name__}"
    )
