"""Physical operators: an iterator (volcano) execution engine.

``build_physical`` compiles an optimized logical plan into a tree of
operators.  Expression compilation happens once, at build time, so a
cached :class:`PreparedPlan` can be re-executed without re-planning —
each ``rows()`` / ``pairs()`` call streams fresh results from the
underlying tables.

Two row shapes flow through the tree:

* relational operators (scan/filter/join/aggregate) yield plain row
  tuples laid out by their :class:`~repro.sqlengine.expressions.Scope`;
* presentation operators (project/distinct/sort/limit) yield
  ``(out_row, pre_row)`` pairs, keeping the pre-projection row around so
  ORDER BY can sort on expressions that were never projected.

All pre-planner semantics are preserved: three-valued predicate logic,
hash joins skipping NULL keys, LEFT JOIN null padding, the
representative-row leniency for non-aggregated GROUP BY expressions,
ORDER BY aliases/positions, and NULLs-first mixed-type ordering.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import SqlCatalogError, SqlExecutionError
from repro.sqlengine.ast_nodes import ColumnRef, Literal, OrderItem
from repro.sqlengine.catalog import Catalog
from repro.sqlengine.expressions import Scope, compile_expr
from repro.sqlengine.functions import make_accumulator
from repro.sqlengine.planner.logical import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLeftJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
)
from repro.sqlengine.results import ResultSet


class PhysicalOperator:
    """Base class: a re-runnable iterator over row tuples."""

    scope: Scope

    def rows(self) -> Iterator[tuple]:  # pragma: no cover - overridden
        raise NotImplementedError


class ScanOp(PhysicalOperator):
    """Scan one table, applying pushed filters, then pruning columns."""

    def __init__(self, catalog: Catalog, node: LogicalScan) -> None:
        self._table = catalog.table(node.table)
        full_scope = Scope(
            [(node.binding, name) for name in self._table.column_names()]
        )
        self._predicate_fns = [
            compile_expr(predicate, full_scope) for predicate in node.predicates
        ]
        if node.columns is None:
            self._indexes = None
            self.scope = full_scope
        else:
            self._indexes = [
                self._table.column_index(name) for name in node.columns
            ]
            self.scope = Scope([(node.binding, name) for name in node.columns])

    def rows(self) -> Iterator[tuple]:
        indexes = self._indexes
        predicate_fns = self._predicate_fns
        for row in self._table.rows:
            ok = True
            for fn in predicate_fns:
                if fn(row) is not True:
                    ok = False
                    break
            if not ok:
                continue
            if indexes is None:
                yield row
            else:
                yield tuple(row[i] for i in indexes)


class FilterOp(PhysicalOperator):
    def __init__(self, child: PhysicalOperator, predicates) -> None:
        self._child = child
        self.scope = child.scope
        self._fns = [compile_expr(p, self.scope) for p in predicates]

    def rows(self) -> Iterator[tuple]:
        fns = self._fns
        for row in self._child.rows():
            if all(fn(row) is True for fn in fns):
                yield row


class HashJoinOp(PhysicalOperator):
    """Hash join on equi predicates; degrades to a cross join without any."""

    def __init__(
        self, left: PhysicalOperator, right: PhysicalOperator, equi
    ) -> None:
        self._left = left
        self._right = right
        self.scope = left.scope.concat(right.scope)
        self._left_indexes: list = []
        self._right_indexes: list = []
        for predicate in equi:
            if left.scope.try_resolve(predicate.left) is not None:
                self._left_indexes.append(left.scope.resolve(predicate.left))
                self._right_indexes.append(right.scope.resolve(predicate.right))
            else:
                self._left_indexes.append(left.scope.resolve(predicate.right))
                self._right_indexes.append(right.scope.resolve(predicate.left))

    def rows(self) -> Iterator[tuple]:
        if not self._left_indexes:  # cross join
            right_rows = list(self._right.rows())
            for left_row in self._left.rows():
                for right_row in right_rows:
                    yield left_row + right_row
            return
        table: dict = {}
        right_indexes = self._right_indexes
        for row in self._right.rows():
            key = tuple(row[i] for i in right_indexes)
            if any(value is None for value in key):
                continue
            table.setdefault(key, []).append(row)
        left_indexes = self._left_indexes
        for row in self._left.rows():
            key = tuple(row[i] for i in left_indexes)
            if any(value is None for value in key):
                continue
            for match in table.get(key, ()):
                yield row + match


class LeftJoinOp(PhysicalOperator):
    """Nested-loop LEFT OUTER join with NULL padding."""

    def __init__(
        self, left: PhysicalOperator, right: PhysicalOperator, condition
    ) -> None:
        self._left = left
        self._right = right
        self.scope = left.scope.concat(right.scope)
        self._condition_fn = compile_expr(condition, self.scope)
        self._null_pad = (None,) * len(right.scope)

    def rows(self) -> Iterator[tuple]:
        right_rows = list(self._right.rows())
        condition_fn = self._condition_fn
        null_pad = self._null_pad
        for left_row in self._left.rows():
            matched = False
            for right_row in right_rows:
                combined = left_row + right_row
                if condition_fn(combined) is True:
                    yield combined
                    matched = True
            if not matched:
                yield left_row + null_pad


class AggregateOp(PhysicalOperator):
    """GROUP BY with accumulator-based aggregates and HAVING.

    Output rows are the *representative row* of each group (its first
    input row) extended with one slot per aggregate call; the extended
    scope names those slots ``__agg_<i>`` and :attr:`agg_slots` maps each
    aggregate ``FuncCall`` to its slot so later expressions can read the
    results.
    """

    def __init__(self, child: PhysicalOperator, node: LogicalAggregate) -> None:
        self._child = child
        self._node = node
        scope = child.scope
        self._group_fns = [compile_expr(expr, scope) for expr in node.group_by]
        self._arg_fns: list = []
        for call in node.agg_calls:
            if call.star:
                self._arg_fns.append(None)
            else:
                if len(call.args) != 1:
                    raise SqlExecutionError(
                        f"aggregate {call.to_sql()} takes exactly one argument"
                    )
                self._arg_fns.append(compile_expr(call.args[0], scope))
        self.agg_slots = {
            call: len(scope) + i for i, call in enumerate(node.agg_calls)
        }
        self.scope = Scope(
            scope.pairs
            + [(None, f"__agg_{i}") for i in range(len(node.agg_calls))]
        )
        self._having_fn = (
            compile_expr(node.having, self.scope, self.agg_slots)
            if node.having is not None
            else None
        )

    def rows(self) -> Iterator[tuple]:
        node = self._node
        groups: dict = {}
        group_order: list = []
        for row in self._child.rows():
            key = tuple(fn(row) for fn in self._group_fns)
            if key not in groups:
                accumulators = [
                    make_accumulator(call.name, call.star, call.distinct)
                    for call in node.agg_calls
                ]
                groups[key] = (row, accumulators)
                group_order.append(key)
            __, accumulators = groups[key]
            for call, arg_fn, accumulator in zip(
                node.agg_calls, self._arg_fns, accumulators
            ):
                accumulator.add(1 if call.star else arg_fn(row))

        # aggregate query over empty input and no GROUP BY -> one empty group
        if not groups and not node.group_by:
            accumulators = [
                make_accumulator(call.name, call.star, call.distinct)
                for call in node.agg_calls
            ]
            null_row = (None,) * len(self._child.scope)
            groups[()] = (null_row, accumulators)
            group_order.append(())

        having_fn = self._having_fn
        for key in group_order:
            representative, accumulators = groups[key]
            extended = representative + tuple(
                accumulator.result() for accumulator in accumulators
            )
            if having_fn is None or having_fn(extended) is True:
                yield extended


class ProjectOp:
    """Evaluate the select list; yields ``(out_row, pre_row)`` pairs.

    Star items expand in *canonical* (FROM-clause) column order, so the
    visible column order never depends on the optimizer's join order.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        node: LogicalProject,
        agg_slots: "dict | None",
    ) -> None:
        self._child = child
        self.scope = child.scope
        self.agg_slots = agg_slots or {}
        scope = child.scope
        bindings = {b for b, __ in scope.pairs if b is not None}
        multi_table = len(bindings) > 1
        self.columns: list = []
        self._fns: list = []
        for item in node.items:
            if item.is_star:
                matched_any = False
                for binding, column in node.canonical_pairs:
                    if item.star_table is not None and binding != item.star_table:
                        continue
                    index = scope.try_resolve(ColumnRef(binding, column))
                    if index is None:
                        continue  # pruned away (only possible without '*')
                    matched_any = True
                    if item.star_table is None and multi_table:
                        self.columns.append(f"{binding}.{column}")
                    else:
                        self.columns.append(column)
                    self._fns.append(_make_picker(index))
                if item.star_table is not None and not matched_any:
                    raise SqlCatalogError(
                        f"unknown table in star: {item.star_table!r}"
                    )
                continue
            assert item.expr is not None
            self.columns.append(item.alias or item.expr.to_sql())
            self._fns.append(compile_expr(item.expr, scope, self.agg_slots))

    def pairs(self) -> Iterator[tuple]:
        fns = self._fns
        for row in self._child.rows():
            yield tuple(fn(row) for fn in fns), row


class DistinctOp:
    """Deduplicate projected rows, keeping first occurrences."""

    def __init__(self, child) -> None:
        self._child = child
        self.columns = child.columns
        self.scope = child.scope
        self.agg_slots = child.agg_slots

    def pairs(self) -> Iterator[tuple]:
        seen: set = set()
        for out_row, pre_row in self._child.pairs():
            if out_row in seen:
                continue
            seen.add(out_row)
            yield out_row, pre_row


class SortOp:
    """Stable multi-key sort over aliases, positions or expressions."""

    def __init__(self, child, node: LogicalSort) -> None:
        self._child = child
        self.columns = child.columns
        self.scope = child.scope
        self.agg_slots = child.agg_slots
        self._key_fns: list = []
        for item in node.order_by:
            expr = item.expr
            if isinstance(expr, Literal) and isinstance(expr.value, int):
                position = expr.value - 1
                if not 0 <= position < len(self.columns):
                    raise SqlExecutionError(
                        f"ORDER BY position out of range: {expr.value} "
                        f"(select list has {len(self.columns)} columns)"
                    )
                self._key_fns.append((_make_out_picker(position), item.descending))
                continue
            if (
                isinstance(expr, ColumnRef)
                and expr.table is None
                and expr.column in self.columns
            ):
                position = self.columns.index(expr.column)
                self._key_fns.append((_make_out_picker(position), item.descending))
                continue
            fn = compile_expr(expr, self.scope, self.agg_slots)
            self._key_fns.append((_make_pre_picker(fn), item.descending))

    def pairs(self) -> Iterator[tuple]:
        items = list(self._child.pairs())
        # stable multi-pass sort, last key first
        for key_fn, descending in reversed(self._key_fns):
            items.sort(key=lambda pair: sort_key(key_fn(pair)), reverse=descending)
        return iter(items)


class LimitOp:
    def __init__(self, child, limit: int) -> None:
        self._child = child
        self.columns = child.columns
        self.scope = child.scope
        self.agg_slots = child.agg_slots
        self._limit = limit

    def pairs(self) -> Iterator[tuple]:
        count = 0
        if self._limit <= 0:
            return
        for pair in self._child.pairs():
            yield pair
            count += 1
            if count >= self._limit:
                return


def _make_picker(index: int):
    return lambda row: row[index]


def _make_out_picker(position: int):
    return lambda pair: pair[0][position]


def _make_pre_picker(fn):
    return lambda pair: fn(pair[1])


def sort_key(value: Any) -> tuple:
    """Total order over mixed values: NULLs first, then by type group."""
    if value is None:
        return (0, 0, 0)
    if isinstance(value, bool):
        return (1, 0, int(value))
    if isinstance(value, (int, float)):
        return (1, 1, value)
    if isinstance(value, str):
        return (1, 2, value)
    return (1, 3, str(value))


# ---------------------------------------------------------------------------
# building
# ---------------------------------------------------------------------------


class PreparedPlan:
    """A compiled, re-executable plan (what the plan cache stores)."""

    def __init__(self, root, logical: LogicalNode, columns: list) -> None:
        self._root = root
        self.logical = logical
        self.columns = columns

    def execute(self) -> ResultSet:
        return ResultSet(
            columns=list(self.columns),
            rows=[out_row for out_row, __ in self._root.pairs()],
        )


def build_physical(root: LogicalNode, catalog: Catalog) -> PreparedPlan:
    """Compile a logical plan into a :class:`PreparedPlan`."""
    operator = _build_presentation(root, catalog)
    return PreparedPlan(
        root=operator, logical=root, columns=list(operator.columns)
    )


def _build_presentation(node: LogicalNode, catalog: Catalog):
    """Build the pair-yielding presentation tree (project and above)."""
    if isinstance(node, LogicalLimit):
        return LimitOp(_build_presentation(node.child, catalog), node.limit)
    if isinstance(node, LogicalSort):
        return SortOp(_build_presentation(node.child, catalog), node)
    if isinstance(node, LogicalDistinct):
        return DistinctOp(_build_presentation(node.child, catalog))
    if isinstance(node, LogicalProject):
        child, agg_slots = _build_relational(node.child, catalog)
        return ProjectOp(child, node, agg_slots)
    raise SqlExecutionError(
        f"malformed plan: unexpected presentation node {type(node).__name__}"
    )


def _build_relational(node: LogicalNode, catalog: Catalog):
    """Build a row-yielding operator; returns ``(operator, agg_slots)``."""
    if isinstance(node, LogicalScan):
        return ScanOp(catalog, node), None
    if isinstance(node, LogicalFilter):
        child, agg_slots = _build_relational(node.child, catalog)
        return FilterOp(child, node.predicates), agg_slots
    if isinstance(node, LogicalJoin):
        left, __ = _build_relational(node.left, catalog)
        right, __ = _build_relational(node.right, catalog)
        return HashJoinOp(left, right, node.equi), None
    if isinstance(node, LogicalLeftJoin):
        left, __ = _build_relational(node.left, catalog)
        right, __ = _build_relational(node.right, catalog)
        return LeftJoinOp(left, right, node.condition), None
    if isinstance(node, LogicalAggregate):
        child, __ = _build_relational(node.child, catalog)
        operator = AggregateOp(child, node)
        return operator, operator.agg_slots
    raise SqlExecutionError(
        f"malformed plan: unexpected relational node {type(node).__name__}"
    )
