"""Physical operators: volcano (row) and vectorized (batch) engines.

``build_physical`` compiles an optimized logical plan into a tree of
operators in one of two execution modes.  Expression compilation happens
once, at build time, so a cached :class:`PreparedPlan` can be
re-executed without re-planning — each execution streams fresh results
from the underlying tables.

**Row mode** is the classic volcano engine: every operator is an
iterator over row tuples, one ``next()`` and a handful of closure calls
per row.  Two row shapes flow through the tree:

* relational operators (scan/filter/join/aggregate) yield plain row
  tuples laid out by their :class:`~repro.sqlengine.expressions.Scope`;
* presentation operators (project/distinct/sort/limit) yield
  ``(out_row, pre_row)`` pairs, keeping the pre-projection row around so
  ORDER BY can sort on expressions that were never projected.

**Batch mode** is the vectorized engine: operators exchange *column
batches* — ``(cols, n)`` where ``cols`` is one Python list per scope
column, all of length ``n`` (at most :data:`BATCH_SIZE` rows out of a
scan).  Scans slice the table's columnar storage directly, filters turn
whole-batch predicate evaluation into selection vectors, hash joins
build and probe from column slices, and aggregation feeds grouped
accumulators from per-batch argument columns.  Expressions are compiled
by :func:`~repro.sqlengine.expressions.compile_expr_batch`, which
preserves row-mode semantics exactly (three-valued logic,
``compare_values`` ordering, short-circuit error behavior), so the two
modes produce byte-identical :class:`ResultSet`\\ s.

All pre-planner semantics are preserved in both modes: three-valued
predicate logic, hash joins skipping NULL keys, LEFT JOIN null padding,
the representative-row leniency for non-aggregated GROUP BY
expressions, ORDER BY aliases/positions, and NULLs-first mixed-type
ordering.
"""

from __future__ import annotations

import datetime
import heapq
from typing import Any, Iterator

from repro.errors import SqlCatalogError, SqlExecutionError, SqlTypeError
from repro.resilience.deadline import current_deadline
from repro.sqlengine.ast_nodes import (
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
)
from repro.sqlengine.catalog import Catalog
from repro.sqlengine.encoding import EncodedColumn, gather_column
from repro.sqlengine.segments import snapshot_of
from repro.sqlengine.expressions import (
    Scope,
    compile_expr,
    compile_expr_batch,
    fuse_batch_exprs,
    gather_columns,
    split_conjuncts,
)
from repro.sqlengine.functions import make_accumulator
from repro.obs.metrics import registry as _metrics_registry
from repro.sqlengine.planner.logical import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLeftJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalTopN,
)
from repro.sqlengine.planner.parallel import (
    MorselDispatcher,
    ParallelChainOp,
    ParallelProjectOp,
)
from repro.sqlengine.results import ResultSet
from repro.sqlengine.types import SqlType, parse_date

#: rows per column batch flowing through the vectorized operators
BATCH_SIZE = 1024

#: the execution modes ``build_physical`` understands
EXECUTION_MODES = ("row", "batch")

#: compile equi LEFT JOINs to the gather-based hash operator (module
#: flag so the dictionary-engine benchmark can measure the broadcast
#: baseline; correctness is identical either way)
HASH_LEFT_JOIN_ENABLED = True

# engine-level observability: operators accumulate into locals while
# streaming and flush once per execution in a ``finally`` (so abandoned
# iterators — LIMIT, errors — still report what they did), behind the
# registry's single ``enabled`` flag
_METRICS = _metrics_registry()
_ROWS_SCANNED = _METRICS.counter("engine.rows_scanned")
_ROWS_FILTERED = _METRICS.counter("engine.rows_filtered")
_ROWS_JOINED = _METRICS.counter("engine.rows_joined")
_BATCHES_PRODUCED = _METRICS.counter("engine.batches_produced")
_FUSED_BATCHES = _METRICS.counter("engine.fused_batches")


class PhysicalOperator:
    """Base class: a re-runnable iterator over row tuples."""

    scope: Scope

    def rows(self) -> Iterator[tuple]:  # pragma: no cover - overridden
        raise NotImplementedError


class ScanOp(PhysicalOperator):
    """Scan one table, applying pushed filters, then pruning columns."""

    def __init__(self, catalog: Catalog, node: LogicalScan) -> None:
        self._table = catalog.table(node.table)
        full_scope = Scope(
            [(node.binding, name) for name in self._table.column_names()]
        )
        self._predicate_fns = [
            compile_expr(predicate, full_scope) for predicate in node.predicates
        ]
        if node.columns is None:
            self._indexes = None
            self.scope = full_scope
        else:
            self._indexes = [
                self._table.column_index(name) for name in node.columns
            ]
            self.scope = Scope([(node.binding, name) for name in node.columns])

    def rows(self) -> Iterator[tuple]:
        indexes = self._indexes
        predicate_fns = self._predicate_fns
        # segmented tables read through a pinned (or ad-hoc) snapshot so
        # concurrent DML can never mutate the rows mid-iteration
        snapshot = snapshot_of(self._table)
        source = self._table.rows if snapshot is None else snapshot.iter_rows()
        deadline = current_deadline()
        scanned = 0
        dropped = 0
        try:
            for row in source:
                scanned += 1
                if deadline is not None and not scanned % BATCH_SIZE:
                    deadline.check("scan")
                ok = True
                for fn in predicate_fns:
                    if fn(row) is not True:
                        ok = False
                        break
                if not ok:
                    dropped += 1
                    continue
                if indexes is None:
                    yield row
                else:
                    yield tuple(row[i] for i in indexes)
        finally:
            if scanned and _METRICS.enabled:
                _ROWS_SCANNED.inc(scanned)
                if dropped:
                    _ROWS_FILTERED.inc(dropped)


class FilterOp(PhysicalOperator):
    def __init__(self, child: PhysicalOperator, predicates) -> None:
        self._child = child
        self.scope = child.scope
        self._fns = [compile_expr(p, self.scope) for p in predicates]

    def rows(self) -> Iterator[tuple]:
        fns = self._fns
        dropped = 0
        try:
            for row in self._child.rows():
                if all(fn(row) is True for fn in fns):
                    yield row
                else:
                    dropped += 1
        finally:
            if dropped and _METRICS.enabled:
                _ROWS_FILTERED.inc(dropped)


class HashJoinOp(PhysicalOperator):
    """Hash join on equi predicates; degrades to a cross join without any."""

    def __init__(
        self, left: PhysicalOperator, right: PhysicalOperator, equi
    ) -> None:
        self._left = left
        self._right = right
        self.scope = left.scope.concat(right.scope)
        self._left_indexes: list = []
        self._right_indexes: list = []
        for predicate in equi:
            if left.scope.try_resolve(predicate.left) is not None:
                self._left_indexes.append(left.scope.resolve(predicate.left))
                self._right_indexes.append(right.scope.resolve(predicate.right))
            else:
                self._left_indexes.append(left.scope.resolve(predicate.right))
                self._right_indexes.append(right.scope.resolve(predicate.left))

    def rows(self) -> Iterator[tuple]:
        joined = 0
        try:
            if not self._left_indexes:  # cross join
                right_rows = list(self._right.rows())
                for left_row in self._left.rows():
                    for right_row in right_rows:
                        joined += 1
                        yield left_row + right_row
                return
            table: dict = {}
            right_indexes = self._right_indexes
            for row in self._right.rows():
                key = tuple(row[i] for i in right_indexes)
                if any(value is None for value in key):
                    continue
                table.setdefault(key, []).append(row)
            left_indexes = self._left_indexes
            for row in self._left.rows():
                key = tuple(row[i] for i in left_indexes)
                if any(value is None for value in key):
                    continue
                for match in table.get(key, ()):
                    joined += 1
                    yield row + match
        finally:
            if joined and _METRICS.enabled:
                _ROWS_JOINED.inc(joined)


class LeftJoinOp(PhysicalOperator):
    """Nested-loop LEFT OUTER join with NULL padding."""

    def __init__(
        self, left: PhysicalOperator, right: PhysicalOperator, condition
    ) -> None:
        self._left = left
        self._right = right
        self.scope = left.scope.concat(right.scope)
        self._condition_fn = compile_expr(condition, self.scope)
        self._null_pad = (None,) * len(right.scope)

    def rows(self) -> Iterator[tuple]:
        right_rows = list(self._right.rows())
        condition_fn = self._condition_fn
        null_pad = self._null_pad
        joined = 0
        try:
            for left_row in self._left.rows():
                matched = False
                for right_row in right_rows:
                    combined = left_row + right_row
                    if condition_fn(combined) is True:
                        joined += 1
                        yield combined
                        matched = True
                if not matched:
                    joined += 1
                    yield left_row + null_pad
        finally:
            if joined and _METRICS.enabled:
                _ROWS_JOINED.inc(joined)


class AggregateOp(PhysicalOperator):
    """GROUP BY with accumulator-based aggregates and HAVING.

    Output rows are the *representative row* of each group (its first
    input row) extended with one slot per aggregate call; the extended
    scope names those slots ``__agg_<i>`` and :attr:`agg_slots` maps each
    aggregate ``FuncCall`` to its slot so later expressions can read the
    results.
    """

    def __init__(self, child: PhysicalOperator, node: LogicalAggregate) -> None:
        self._child = child
        self._node = node
        scope = child.scope
        self._group_fns = [compile_expr(expr, scope) for expr in node.group_by]
        self._arg_fns: list = []
        for call in node.agg_calls:
            if call.star:
                self._arg_fns.append(None)
            else:
                if len(call.args) != 1:
                    raise SqlExecutionError(
                        f"aggregate {call.to_sql()} takes exactly one argument"
                    )
                self._arg_fns.append(compile_expr(call.args[0], scope))
        self.agg_slots = {
            call: len(scope) + i for i, call in enumerate(node.agg_calls)
        }
        self.scope = Scope(
            scope.pairs
            + [(None, f"__agg_{i}") for i in range(len(node.agg_calls))]
        )
        self._having_fn = (
            compile_expr(node.having, self.scope, self.agg_slots)
            if node.having is not None
            else None
        )

    def rows(self) -> Iterator[tuple]:
        node = self._node
        groups: dict = {}
        group_order: list = []
        for row in self._child.rows():
            key = tuple(fn(row) for fn in self._group_fns)
            if key not in groups:
                accumulators = [
                    make_accumulator(call.name, call.star, call.distinct)
                    for call in node.agg_calls
                ]
                groups[key] = (row, accumulators)
                group_order.append(key)
            __, accumulators = groups[key]
            for call, arg_fn, accumulator in zip(
                node.agg_calls, self._arg_fns, accumulators
            ):
                accumulator.add(1 if call.star else arg_fn(row))

        # aggregate query over empty input and no GROUP BY -> one empty group
        if not groups and not node.group_by:
            accumulators = [
                make_accumulator(call.name, call.star, call.distinct)
                for call in node.agg_calls
            ]
            null_row = (None,) * len(self._child.scope)
            groups[()] = (null_row, accumulators)
            group_order.append(())

        having_fn = self._having_fn
        for key in group_order:
            representative, accumulators = groups[key]
            extended = representative + tuple(
                accumulator.result() for accumulator in accumulators
            )
            if having_fn is None or having_fn(extended) is True:
                yield extended


def _project_targets(node: LogicalProject, scope: Scope) -> tuple:
    """Resolve the select list against *scope*.

    Returns ``(columns, targets)`` where each target is either a scope
    index (star expansion / plain pickers) or the item's ``Expr``.  Star
    items expand in *canonical* (FROM-clause) column order, so the
    visible column order never depends on the optimizer's join order.
    """
    bindings = {b for b, __ in scope.pairs if b is not None}
    multi_table = len(bindings) > 1
    columns: list = []
    targets: list = []
    for item in node.items:
        if item.is_star:
            matched_any = False
            for binding, column in node.canonical_pairs:
                if item.star_table is not None and binding != item.star_table:
                    continue
                index = scope.try_resolve(ColumnRef(binding, column))
                if index is None:
                    continue  # pruned away (only possible without '*')
                matched_any = True
                if item.star_table is None and multi_table:
                    columns.append(f"{binding}.{column}")
                else:
                    columns.append(column)
                targets.append(index)
            if item.star_table is not None and not matched_any:
                raise SqlCatalogError(
                    f"unknown table in star: {item.star_table!r}"
                )
            continue
        assert item.expr is not None
        columns.append(item.alias or item.expr.to_sql())
        targets.append(item.expr)
    return columns, targets


def _sort_targets(node: LogicalSort, columns: list) -> list:
    """Resolve ORDER BY items to ``(out_position, expr, descending)``.

    Exactly one of ``out_position`` / ``expr`` is set per item: integer
    positions and select-list aliases sort on the projected value,
    anything else sorts on an expression over the pre-projection row.
    """
    specs: list = []
    for item in node.order_by:
        expr = item.expr
        if isinstance(expr, Literal) and isinstance(expr.value, int):
            position = expr.value - 1
            if not 0 <= position < len(columns):
                raise SqlExecutionError(
                    f"ORDER BY position out of range: {expr.value} "
                    f"(select list has {len(columns)} columns)"
                )
            specs.append((position, None, item.descending))
            continue
        if (
            isinstance(expr, ColumnRef)
            and expr.table is None
            and expr.column in columns
        ):
            specs.append((columns.index(expr.column), None, item.descending))
            continue
        specs.append((None, expr, item.descending))
    return specs


class ProjectOp:
    """Evaluate the select list; yields ``(out_row, pre_row)`` pairs."""

    def __init__(
        self,
        child: PhysicalOperator,
        node: LogicalProject,
        agg_slots: "dict | None",
    ) -> None:
        self._child = child
        self.scope = child.scope
        self.agg_slots = agg_slots or {}
        self.columns, targets = _project_targets(node, child.scope)
        self._fns: list = [
            _make_picker(target)
            if isinstance(target, int)
            else compile_expr(target, child.scope, self.agg_slots)
            for target in targets
        ]

    def pairs(self) -> Iterator[tuple]:
        fns = self._fns
        for row in self._child.rows():
            yield tuple(fn(row) for fn in fns), row


class DistinctOp:
    """Deduplicate projected rows, keeping first occurrences."""

    def __init__(self, child) -> None:
        self._child = child
        self.columns = child.columns
        self.scope = child.scope
        self.agg_slots = child.agg_slots

    def pairs(self) -> Iterator[tuple]:
        seen: set = set()
        for out_row, pre_row in self._child.pairs():
            if out_row in seen:
                continue
            seen.add(out_row)
            yield out_row, pre_row


class SortOp:
    """Stable multi-key sort over aliases, positions or expressions."""

    def __init__(self, child, node: LogicalSort) -> None:
        self._child = child
        self.columns = child.columns
        self.scope = child.scope
        self.agg_slots = child.agg_slots
        self._key_fns: list = []
        for position, expr, descending in _sort_targets(node, self.columns):
            if position is not None:
                self._key_fns.append((_make_out_picker(position), descending))
            else:
                fn = compile_expr(expr, self.scope, self.agg_slots)
                self._key_fns.append((_make_pre_picker(fn), descending))

    def pairs(self) -> Iterator[tuple]:
        items = list(self._child.pairs())
        # stable multi-pass sort, last key first
        for key_fn, descending in reversed(self._key_fns):
            items.sort(key=lambda pair: sort_key(key_fn(pair)), reverse=descending)
        return iter(items)


class LimitOp:
    def __init__(self, child, limit: int) -> None:
        self._child = child
        self.columns = child.columns
        self.scope = child.scope
        self.agg_slots = child.agg_slots
        self._limit = limit

    def pairs(self) -> Iterator[tuple]:
        count = 0
        if self._limit <= 0:
            return
        for pair in self._child.pairs():
            yield pair
            count += 1
            if count >= self._limit:
                return


class _ReversedKey:
    """Inverts the ordering of a ``sort_key`` tuple (descending keys)."""

    __slots__ = ("key",)

    def __init__(self, key) -> None:
        self.key = key

    def __lt__(self, other: "_ReversedKey") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _ReversedKey) and self.key == other.key

    def __hash__(self) -> int:  # pragma: no cover - keys are never hashed
        return hash(self.key)


class TopNOp:
    """Fused Sort+Limit: a bounded heap instead of a full sort.

    ``heapq.nsmallest`` over a composite per-row key (each ORDER BY key
    mapped through :func:`sort_key`, descending keys wrapped in
    :class:`_ReversedKey`) is documented to equal
    ``sorted(...)[:n]`` — including stability — so the output is
    byte-identical to SortOp + LimitOp while only ever holding the best
    *limit* rows.
    """

    def __init__(self, child, node: LogicalTopN) -> None:
        self._child = child
        self.columns = child.columns
        self.scope = child.scope
        self.agg_slots = child.agg_slots
        self._limit = node.limit
        self._key_fns: list = []
        for position, expr, descending in _sort_targets(node, self.columns):
            if position is not None:
                self._key_fns.append((_make_out_picker(position), descending))
            else:
                fn = compile_expr(expr, self.scope, self.agg_slots)
                self._key_fns.append((_make_pre_picker(fn), descending))

    def pairs(self) -> Iterator[tuple]:
        if self._limit <= 0:
            return iter(())
        key_fns = self._key_fns

        def composite(pair: tuple) -> tuple:
            return tuple(
                _ReversedKey(sort_key(fn(pair)))
                if descending
                else sort_key(fn(pair))
                for fn, descending in key_fns
            )

        return iter(
            heapq.nsmallest(self._limit, self._child.pairs(), key=composite)
        )


def _make_picker(index: int):
    return lambda row: row[index]


def _make_out_picker(position: int):
    return lambda pair: pair[0][position]


def _make_pre_picker(fn):
    return lambda pair: fn(pair[1])


def sort_key(value: Any) -> tuple:
    """Total order over mixed values: NULLs first, then by type group."""
    if value is None:
        return (0, 0, 0)
    if isinstance(value, bool):
        return (1, 0, int(value))
    if isinstance(value, (int, float)):
        return (1, 1, value)
    if isinstance(value, str):
        return (1, 2, value)
    return (1, 3, str(value))


# ---------------------------------------------------------------------------
# vectorized (batch) operators
# ---------------------------------------------------------------------------


class BatchOperator:
    """Base class: a re-runnable stream of ``(cols, n)`` column batches."""

    scope: Scope

    def batches(self) -> Iterator[tuple]:  # pragma: no cover - overridden
        raise NotImplementedError


def _materialize_batches(operator: BatchOperator) -> tuple:
    """Concatenate an operator's batches into full columns; ``(cols, n)``."""
    cols: list = [[] for __ in range(len(operator.scope))]
    total = 0
    for batch_cols, n in operator.batches():
        total += n
        for accumulated, column in zip(cols, batch_cols):
            accumulated.extend(column)
    return cols, total


def _apply_predicates(fns: list, cols: list, n: int) -> tuple:
    """Run predicate batch-fns in order, compacting between them.

    Returns the surviving ``(cols, n)``; predicates after the first are
    only evaluated over rows that passed the earlier ones, exactly like
    the row engine's per-row short-circuit.
    """
    for fn in fns:
        if n == 0:
            break
        mask = fn(cols, n)
        selected = [i for i, value in enumerate(mask) if value is True]
        if len(selected) == n:
            continue
        if not selected:
            return cols, 0
        cols = gather_columns(cols, selected)
        n = len(selected)
    return cols, n


def _apply_fused(fused_fn, cols: list, n: int) -> tuple:
    """Apply one fused filter function (returns selected row indices)."""
    selected = fused_fn(cols, n)
    count = len(selected)
    if count == n:
        return cols, n
    if not count:
        return cols, 0
    return gather_columns(cols, selected), count


def _fusion_stages(predicates, fns, scope, class_of) -> list:
    """Ordered filter stages: fused runs interleaved with closure runs.

    Each stage is ``("fused", fn)`` — one generated function covering a
    contiguous run of provably never-raising conjuncts — or
    ``("closures", [fn, ...])`` for the conjuncts in between, which keep
    their compiled closures.  Stages apply in predicate order with
    compaction between them, so a conjunct still only ever sees rows
    that survived everything before it: the row engine's short-circuit
    and error surface are preserved exactly, while every fusible run —
    wherever it sits in the chain — collapses into one loop.
    """
    stages: list = []
    position = 0
    total = len(predicates)
    while position < total:
        fused = fuse_batch_exprs(
            predicates[position:], scope, class_of, mode="filter"
        )
        if fused is not None:
            stages.append(("fused", fused.fn))
            position += fused.consumed
            continue
        if stages and stages[-1][0] == "closures":
            stages[-1][1].append(fns[position])
        else:
            stages.append(("closures", [fns[position]]))
        position += 1
    return stages


def _apply_filter_stages(stages: list, cols: list, n: int) -> tuple:
    """Run filter stages in order; ``(cols, n, fused_stage_ran)``."""
    used_fused = False
    for kind, payload in stages:
        if n == 0:
            break
        if kind == "fused":
            used_fused = True
            cols, n = _apply_fused(payload, cols, n)
        else:
            cols, n = _apply_predicates(payload, cols, n)
    return cols, n, used_fused


class _TopNBound:
    """A shared cell streaming BatchTopNOp's worst-kept leading key.

    The TopN operator writes its current leading-key bound (already
    ``sort_key``-decorated, wrapped in :class:`_ReversedKey` for
    descending orders) whenever it tightens; upstream scans/filters
    read it per batch and pre-drop rows that sort strictly past it —
    rows the TopN check itself would have skipped.  ``None`` means "no
    bound yet" (fewer than N candidates seen).
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = None


def _apply_topn_bound(cell, key_index: int, descending: bool, cols, n):
    """Pre-drop rows whose leading sort key is strictly past the bound."""
    bound = cell.value
    if bound is None or n == 0:
        return cols, n
    column = cols[key_index]
    if isinstance(column, EncodedColumn):
        column = column.decode()
    if descending:
        selected = [
            i
            for i, value in enumerate(column)
            if not bound < _ReversedKey(sort_key(value))
        ]
    else:
        selected = [
            i for i, value in enumerate(column) if not bound < sort_key(value)
        ]
    count = len(selected)
    if count == n:
        return cols, n
    if not count:
        return cols, 0
    return gather_columns(cols, selected), count


def _fusion_class_of(node: LogicalNode, catalog: Catalog):
    """``(binding, column) -> value class`` for :func:`fuse_batch_exprs`.

    Resolves through the scans under *node*; anything it cannot pin to
    a base-table column (aggregate slots, unknown bindings) maps to
    None, which makes the fuser refuse the expression.
    """
    tables = {
        binding: catalog.table(name)
        for binding, name in _scan_bindings(node).items()
    }

    def class_of(binding, column):
        table = tables.get(binding)
        if table is None or not table.has_column(column):
            return None
        return _VALUE_CLASS.get(table.column(column).sql_type)

    return class_of


class BatchScanOp(BatchOperator):
    """Slice the table's columnar storage into batches; filter and prune."""

    def __init__(
        self, catalog: Catalog, node: LogicalScan, fused: bool = False
    ) -> None:
        self._table = catalog.table(node.table)
        self.node = node
        full_scope = Scope(
            [(node.binding, name) for name in self._table.column_names()]
        )
        self._predicate_fns = [
            compile_expr_batch(predicate, full_scope)
            for predicate in node.predicates
        ]
        if fused and node.predicates:
            self._filter_stages = _fusion_stages(
                node.predicates,
                self._predicate_fns,
                full_scope,
                _fusion_class_of(node, catalog),
            )
        elif node.predicates:
            self._filter_stages = [("closures", self._predicate_fns)]
        else:
            self._filter_stages = []
        if node.columns is None:
            self._indexes = None
            self.scope = full_scope
        else:
            self._indexes = [
                self._table.column_index(name) for name in node.columns
            ]
            self.scope = Scope([(node.binding, name) for name in node.columns])
        # TopN bound pushdown (see _connect_topn_bound): a shared cell
        # plus the leading sort key's index in this scan's output scope
        self._bound_cell = None
        self._bound_key = 0
        self._bound_descending = False

    def connect_bound(
        self, cell: _TopNBound, key_index: int, descending: bool
    ) -> None:
        self._bound_cell = cell
        self._bound_key = key_index
        self._bound_descending = descending

    def row_count(self) -> int:
        """Current table cardinality (morsel partitioning reads this).

        Under an installed pin scope this is the *snapshot* cardinality,
        so morsel partitioning and the per-morsel ``batches_range``
        calls agree on one frozen row space.
        """
        snapshot = snapshot_of(self._table)
        if snapshot is not None:
            return snapshot.row_count
        return len(self._table.rows)

    def batches(self) -> Iterator[tuple]:
        snapshot = snapshot_of(self._table)
        last = (
            snapshot.row_count if snapshot is not None else len(self._table.rows)
        )
        return self.batches_range(0, last, snapshot)

    def batches_range(
        self, first: int, last: int, snapshot=None
    ) -> Iterator[tuple]:
        """Batches for the row range ``[first, last)``.

        *first* must be a multiple of :data:`BATCH_SIZE` so a morsel's
        batch boundaries coincide with the serial scan's.  With a
        snapshot (explicit or installed via a pin scope), batches are
        assembled from the pinned frozen segments + delta instead of
        the live lists — same rows, same order, same batch boundaries.
        """
        table = self._table
        width = len(table.columns)
        if snapshot is None:
            snapshot = snapshot_of(table)
        indexes = self._indexes
        stages = self._filter_stages
        prune_early = not stages and indexes is not None
        if prune_early:
            # nothing evaluates against the full layout: slice only the
            # columns the scan actually emits
            emit = indexes
            indexes = None
        else:
            emit = range(width)
        if snapshot is None:
            # dictionary-encoded TEXT columns are sliced as code batches
            # (EncodedColumn) so downstream operators can work on integer
            # codes; everything else slices the plain value lists
            sources = []
            for i in emit:
                dictionary = table.column_dictionary(i)
                if dictionary is not None:
                    sources.append((dictionary, table.column_codes(i)))
                else:
                    sources.append((None, table.column_data(i)))

            def slice_batch(start: int, stop: int) -> list:
                return [
                    EncodedColumn(dictionary, data[start:stop])
                    if dictionary is not None
                    else data[start:stop]
                    for dictionary, data in sources
                ]

        else:
            # snapshot batches carry plain decoded values (segments are
            # frozen before dictionary codes can be pinned consistently);
            # downstream operators detect EncodedColumn per batch, so
            # value batches follow the ordinary unencoded path
            columns = list(emit)

            def slice_batch(start: int, stop: int) -> list:
                return [
                    snapshot.column_slice(i, start, stop) for i in columns
                ]

        bound_cell = self._bound_cell
        deadline = current_deadline()
        scanned = 0
        dropped = 0
        batches = 0
        fused_batches = 0
        try:
            for start in range(first, last, BATCH_SIZE):
                if deadline is not None:
                    deadline.check("scan")
                stop = min(start + BATCH_SIZE, last)
                cols = slice_batch(start, stop)
                n = stop - start
                scanned += n
                if stages:
                    cols, n, used_fused = _apply_filter_stages(
                        stages, cols, n
                    )
                    if used_fused:
                        fused_batches += 1
                dropped += stop - start - n
                if n == 0:
                    continue
                if indexes is not None:
                    cols = [cols[i] for i in indexes]
                if bound_cell is not None:
                    before = n
                    cols, n = _apply_topn_bound(
                        bound_cell,
                        self._bound_key,
                        self._bound_descending,
                        cols,
                        n,
                    )
                    dropped += before - n
                    if n == 0:
                        continue
                batches += 1
                yield cols, n
        finally:
            if scanned and _METRICS.enabled:
                _ROWS_SCANNED.inc(scanned)
                _BATCHES_PRODUCED.inc(batches)
                if fused_batches:
                    _FUSED_BATCHES.inc(fused_batches)
                if dropped:
                    _ROWS_FILTERED.inc(dropped)


class BatchFilterOp(BatchOperator):
    def __init__(
        self,
        child: BatchOperator,
        predicates,
        node: "LogicalNode | None" = None,
        catalog: "Catalog | None" = None,
        fused: bool = False,
    ) -> None:
        self._child = child
        self.scope = child.scope
        self._predicates = list(predicates)
        self._fns = [compile_expr_batch(p, self.scope) for p in predicates]
        if fused and node is not None and catalog is not None:
            self._filter_stages = _fusion_stages(
                self._predicates,
                self._fns,
                self.scope,
                _fusion_class_of(node, catalog),
            )
        else:
            self._filter_stages = [("closures", self._fns)]
        self._bound_cell = None
        self._bound_key = 0
        self._bound_descending = False

    def connect_bound(
        self, cell: _TopNBound, key_index: int, descending: bool
    ) -> None:
        self._bound_cell = cell
        self._bound_key = key_index
        self._bound_descending = descending

    def batches(self) -> Iterator[tuple]:
        return self.process(self._child.batches())

    def process(self, stream) -> Iterator[tuple]:
        """Filter one batch stream (the morsel-pipeline entry point)."""
        stages = self._filter_stages
        bound_cell = self._bound_cell
        dropped = 0
        batches = 0
        fused_batches = 0
        try:
            for cols, n in stream:
                before = n
                if n:
                    cols, n, used_fused = _apply_filter_stages(
                        stages, cols, n
                    )
                    if used_fused:
                        fused_batches += 1
                if n and bound_cell is not None:
                    cols, n = _apply_topn_bound(
                        bound_cell,
                        self._bound_key,
                        self._bound_descending,
                        cols,
                        n,
                    )
                dropped += before - n
                if n:
                    batches += 1
                    yield cols, n
        finally:
            if _METRICS.enabled and (dropped or batches):
                _ROWS_FILTERED.inc(dropped)
                _BATCHES_PRODUCED.inc(batches)
                if fused_batches:
                    _FUSED_BATCHES.inc(fused_batches)


def _build_join_hash_table(cols, n: int, key_indexes) -> dict:
    """Hash the build side of a join: key -> row indices into *cols*.

    Rows whose key contains a NULL never enter the table (SQL equality
    with NULL is never True).  Bucket lists preserve build-side row
    order, which both join operators rely on for output determinism.
    """
    table: dict = {}
    if len(key_indexes) == 1:
        key_column = cols[key_indexes[0]]
        for i in range(n):
            key = key_column[i]
            if key is None:
                continue
            bucket = table.get(key)
            if bucket is None:
                table[key] = bucket = []
            bucket.append(i)
    else:
        key_columns = [cols[i] for i in key_indexes]
        for i, key in enumerate(zip(*key_columns)):
            if any(value is None for value in key):
                continue
            bucket = table.get(key)
            if bucket is None:
                table[key] = bucket = []
            bucket.append(i)
    return table


def _buckets_by_code(dictionary, get) -> list:
    """Resolve every dictionary entry to its hash bucket (or None) once.

    The dictionary-encoded probe fast path: after this, probing is one
    list index per row instead of a hash lookup.  Dead (GC'd) dictionary
    slots are None and map to no bucket.
    """
    return [
        None if value is None else get(value) for value in dictionary.values
    ]


class _HashProbe:
    """Per-execution probe of a join hash table, shared by both joins.

    Feeds probe-side batches through :meth:`probe` and returns aligned
    ``(probe row indices, build row indices)`` selection vectors — one
    entry per matching pair, in probe-row order, bucket order preserved
    within a probe row.  NULL keys never match.  The dictionary-encoded
    fast path (code → bucket, resolved once per dictionary and reused
    across batches) lives here so the inner and LEFT hash joins stay in
    lockstep.
    """

    __slots__ = ("_key_indexes", "_get", "_single", "_dictionary", "_buckets")

    def __init__(self, table: dict, key_indexes) -> None:
        self._key_indexes = key_indexes
        self._get = table.get
        self._single = len(key_indexes) == 1
        self._dictionary = None
        self._buckets: list = []

    def probe(self, cols, n: int) -> tuple:
        left_sel: list = []
        right_sel: list = []
        extend_left = left_sel.extend
        append_left = left_sel.append
        extend_right = right_sel.extend
        append_right = right_sel.append
        get = self._get
        if self._single:
            key_column = cols[self._key_indexes[0]]
            if isinstance(key_column, EncodedColumn):
                dictionary = key_column.dictionary
                if dictionary is not self._dictionary:
                    self._dictionary = dictionary
                    self._buckets = _buckets_by_code(dictionary, get)
                buckets = self._buckets
                for i, code in enumerate(key_column.codes):
                    if code is None:
                        continue
                    bucket = buckets[code]
                    if not bucket:
                        continue
                    if len(bucket) == 1:
                        append_left(i)
                        append_right(bucket[0])
                    else:
                        extend_left([i] * len(bucket))
                        extend_right(bucket)
            else:
                for i in range(n):
                    key = key_column[i]
                    if key is None:
                        continue
                    bucket = get(key)
                    if not bucket:
                        continue
                    if len(bucket) == 1:
                        append_left(i)
                        append_right(bucket[0])
                    else:
                        extend_left([i] * len(bucket))
                        extend_right(bucket)
        else:
            key_columns = [cols[i] for i in self._key_indexes]
            for i, key in enumerate(zip(*key_columns)):
                if any(value is None for value in key):
                    continue
                bucket = get(key)
                if not bucket:
                    continue
                if len(bucket) == 1:
                    append_left(i)
                    append_right(bucket[0])
                else:
                    extend_left([i] * len(bucket))
                    extend_right(bucket)
        return left_sel, right_sel


class BatchHashJoinOp(BatchOperator):
    """Hash join building and probing from column slices.

    The build (right) side is materialized into full columns once; the
    hash table maps key -> row indices into those columns.  Probe output
    is assembled by gathering both sides through selection vectors, so
    no per-row tuples are built below the presentation operators.
    """

    def __init__(
        self, left: BatchOperator, right: BatchOperator, equi
    ) -> None:
        self._left = left
        self._right = right
        self.scope = left.scope.concat(right.scope)
        self._left_indexes: list = []
        self._right_indexes: list = []
        for predicate in equi:
            if left.scope.try_resolve(predicate.left) is not None:
                self._left_indexes.append(left.scope.resolve(predicate.left))
                self._right_indexes.append(right.scope.resolve(predicate.right))
            else:
                self._left_indexes.append(left.scope.resolve(predicate.right))
                self._right_indexes.append(right.scope.resolve(predicate.left))
        #: morsel exchange over the build side (None = serial build)
        self._build_exchange = None

    def set_parallel_build(self, exchange) -> None:
        """Partition the build side's materialization + hashing."""
        self._build_exchange = exchange

    def _build_morsel(self, stream) -> tuple:
        """Worker task: materialize one morsel and hash it locally."""
        cols: list = [[] for __ in range(len(self._right.scope))]
        total = 0
        for batch_cols, n in stream:
            total += n
            for accumulated, column in zip(cols, batch_cols):
                accumulated.extend(column)
        return (
            cols,
            total,
            _build_join_hash_table(cols, total, self._right_indexes),
        )

    def _parallel_build(self) -> tuple:
        """Merge per-morsel partitions, in morsel order, with offsets.

        Bucket lists stay in build-side row order (partitions cover
        disjoint, increasing row ranges), so probe output is identical
        to the serial build; dict *key insertion* order differs, but
        probing never iterates the table.
        """
        cols: list = [[] for __ in range(len(self._right.scope))]
        table: dict = {}
        offset = 0
        for part_cols, part_n, part_table in self._build_exchange.run_tasks(
            self._build_morsel
        ):
            for accumulated, column in zip(cols, part_cols):
                accumulated.extend(column)
            for key, bucket in part_table.items():
                existing = table.get(key)
                if existing is None:
                    table[key] = (
                        [offset + i for i in bucket] if offset else bucket
                    )
                else:
                    existing.extend(offset + i for i in bucket)
            offset += part_n
        return cols, offset, table

    def batches(self) -> Iterator[tuple]:
        joined = 0
        batches = 0
        try:
            if not self._left_indexes:
                for out, n in self._cross_batches():
                    joined += n
                    batches += 1
                    yield out, n
                return
            if self._build_exchange is not None:
                right_cols, right_n, table = self._parallel_build()
            else:
                right_cols, right_n = _materialize_batches(self._right)
                table = _build_join_hash_table(
                    right_cols, right_n, self._right_indexes
                )
            probe = _HashProbe(table, self._left_indexes)
            for cols, n in self._left.batches():
                left_sel, right_sel = probe.probe(cols, n)
                if not left_sel:
                    continue
                out = [gather_column(column, left_sel) for column in cols]
                out.extend(
                    [column[j] for j in right_sel] for column in right_cols
                )
                joined += len(left_sel)
                batches += 1
                yield out, len(left_sel)
        finally:
            if joined and _METRICS.enabled:
                _ROWS_JOINED.inc(joined)
                _BATCHES_PRODUCED.inc(batches)

    def _cross_batches(self) -> Iterator[tuple]:
        right_cols, right_n = _materialize_batches(self._right)
        if right_n == 0:
            return
        for cols, n in self._left.batches():
            for i in range(n):
                out = [[column[i]] * right_n for column in cols]
                out.extend(right_cols)
                yield out, right_n


class BatchLeftJoinOp(BatchOperator):
    """LEFT OUTER join with NULL padding: hash path or broadcast.

    The default execution is the **gather-based hash path**: the build
    (right) side is materialized once and hashed on the recognised equi
    key columns, each left batch probes it (one lookup per row —
    dictionary-encoded probe columns resolve every code to its bucket
    once and then index a list), residual ON conjuncts are evaluated
    vectorized over the candidate pairs only, and unmatched left rows
    are NULL-padded through selection vectors in left-row order —
    byte-identical output to the broadcast path.

    The broadcast path (one vectorized condition evaluation per left
    row against the whole right side) remains for conditions without a
    usable equi conjunct, and wherever hashing could diverge from
    ``compare_values`` semantics: REAL keys (NaN compares equal to
    every number, but never hash-matches), cross-class keys, and
    residuals that could raise data-dependent errors the broadcast
    evaluation order would surface.  ``enable_hash`` is called by the
    plan builder after that analysis (see :func:`_analyze_left_join`).
    """

    def __init__(
        self, left: BatchOperator, right: BatchOperator, condition
    ) -> None:
        self._left = left
        self._right = right
        self.scope = left.scope.concat(right.scope)
        self._condition_fn = compile_expr_batch(condition, self.scope)
        self._key_pairs: tuple = ()
        self._residual_fns: list = []

    def enable_hash(self, key_pairs, residual_fns) -> None:
        """Switch to the hash path (builder-verified equi keys)."""
        self._key_pairs = tuple(key_pairs)
        self._residual_fns = list(residual_fns)

    def batches(self) -> Iterator[tuple]:
        right_cols, right_n = _materialize_batches(self._right)
        if self._key_pairs:
            source = self._hash_batches(right_cols, right_n)
        else:
            source = self._broadcast_batches(right_cols, right_n)
        joined = 0
        batches = 0
        try:
            for out, n in source:
                joined += n
                batches += 1
                yield out, n
        finally:
            if joined and _METRICS.enabled:
                _ROWS_JOINED.inc(joined)
                _BATCHES_PRODUCED.inc(batches)

    # ------------------------------------------------------------------
    def _hash_batches(self, right_cols, right_n) -> Iterator[tuple]:
        left_keys = [pair[0] for pair in self._key_pairs]
        right_keys = [pair[1] for pair in self._key_pairs]
        table = _build_join_hash_table(right_cols, right_n, right_keys)
        residual_fns = self._residual_fns
        probe = _HashProbe(table, left_keys)
        for cols, n in self._left.batches():
            # probe: candidate (left row, right row) pairs in left order
            cand_left, cand_right = probe.probe(cols, n)

            # residual ON conjuncts run over the candidates only (they
            # are builder-proven side-effect free, so this matches the
            # broadcast evaluation exactly)
            if residual_fns and cand_left:
                combined = [
                    gather_column(column, cand_left) for column in cols
                ]
                combined.extend(
                    [column[j] for j in cand_right] for column in right_cols
                )
                m = len(cand_left)
                for fn in residual_fns:
                    if m == 0:
                        break
                    mask = fn(combined, m)
                    selected = [
                        i for i, value in enumerate(mask) if value is True
                    ]
                    if len(selected) == m:
                        continue
                    cand_left = [cand_left[i] for i in selected]
                    cand_right = [cand_right[i] for i in selected]
                    combined = gather_columns(combined, selected)
                    m = len(selected)

            # merge surviving matches with NULL pads, in left-row order
            left_sel: list = []
            right_sel: list = []  # right row index, or None for padding
            ci = 0
            total = len(cand_left)
            for i in range(n):
                if ci < total and cand_left[ci] == i:
                    while ci < total and cand_left[ci] == i:
                        left_sel.append(i)
                        right_sel.append(cand_right[ci])
                        ci += 1
                else:
                    left_sel.append(i)
                    right_sel.append(None)
            out = [gather_column(column, left_sel) for column in cols]
            out.extend(
                [None if j is None else column[j] for j in right_sel]
                for column in right_cols
            )
            yield out, len(left_sel)

    # ------------------------------------------------------------------
    def _broadcast_batches(self, right_cols, right_n) -> Iterator[tuple]:
        condition_fn = self._condition_fn
        for cols, n in self._left.batches():
            left_sel: list = []
            right_sel: list = []  # right row index, or None for padding
            for i in range(n):
                matches: list = []
                if right_n:
                    combined = [[column[i]] * right_n for column in cols]
                    combined.extend(right_cols)
                    mask = condition_fn(combined, right_n)
                    matches = [j for j, v in enumerate(mask) if v is True]
                if matches:
                    left_sel.extend([i] * len(matches))
                    right_sel.extend(matches)
                else:
                    left_sel.append(i)
                    right_sel.append(None)
            out = [gather_column(column, left_sel) for column in cols]
            out.extend(
                [None if j is None else column[j] for j in right_sel]
                for column in right_cols
            )
            yield out, len(left_sel)


# hash-key compatible SqlTypes: within one class, dict hashing agrees
# exactly with compare_values equality.  REAL is deliberately absent —
# NaN compares equal to every number under compare_values but never
# equals itself in a hash table.
_HASH_KEY_CLASS = {
    SqlType.INTEGER: "int",
    SqlType.TEXT: "str",
    SqlType.DATE: "date",
    SqlType.BOOLEAN: "bool",
}

#: value classes used by the residual-safety analysis
_VALUE_CLASS = {
    SqlType.INTEGER: "num",
    SqlType.REAL: "num",
    SqlType.TEXT: "str",
    SqlType.DATE: "date",
    SqlType.BOOLEAN: "bool",
}

#: scalar functions that can never raise, whatever their input
_SAFE_FUNCTIONS = {"lower", "upper", "length", "coalesce"}


def _scan_bindings(node: LogicalNode) -> dict:
    """``binding -> table name`` for every scan in *node*'s subtree."""
    found: dict = {}
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, LogicalScan):
            found[current.binding] = current.table
        stack.extend(current.children())
    return found


def _as_left_join_key(conjunct, left_scope: Scope, right_scope: Scope):
    """``(left index, right index)`` if *conjunct* is a cross-side equi."""
    if not (isinstance(conjunct, BinaryOp) and conjunct.op == "="):
        return None
    a, b = conjunct.left, conjunct.right
    if not (isinstance(a, ColumnRef) and isinstance(b, ColumnRef)):
        return None
    a_left, a_right = left_scope.try_resolve(a), right_scope.try_resolve(a)
    b_left, b_right = left_scope.try_resolve(b), right_scope.try_resolve(b)
    if a_left is not None and a_right is None and b_left is None \
            and b_right is not None:
        return a_left, b_right
    if b_left is not None and b_right is None and a_left is None \
            and a_right is not None:
        return b_left, a_right
    return None


def _value_class(expr, class_of) -> tuple:
    """``(safe, class)``: can *expr* never raise, and what does it yield?

    *class_of* maps a ColumnRef to its ``_VALUE_CLASS`` entry (or None
    when unresolvable).  ``safe`` is conservative: False means "could
    raise a data-dependent error", not "will".  A safe expression with
    class None (e.g. CASE) still composes under operators that accept
    any value (NOT, AND/OR, LIKE, ``||``) but blocks comparisons.
    """
    if isinstance(expr, Literal):
        value = expr.value
        if value is None:
            return True, "null"
        if isinstance(value, bool):
            return True, "bool"
        if isinstance(value, (int, float)):
            return True, "num"
        if isinstance(value, str):
            return True, "str"
        if isinstance(value, datetime.date):
            return True, "date"
        return True, None
    if isinstance(expr, ColumnRef):
        cls = class_of(expr)
        return cls is not None, cls
    if isinstance(expr, UnaryOp):
        safe, cls = _value_class(expr.operand, class_of)
        if expr.op == "NOT":  # `not value` never raises
            return safe, "bool"
        if expr.op == "-":  # raises on non-numbers
            return safe and cls in ("num", "null"), "num"
        return False, None
    if isinstance(expr, BinaryOp):
        op = expr.op
        left_safe, left_cls = _value_class(expr.left, class_of)
        right_safe, right_cls = _value_class(expr.right, class_of)
        if not (left_safe and right_safe):
            return False, None
        if op in ("AND", "OR"):  # identity checks only, never raise
            return True, "bool"
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return _safe_compare(expr.left, left_cls, expr.right,
                                 right_cls), "bool"
        if op in ("+", "-", "*"):  # raise on non-numbers only
            return (left_cls in ("num", "null")
                    and right_cls in ("num", "null")), "num"
        if op == "||":  # str() never raises
            return True, "str"
        return False, None  # '/' can divide by zero
    if isinstance(expr, Like):  # str()/regex never raise
        operand_safe, __ = _value_class(expr.operand, class_of)
        pattern_safe, __ = _value_class(expr.pattern, class_of)
        return operand_safe and pattern_safe, "bool"
    if isinstance(expr, IsNull):
        safe, __ = _value_class(expr.operand, class_of)
        return safe, "bool"
    if isinstance(expr, Between):
        operand_safe, operand_cls = _value_class(expr.operand, class_of)
        low_safe, low_cls = _value_class(expr.low, class_of)
        high_safe, high_cls = _value_class(expr.high, class_of)
        safe = (
            operand_safe and low_safe and high_safe
            and _safe_compare(expr.operand, operand_cls, expr.low, low_cls)
            and _safe_compare(expr.operand, operand_cls, expr.high, high_cls)
        )
        return safe, "bool"
    if isinstance(expr, InList):
        operand_safe, operand_cls = _value_class(expr.operand, class_of)
        if not operand_safe:
            return False, None
        for item in expr.items:
            item_safe, item_cls = _value_class(item, class_of)
            if not item_safe or not _safe_compare(
                expr.operand, operand_cls, item, item_cls
            ):
                return False, None
        return True, "bool"
    if isinstance(expr, CaseWhen):
        for condition, value in expr.branches:
            if not _value_class(condition, class_of)[0]:
                return False, None
            if not _value_class(value, class_of)[0]:
                return False, None
        if expr.default is not None and not _value_class(
            expr.default, class_of
        )[0]:
            return False, None
        return True, None
    if isinstance(expr, FuncCall):
        if expr.name not in _SAFE_FUNCTIONS:
            return False, None
        for arg in expr.args:
            if not _value_class(arg, class_of)[0]:
                return False, None
        if expr.name in ("lower", "upper"):
            return True, "str"
        if expr.name == "length":
            return True, "num"
        return True, None  # coalesce: class depends on its arguments
    return False, None


def _safe_compare(left_expr, left_cls, right_expr, right_cls) -> bool:
    """Can ``compare_values(left, right)`` never raise for these shapes?"""
    if left_cls == "null" or right_cls == "null":
        return True
    if left_cls is None or right_cls is None:
        return False
    if left_cls == right_cls and left_cls in ("num", "str", "bool", "date"):
        return True
    # DATE against a string literal parses the literal — validate it now
    for date_cls, other_cls, other_expr in (
        (left_cls, right_cls, right_expr),
        (right_cls, left_cls, left_expr),
    ):
        if (
            date_cls == "date"
            and other_cls == "str"
            and isinstance(other_expr, Literal)
        ):
            try:
                parse_date(other_expr.value)
            except SqlTypeError:
                return False
            return True
    return False


def _analyze_left_join(
    node: LogicalLeftJoin, left_scope: Scope, right_scope: Scope,
    catalog: Catalog
):
    """Hash-path plan for a LEFT JOIN condition, or None for broadcast.

    Returns ``(key_pairs, residual_conjuncts)`` when every ON conjunct
    is either a hash-compatible cross-side equi predicate or a
    provably error-free residual — the exact conditions under which the
    hash path is byte-identical (results *and* errors) to the
    broadcast/row evaluation.
    """
    tables = {
        binding: catalog.table(name)
        for binding, name in _scan_bindings(node).items()
    }

    def sql_type_at(scope: Scope, index: int) -> SqlType:
        binding, column = scope.pairs[index]
        return tables[binding].column(column).sql_type

    def class_of(ref: ColumnRef):
        left_index = left_scope.try_resolve(ref)
        right_index = right_scope.try_resolve(ref)
        if left_index is not None and right_index is None:
            return _VALUE_CLASS.get(sql_type_at(left_scope, left_index))
        if right_index is not None and left_index is None:
            return _VALUE_CLASS.get(sql_type_at(right_scope, right_index))
        return None

    key_pairs: list = []
    residual: list = []
    for conjunct in split_conjuncts(node.condition):
        pair = _as_left_join_key(conjunct, left_scope, right_scope)
        if pair is not None:
            left_cls = _HASH_KEY_CLASS.get(sql_type_at(left_scope, pair[0]))
            right_cls = _HASH_KEY_CLASS.get(sql_type_at(right_scope, pair[1]))
            if left_cls is not None and left_cls == right_cls:
                key_pairs.append(pair)
                continue
        if _value_class(conjunct, class_of)[0]:
            residual.append(conjunct)
        else:
            return None
    if not key_pairs:
        return None
    return key_pairs, residual


class BatchAggregateOp(BatchOperator):
    """GROUP BY over batches: grouped hash table + accumulators.

    Group keys and aggregate arguments are evaluated once per batch as
    whole columns; the per-row work is one dict probe and the
    accumulator updates.  Output follows row mode exactly: the
    representative (first) row of each group extended with the
    aggregate results, groups in first-occurrence order, HAVING applied
    over the extended batch.
    """

    def __init__(self, child: BatchOperator, node: LogicalAggregate) -> None:
        self._child = child
        self._node = node
        scope = child.scope
        self._group_fns = [
            compile_expr_batch(expr, scope) for expr in node.group_by
        ]
        self._arg_fns: list = []
        for call in node.agg_calls:
            if call.star:
                self._arg_fns.append(None)
            else:
                if len(call.args) != 1:
                    raise SqlExecutionError(
                        f"aggregate {call.to_sql()} takes exactly one argument"
                    )
                self._arg_fns.append(compile_expr_batch(call.args[0], scope))
        self.agg_slots = {
            call: len(scope) + i for i, call in enumerate(node.agg_calls)
        }
        self.scope = Scope(
            scope.pairs
            + [(None, f"__agg_{i}") for i in range(len(node.agg_calls))]
        )
        self._having_fn = (
            compile_expr_batch(node.having, self.scope, self.agg_slots)
            if node.having is not None
            else None
        )
        #: morsel exchange over the input chain (None = serial consume)
        self._exchange = None

    def set_parallel(self, exchange) -> None:
        """Fold each morsel into a partial state inside the workers."""
        self._exchange = exchange

    def batches(self) -> Iterator[tuple]:
        exchange = self._exchange
        if exchange is not None:
            state = None
            for partial in exchange.run_tasks(self._consume_morsel):
                if state is None:
                    state = partial
                else:
                    self._merge_state(state, partial)
            if state is None:  # pragma: no cover - exchange always tasks
                state = ({}, [])
        else:
            state = ({}, [])
            self._consume(state, self._child.batches())
        return self._finish(state)

    def _consume_morsel(self, stream) -> tuple:
        state: tuple = ({}, [])
        self._consume(state, stream)
        return state

    def _merge_state(self, state: tuple, other: tuple) -> None:
        """Absorb a later partition's partial state, preserving order.

        Partitions cover increasing input ranges and are merged in
        partition order, so first-occurrence group order and each
        group's representative row land exactly where serial
        consumption would have put them; accumulator ``merge`` is
        order-independent by construction (exact sums, commutative
        counts, first-wins min/max ties).
        """
        groups, group_order = state
        other_groups, __ = other
        for key in other[1]:
            incoming = other_groups[key]
            mine = groups.get(key)
            if mine is None:
                groups[key] = incoming
                group_order.append(key)
            else:
                for accumulator, partial in zip(mine[1], incoming[1]):
                    accumulator.merge(partial)

    def _consume(self, state: tuple, stream) -> None:
        groups, group_order = state
        node = self._node
        calls = node.agg_calls
        arg_fns = self._arg_fns
        group_fns = self._group_fns
        for cols, n in stream:
            key_cols = [fn(cols, n) for fn in group_fns]
            arg_cols = [
                None if fn is None else fn(cols, n) for fn in arg_fns
            ]
            # dictionary-encoded key columns group on their integer
            # codes (code <-> value is a bijection within the shared
            # dictionary, so group identity and first-occurrence order
            # are unchanged); values decode once per group below
            if len(key_cols) == 1:
                only = key_cols[0]
                keys = only.codes if isinstance(only, EncodedColumn) else only
            elif key_cols:
                keys = list(
                    zip(
                        *[
                            column.codes
                            if isinstance(column, EncodedColumn)
                            else column
                            for column in key_cols
                        ]
                    )
                )
            else:
                keys = None  # no GROUP BY: a single global group

            # bucket this batch's row indices per group (one dict probe
            # and one C-level append per row) ...
            touched: dict = {}
            get = touched.get
            if keys is None:
                if () not in groups:
                    groups[()] = (
                        tuple(column[0] for column in cols) if n else (),
                        [
                            make_accumulator(
                                call.name, call.star, call.distinct
                            )
                            for call in calls
                        ],
                    )
                    group_order.append(())
                touched[()] = list(range(n))
            else:
                for i in range(n):
                    key = keys[i]
                    bucket = get(key)
                    if bucket is None:
                        touched[key] = bucket = []
                        if key not in groups:
                            groups[key] = (
                                tuple(column[i] for column in cols),
                                [
                                    make_accumulator(
                                        call.name, call.star, call.distinct
                                    )
                                    for call in calls
                                ],
                            )
                            group_order.append(key)
                    bucket.append(i)

            # ... then feed each accumulator a whole value slice
            for key, indices in touched.items():
                accumulators = groups[key][1]
                count = len(indices)
                whole = count == n
                for arg_col, accumulator in zip(arg_cols, accumulators):
                    if arg_col is None:
                        accumulator.add_repeat(count)
                    elif whole:
                        accumulator.add_many(arg_col)
                    else:
                        accumulator.add_many([arg_col[i] for i in indices])

    def _finish(self, state: tuple) -> Iterator[tuple]:
        groups, group_order = state
        node = self._node
        calls = node.agg_calls
        # aggregate query over empty input and no GROUP BY -> one empty group
        if not groups and not node.group_by:
            accumulators = [
                make_accumulator(call.name, call.star, call.distinct)
                for call in calls
            ]
            null_row = (None,) * len(self._child.scope)
            groups[()] = (null_row, accumulators)
            group_order.append(())

        extended_rows = [
            groups[key][0]
            + tuple(accumulator.result() for accumulator in groups[key][1])
            for key in group_order
        ]
        n = len(extended_rows)
        if n == 0:
            return
        out_cols = [list(column) for column in zip(*extended_rows)]
        if self._having_fn is not None:
            mask = self._having_fn(out_cols, n)
            selected = [i for i, value in enumerate(mask) if value is True]
            if len(selected) != n:
                out_cols = gather_columns(out_cols, selected)
                n = len(selected)
        if n:
            yield out_cols, n


class BatchProjectOp:
    """Evaluate the select list over batches.

    Yields ``(out_cols, pre_cols, n)`` triples — the projected columns
    plus the pre-projection batch, the columnar analogue of row mode's
    ``(out_row, pre_row)`` pairs.
    """

    def __init__(
        self,
        child: BatchOperator,
        node: LogicalProject,
        agg_slots: "dict | None",
        catalog: "Catalog | None" = None,
        fused: bool = False,
    ) -> None:
        self._child = child
        self.scope = child.scope
        self.agg_slots = agg_slots or {}
        self.columns, targets = _project_targets(node, child.scope)
        self.targets = targets
        self._fns: list = [
            _make_batch_picker(target)
            if isinstance(target, int)
            else compile_expr_batch(target, child.scope, self.agg_slots)
            for target in targets
        ]
        # fused value codegen: every provably-safe compound target is
        # computed by one generated function per batch; bare pickers and
        # unfusible expressions keep their closures.  Fused targets
        # never raise, so lifting them ahead of the remaining closures
        # is unobservable.
        self._fused = None
        if fused and catalog is not None:
            self._fused = fuse_batch_exprs(
                targets,
                child.scope,
                _fusion_class_of(node, catalog),
                mode="value",
            )

    def pres_batches(self) -> Iterator[tuple]:
        return self.process(self._child.batches())

    def process(self, stream) -> Iterator[tuple]:
        """Project one batch stream (the morsel-pipeline entry point)."""
        fns = self._fns
        fused = self._fused
        if fused is None:
            for cols, n in stream:
                yield [fn(cols, n) for fn in fns], cols, n
            return
        fused_fn = fused.fn
        positions = fused.indexes
        fused_batches = 0
        try:
            for cols, n in stream:
                out: list = [None] * len(fns)
                for position, column in zip(positions, fused_fn(cols, n)):
                    out[position] = column
                for i, fn in enumerate(fns):
                    if out[i] is None:
                        out[i] = fn(cols, n)
                fused_batches += 1
                yield out, cols, n
        finally:
            if fused_batches and _METRICS.enabled:
                _FUSED_BATCHES.inc(fused_batches)


class BatchDistinctOp:
    """Deduplicate projected rows across batches, keeping first occurrences."""

    def __init__(self, child) -> None:
        self._child = child
        self.columns = child.columns
        self.scope = child.scope
        self.agg_slots = child.agg_slots

    def pres_batches(self) -> Iterator[tuple]:
        seen: set = set()
        add = seen.add
        for out_cols, pre_cols, n in self._child.pres_batches():
            kept: list = []
            keep = kept.append
            # encoded output columns dedupe on codes (bijective per
            # dictionary, and the per-column stream type is stable
            # across batches), skipping the decode for dropped rows
            key_streams = [
                column.codes if isinstance(column, EncodedColumn) else column
                for column in out_cols
            ]
            for i, row in enumerate(zip(*key_streams)):
                if row in seen:
                    continue
                add(row)
                keep(i)
            if not kept:
                continue
            if len(kept) == n:
                yield out_cols, pre_cols, n
            else:
                yield (
                    gather_columns(out_cols, kept),
                    gather_columns(pre_cols, kept),
                    len(kept),
                )


class BatchSortOp:
    """Stable multi-key sort: materialize, argsort indices, gather."""

    def __init__(self, child, node: LogicalSort) -> None:
        self._child = child
        self.columns = child.columns
        self.scope = child.scope
        self.agg_slots = child.agg_slots
        self._key_specs: list = []
        for position, expr, descending in _sort_targets(node, self.columns):
            if position is not None:
                self._key_specs.append((position, None, descending))
            else:
                fn = compile_expr_batch(expr, self.scope, self.agg_slots)
                self._key_specs.append((None, fn, descending))

    def pres_batches(self) -> Iterator[tuple]:
        out_cols: list = [[] for __ in range(len(self.columns))]
        pre_cols: list = [[] for __ in range(len(self.scope))]
        total = 0
        for batch_out, batch_pre, n in self._child.pres_batches():
            total += n
            for accumulated, column in zip(out_cols, batch_out):
                accumulated.extend(column)
            for accumulated, column in zip(pre_cols, batch_pre):
                accumulated.extend(column)
        if total == 0:
            return
        indices = list(range(total))
        # stable multi-pass argsort, last key first (same as row mode)
        for position, key_fn, descending in reversed(self._key_specs):
            key_column = (
                out_cols[position]
                if position is not None
                else key_fn(pre_cols, total)
            )
            decorated = [sort_key(value) for value in key_column]
            indices.sort(key=decorated.__getitem__, reverse=descending)
        yield (
            gather_columns(out_cols, indices),
            gather_columns(pre_cols, indices),
            total,
        )


class BatchLimitOp:
    def __init__(self, child, limit: int) -> None:
        self._child = child
        self.columns = child.columns
        self.scope = child.scope
        self.agg_slots = child.agg_slots
        self._limit = limit

    def pres_batches(self) -> Iterator[tuple]:
        remaining = self._limit
        if remaining <= 0:
            return
        for out_cols, pre_cols, n in self._child.pres_batches():
            if n >= remaining:
                yield (
                    [column[:remaining] for column in out_cols],
                    [column[:remaining] for column in pre_cols],
                    remaining,
                )
                return
            yield out_cols, pre_cols, n
            remaining -= n


class BatchTopNOp:
    """Fused Sort+Limit over batches: bounded candidate set, one gather.

    Sort keys are still computed vectorized per batch; instead of
    materializing and fully sorting the input, candidate rows are
    pruned back down to the best *limit* whenever they outgrow a small
    multiple of it.  Candidate entries order exactly like BatchSortOp's
    stable multi-key argsort: the composite key tuple (descending keys
    wrapped in :class:`_ReversedKey`) is extended with the global input
    sequence number, so ties keep arrival order and entry comparisons
    never reach the row payloads.
    """

    def __init__(self, child, node: LogicalTopN) -> None:
        self._child = child
        self.columns = child.columns
        self.scope = child.scope
        self.agg_slots = child.agg_slots
        self._limit = node.limit
        self._key_specs: list = []
        for position, expr, descending in _sort_targets(node, self.columns):
            if position is not None:
                self._key_specs.append((position, None, descending))
            else:
                fn = compile_expr_batch(expr, self.scope, self.agg_slots)
                self._key_specs.append((None, fn, descending))
        #: bound-pushdown cell shared with upstream scan/filter ops
        #: (connected by _connect_topn_bound when provably safe)
        self._bound_cell = None

    def publish_bound(self, cell: _TopNBound) -> None:
        self._bound_cell = cell

    def pres_batches(self) -> Iterator[tuple]:
        limit = self._limit
        if limit <= 0:
            return
        cell = self._bound_cell
        if cell is not None:
            cell.value = None  # plans re-execute; reset before pulling
        key_specs = self._key_specs
        prune_at = max(limit * 4, 64)
        single = len(key_specs) == 1
        entries: list = []  # (composite key + (seq,), candidate row index)
        # the current worst kept composite key: once `limit` candidates
        # exist, a row whose key sorts at or after the bound is dropped
        # before its payload is ever materialized (a later row never
        # beats an equal key: the sequence tiebreaker orders it after).
        # Only the leading key is decorated vectorized; ties fall
        # through to the full composite.
        bound = None
        first_bound = None
        seq = 0
        kept_out: list = []  # candidate payloads, indexed by entries[i][1]
        kept_pre: list = []
        for out_cols, pre_cols, n in self._child.pres_batches():
            # every ORDER BY key expression is evaluated over the whole
            # batch, exactly like BatchSortOp and the row engine, so
            # data-dependent errors (division by zero, type errors in a
            # sort expression) surface identically in all plans; only
            # the sort_key decoration of secondary keys and the payload
            # tuples are deferred until a row survives the bound —
            # neither of those can raise
            raw_columns = [
                out_cols[position] if position is not None
                else key_fn(pre_cols, n)
                for position, key_fn, __ in key_specs
            ]
            first_descending = key_specs[0][2]
            if first_descending:
                first_column = [
                    _ReversedKey(sort_key(value)) for value in raw_columns[0]
                ]
            else:
                first_column = [sort_key(value) for value in raw_columns[0]]

            def composite(i: int) -> tuple:
                parts = [first_column[i]]
                for spec, column in zip(key_specs[1:], raw_columns[1:]):
                    decorated = sort_key(column[i])
                    parts.append(
                        _ReversedKey(decorated) if spec[2] else decorated
                    )
                return tuple(parts)

            for i in range(n):
                if bound is not None:
                    first_key = first_column[i]
                    if first_bound < first_key:
                        seq += 1  # leading key already past the bound
                        continue
                    if not first_key < first_bound:  # tie on the lead key
                        if single or not composite(i) < bound:
                            seq += 1
                            continue
                key = composite(i)
                entries.append((key + (seq,), len(kept_out)))
                kept_out.append(tuple(column[i] for column in out_cols))
                kept_pre.append(tuple(column[i] for column in pre_cols))
                seq += 1
                if len(entries) >= prune_at or (
                    bound is None and len(entries) >= limit
                ):
                    entries = heapq.nsmallest(limit, entries)
                    kept_out = [kept_out[entry[1]] for entry in entries]
                    kept_pre = [kept_pre[entry[1]] for entry in entries]
                    entries = [
                        (entry[0], index)
                        for index, entry in enumerate(entries)
                    ]
                    if len(entries) == limit:
                        bound = entries[-1][0][:-1]
                        first_bound = bound[0]
                        if cell is not None:
                            cell.value = first_bound
        if not entries:
            return
        entries = heapq.nsmallest(limit, entries)
        total = len(entries)
        out_cols = [
            list(column)
            for column in zip(*[kept_out[entry[1]] for entry in entries])
        ]
        pre_cols = [
            list(column)
            for column in zip(*[kept_pre[entry[1]] for entry in entries])
        ]
        yield out_cols, pre_cols, total


def _make_batch_picker(index: int):
    return lambda cols, n: cols[index]


# ---------------------------------------------------------------------------
# building
# ---------------------------------------------------------------------------


class PreparedPlan:
    """A compiled, re-executable plan (what the plan cache stores)."""

    def __init__(
        self,
        root,
        logical: LogicalNode,
        columns: list,
        mode: str = "row",
        parallel_nodes: "dict | None" = None,
    ) -> None:
        self._root = root
        self.logical = logical
        self.columns = columns
        self.mode = mode
        #: ``id(logical scan node) -> worker count`` for every scan that
        #: executes under a morsel exchange (EXPLAIN's ``[parallel n=K]``)
        self.parallel_nodes = parallel_nodes or {}

    def execute(self) -> ResultSet:
        if self.mode == "batch":
            rows: list = []
            extend = rows.extend
            for out_cols, __, n in self._root.pres_batches():
                if out_cols:
                    extend(zip(*out_cols))
                else:  # pragma: no cover - select lists are never empty
                    extend(() for __ in range(n))
            return ResultSet(columns=list(self.columns), rows=rows)
        return ResultSet(
            columns=list(self.columns),
            rows=[out_row for out_row, __ in self._root.pairs()],
        )


def _no_instrument(operator, node):
    """The default ``instrument`` hook: leave the operator bare."""
    return operator


class _BuildContext:
    """Batch-builder state: knobs, instrumentation, parallel bookkeeping."""

    __slots__ = (
        "catalog",
        "instrument",
        "instrumented",
        "fused",
        "workers",
        "dispatcher",
        "parallel_nodes",
    )

    def __init__(
        self, catalog: Catalog, instrument, fused: bool, workers: int
    ) -> None:
        self.catalog = catalog
        self.instrumented = instrument is not None
        self.instrument = instrument or _no_instrument
        self.fused = fused
        # EXPLAIN ANALYZE wraps every operator in timing shims, which
        # both breaks chain detection and wants serial per-operator
        # numbers — instrumented plans always run serial and unpushed
        self.workers = 1 if self.instrumented else max(1, workers)
        self.dispatcher = (
            MorselDispatcher(self.workers) if self.workers > 1 else None
        )
        self.parallel_nodes: dict = {}


def build_physical(
    root: LogicalNode,
    catalog: Catalog,
    mode: str = "row",
    instrument=None,
    fused: bool = True,
    parallel_workers: int = 1,
) -> PreparedPlan:
    """Compile a logical plan into a :class:`PreparedPlan` for *mode*.

    *instrument* (optional) is called as ``instrument(operator, node)``
    on every physical operator right after construction, with the
    logical node it was built from, and its return value takes the
    operator's place in the tree — EXPLAIN ANALYZE passes an
    :class:`~repro.sqlengine.planner.analyze.Instrumenter` here to wrap
    each operator in a counting/timing shim.  Instrumented plans must
    not be cached, and always execute serial/unfused-pushdown so the
    per-operator numbers describe the plain pipeline.

    *fused* (batch mode) compiles provably-safe filter/project
    expressions into generated per-batch functions; *parallel_workers*
    > 1 (batch mode) runs scan-rooted pipelines morsel-parallel.  Both
    layers are locked to byte-identical results and errors, so they are
    pure speed knobs.
    """
    if mode not in EXECUTION_MODES:
        raise SqlExecutionError(
            f"unknown execution mode {mode!r} (choose from "
            f"{', '.join(EXECUTION_MODES)})"
        )
    if mode == "batch":
        ctx = _BuildContext(catalog, instrument, fused, parallel_workers)
        operator = _build_presentation_batch(root, ctx)
        return PreparedPlan(
            root=operator,
            logical=root,
            columns=list(operator.columns),
            mode=mode,
            parallel_nodes=ctx.parallel_nodes,
        )
    operator = _build_presentation(root, catalog, instrument or _no_instrument)
    return PreparedPlan(
        root=operator, logical=root, columns=list(operator.columns), mode=mode
    )


def _build_presentation(node: LogicalNode, catalog: Catalog, instrument):
    """Build the pair-yielding presentation tree (project and above)."""
    if isinstance(node, LogicalLimit):
        child = _build_presentation(node.child, catalog, instrument)
        return instrument(LimitOp(child, node.limit), node)
    if isinstance(node, LogicalTopN):
        child = _build_presentation(node.child, catalog, instrument)
        return instrument(TopNOp(child, node), node)
    if isinstance(node, LogicalSort):
        child = _build_presentation(node.child, catalog, instrument)
        return instrument(SortOp(child, node), node)
    if isinstance(node, LogicalDistinct):
        child = _build_presentation(node.child, catalog, instrument)
        return instrument(DistinctOp(child), node)
    if isinstance(node, LogicalProject):
        child, agg_slots = _build_relational(node.child, catalog, instrument)
        return instrument(ProjectOp(child, node, agg_slots), node)
    raise SqlExecutionError(
        f"malformed plan: unexpected presentation node {type(node).__name__}"
    )


def _build_relational(node: LogicalNode, catalog: Catalog, instrument):
    """Build a row-yielding operator; returns ``(operator, agg_slots)``."""
    if isinstance(node, LogicalScan):
        return instrument(ScanOp(catalog, node), node), None
    if isinstance(node, LogicalFilter):
        child, agg_slots = _build_relational(node.child, catalog, instrument)
        return instrument(FilterOp(child, node.predicates), node), agg_slots
    if isinstance(node, LogicalJoin):
        left, __ = _build_relational(node.left, catalog, instrument)
        right, __ = _build_relational(node.right, catalog, instrument)
        return instrument(HashJoinOp(left, right, node.equi), node), None
    if isinstance(node, LogicalLeftJoin):
        left, __ = _build_relational(node.left, catalog, instrument)
        right, __ = _build_relational(node.right, catalog, instrument)
        return instrument(LeftJoinOp(left, right, node.condition), node), None
    if isinstance(node, LogicalAggregate):
        child, __ = _build_relational(node.child, catalog, instrument)
        operator = AggregateOp(child, node)
        return instrument(operator, node), operator.agg_slots
    raise SqlExecutionError(
        f"malformed plan: unexpected relational node {type(node).__name__}"
    )


def _chain_parts(operator) -> "tuple | None":
    """``(scan, stages)`` when *operator* is a morsel-splittable chain.

    A chain is a bare :class:`BatchScanOp` leaf under zero or more
    :class:`BatchFilterOp` stages — the shapes whose batch streams can
    be partitioned by scan row range with byte-identical output.
    """
    stages: list = []
    current = operator
    while isinstance(current, BatchFilterOp):
        stages.append(current)
        current = current._child
    if isinstance(current, BatchScanOp):
        stages.reverse()
        return current, stages
    return None


def _make_exchange(operator, ctx: _BuildContext) -> "ParallelChainOp | None":
    """A morsel exchange over *operator*, or None if not parallelizable."""
    if ctx.dispatcher is None:
        return None
    parts = _chain_parts(operator)
    if parts is None:
        return None
    scan, stages = parts
    ctx.parallel_nodes[id(scan.node)] = ctx.workers
    return ParallelChainOp(ctx.dispatcher, scan, stages)


def _maybe_exchange(operator, ctx: _BuildContext):
    """*operator* behind a morsel exchange when possible, else itself."""
    exchange = _make_exchange(operator, ctx)
    return operator if exchange is None else exchange


def _parallel_agg_eligible(node: LogicalAggregate) -> bool:
    """Can this aggregate merge per-partition partial states?

    DISTINCT sum/avg accumulators keep a seen-set whose merge is not
    implemented (the exact-sum state already folded the values), so
    those plans keep serial consumption; everything else merges
    deterministically.
    """
    return all(
        not (call.distinct and call.name in ("sum", "avg"))
        for call in node.agg_calls
    )


def _connect_topn_bound(
    operator: BatchTopNOp, child, node: LogicalTopN, ctx: _BuildContext
) -> None:
    """Wire TopN's worst-kept-key bound into the upstream scan/filters.

    Only when provably unobservable: the chain below must be
    project → filter* → scan over one table, the leading sort key a
    bare column of that chain's scope, and every expression a
    pre-dropped row would have skipped (filter predicates, project
    targets, secondary sort keys) provably error-free, so dropping rows
    the TopN bound check would discard anyway cannot change results or
    errors.
    """
    project = child
    if isinstance(project, ParallelProjectOp):
        project = project._project
    if not isinstance(project, BatchProjectOp):
        return
    parts = _chain_parts(project._child)
    if parts is None:
        return
    scan, filters = parts
    pre_scope = project.scope
    pair_class = _fusion_class_of(node, ctx.catalog)

    def ref_class(ref):
        index = pre_scope.try_resolve(ref)
        if index is None:
            return None
        return pair_class(*pre_scope.pairs[index])

    specs = _sort_targets(node, project.columns)
    position, expr, descending = specs[0]
    if position is not None:
        target = project.targets[position]
        if isinstance(target, int):
            key_index = target
        elif isinstance(target, ColumnRef):
            key_index = pre_scope.try_resolve(target)
        else:
            return
    elif isinstance(expr, ColumnRef):
        key_index = pre_scope.try_resolve(expr)
    else:
        return
    if key_index is None:
        return
    for __, secondary, __d in specs[1:]:
        if secondary is not None and not _value_class(secondary, ref_class)[0]:
            return
    for target in project.targets:
        if not isinstance(target, int) and not _value_class(
            target, ref_class
        )[0]:
            return
    for stage in filters:
        for predicate in stage._predicates:
            if not _value_class(predicate, ref_class)[0]:
                return
    cell = _TopNBound()
    operator.publish_bound(cell)
    scan.connect_bound(cell, key_index, descending)
    for stage in filters:
        stage.connect_bound(cell, key_index, descending)


def _build_presentation_batch(node: LogicalNode, ctx: _BuildContext):
    """Build the batch presentation tree (project and above)."""
    instrument = ctx.instrument
    if isinstance(node, LogicalLimit):
        child = _build_presentation_batch(node.child, ctx)
        return instrument(BatchLimitOp(child, node.limit), node)
    if isinstance(node, LogicalTopN):
        child = _build_presentation_batch(node.child, ctx)
        operator = BatchTopNOp(child, node)
        if not ctx.instrumented:
            _connect_topn_bound(operator, child, node, ctx)
        return instrument(operator, node)
    if isinstance(node, LogicalSort):
        child = _build_presentation_batch(node.child, ctx)
        return instrument(BatchSortOp(child, node), node)
    if isinstance(node, LogicalDistinct):
        child = _build_presentation_batch(node.child, ctx)
        return instrument(BatchDistinctOp(child), node)
    if isinstance(node, LogicalProject):
        child, agg_slots = _build_relational_batch(node.child, ctx)
        operator = BatchProjectOp(
            child, node, agg_slots, catalog=ctx.catalog, fused=ctx.fused
        )
        exchange = _make_exchange(child, ctx)
        if exchange is not None:
            operator = ParallelProjectOp(exchange, operator)
        return instrument(operator, node)
    raise SqlExecutionError(
        f"malformed plan: unexpected presentation node {type(node).__name__}"
    )


def _build_relational_batch(node: LogicalNode, ctx: _BuildContext):
    """Build a batch-yielding operator; returns ``(operator, agg_slots)``."""
    catalog = ctx.catalog
    instrument = ctx.instrument
    if isinstance(node, LogicalScan):
        return instrument(BatchScanOp(catalog, node, fused=ctx.fused), node), None
    if isinstance(node, LogicalFilter):
        child, agg_slots = _build_relational_batch(node.child, ctx)
        operator = BatchFilterOp(
            child, node.predicates, node=node, catalog=catalog, fused=ctx.fused
        )
        return instrument(operator, node), agg_slots
    if isinstance(node, LogicalJoin):
        left, __ = _build_relational_batch(node.left, ctx)
        right, __ = _build_relational_batch(node.right, ctx)
        left = _maybe_exchange(left, ctx)
        if node.equi:
            # partitioned build: each morsel of the build side hashes
            # inside its worker; the join merges partitions in order
            operator = BatchHashJoinOp(left, right, node.equi)
            build_exchange = _make_exchange(right, ctx)
            if build_exchange is not None:
                operator.set_parallel_build(build_exchange)
        else:
            operator = BatchHashJoinOp(
                left, _maybe_exchange(right, ctx), node.equi
            )
        return instrument(operator, node), None
    if isinstance(node, LogicalLeftJoin):
        left, __ = _build_relational_batch(node.left, ctx)
        right, __ = _build_relational_batch(node.right, ctx)
        left = _maybe_exchange(left, ctx)
        right = _maybe_exchange(right, ctx)
        operator = BatchLeftJoinOp(left, right, node.condition)
        if HASH_LEFT_JOIN_ENABLED:
            analysis = _analyze_left_join(
                node, left.scope, right.scope, catalog
            )
            if analysis is not None:
                key_pairs, residual = analysis
                operator.enable_hash(
                    key_pairs,
                    [
                        compile_expr_batch(conjunct, operator.scope)
                        for conjunct in residual
                    ],
                )
        return instrument(operator, node), None
    if isinstance(node, LogicalAggregate):
        child, __ = _build_relational_batch(node.child, ctx)
        operator = BatchAggregateOp(child, node)
        exchange = _make_exchange(child, ctx)
        if exchange is not None:
            if _parallel_agg_eligible(node):
                operator.set_parallel(exchange)
            else:
                # DISTINCT sum/avg: parallelize the scan, consume serial
                operator._child = exchange
        return instrument(operator, node), operator.agg_slots
    raise SqlExecutionError(
        f"malformed plan: unexpected relational node {type(node).__name__}"
    )
