"""Undo-log transactions over the table mutation choke-point.

Every write in the engine funnels through three ``Table`` methods
(``insert``, ``update_positions``, ``delete_positions``).  While a
transaction is open those methods report their logical inverse to the
attached :class:`UndoLog` *before* mutating, and rollback replays the
inverses in reverse order through the same public mutation paths — so
catalog observers (the inverted-index maintainer) see a
content-symmetric stream of events and converge back to the pre-
transaction state without any index-specific undo code.

:class:`TransactionManager` layers the protocol on top: explicit
``BEGIN``/``COMMIT``/``ROLLBACK`` spanning the whole catalog, and
implicit per-statement transactions that make a single multi-row
statement atomic (a failure mid-INSERT leaves no partial rows behind).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.errors import TransactionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sqlengine.catalog import Catalog, Table


class UndoLog:
    """Logical inverses of the mutations applied under one transaction.

    Records are applied strictly in reverse, so each recorded position
    is valid again by the time its inverse runs (the standard undo-log
    invariant).  Per-table ``mutation_count`` is captured at first
    touch and restored after the inverses, so a rolled-back catalog
    fingerprint is byte-identical to one that never saw the
    transaction.  Table ``version`` is deliberately *not* restored:
    the inverse mutations bump it monotonically, which keeps
    version-keyed caches (plans, statistics) from ever validating
    against mid-transaction state.
    """

    def __init__(self) -> None:
        self._records: list[tuple] = []  # (table, kind, payload)
        #: id(table) -> (table, mutation_count at first touch)
        self._touched: dict[int, tuple] = {}

    def __len__(self) -> int:
        return len(self._records)

    def _touch(self, table: "Table") -> None:
        key = id(table)
        if key not in self._touched:
            self._touched[key] = (table, table.mutation_count)

    # ------------------------------------------------------------------
    # recording (called from Table just before each write)
    # ------------------------------------------------------------------
    def record_insert(self, table: "Table", position: int) -> None:
        """One row is about to be appended at *position*."""
        self._touch(table)
        self._records.append((table, "insert", position))

    def record_update(
        self, table: "Table", positions: list, old_rows: list
    ) -> None:
        """The rows at *positions* (currently *old_rows*) will be rewritten."""
        self._touch(table)
        self._records.append((table, "update", (positions, old_rows)))

    def record_delete(
        self, table: "Table", positions: list, removed: list
    ) -> None:
        """The rows at ascending *positions* (*removed*) will be deleted."""
        self._touch(table)
        self._records.append((table, "delete", (positions, removed)))

    # ------------------------------------------------------------------
    @staticmethod
    def _apply_inverse(table: "Table", kind: str, payload) -> None:
        if kind == "insert":
            table.delete_positions([payload])
        elif kind == "update":
            positions, old_rows = payload
            table.update_positions(positions, old_rows)
        else:
            positions, removed = payload
            table.restore_rows(positions, removed)

    def rollback(self) -> None:
        """Apply all inverses in reverse order, then restore counters."""
        for table, _ in self._touched.values():
            table._undo = None  # inverses must not record themselves
        for table, kind, payload in reversed(self._records):
            self._apply_inverse(table, kind, payload)
        for table, mutation_count in self._touched.values():
            table._mutation_count = mutation_count
        self._records.clear()
        self._touched.clear()

    # ------------------------------------------------------------------
    def savepoint(self, tables: Iterable["Table"]) -> tuple:
        """A statement-level savepoint over *tables* (see rollback_to)."""
        return (
            len(self._records),
            [(table, table.mutation_count) for table in tables],
        )

    def rollback_to(self, savepoint: tuple) -> None:
        """Undo everything recorded after *savepoint*, keeping the rest.

        Used for statement atomicity inside an explicit transaction: a
        statement that fails mid-way is undone without disturbing the
        transaction's earlier writes.  The savepoint's captured
        ``mutation_count`` values are restored so a later COMMIT has
        the same fingerprint as if the failed statement never ran.
        """
        index, counters = savepoint
        tail = self._records[index:]
        del self._records[index:]
        involved = {id(table): table for table, _, _ in tail}
        for table in involved.values():
            table._undo = None
        try:
            for table, kind, payload in reversed(tail):
                self._apply_inverse(table, kind, payload)
        finally:
            for table in involved.values():
                table._undo = self
        for table, mutation_count in counters:
            table._mutation_count = mutation_count


class TransactionManager:
    """BEGIN/COMMIT/ROLLBACK protocol plus implicit statement atomicity.

    One instance per :class:`~repro.sqlengine.database.Database`.  An
    explicit transaction attaches a single :class:`UndoLog` to every
    table in the catalog (DDL inside a transaction is rejected, so the
    table set is stable) and marks the catalog fingerprint with a
    unique token so no derived-state cache can validate against
    uncommitted data.  Outside an explicit transaction,
    :meth:`statement` wraps each DML statement in a micro-transaction
    over just its target tables, rolling back on any error.
    """

    def __init__(self, catalog: "Catalog") -> None:
        self._catalog = catalog
        self._undo: UndoLog | None = None
        self._attached: list = []
        #: WAL ops ({"sql": ...} / {"table": ..., "rows": ...}) applied
        #: inside the open explicit transaction, in order; drained by
        #: COMMIT into one atomic WAL record
        self._pending_ops: list[dict] = []
        self._token_seq = 0

    @property
    def active(self) -> bool:
        """True while an explicit transaction is open."""
        return self._undo is not None

    # ------------------------------------------------------------------
    def begin(self) -> None:
        if self._undo is not None:
            raise TransactionError("BEGIN: a transaction is already open")
        self._undo = UndoLog()
        self._pending_ops = []
        self._attached = list(self._catalog.tables())
        for table in self._attached:
            table._undo = self._undo
        self._token_seq += 1
        self._catalog._txn_token = self._token_seq

    def note_op(self, op: dict) -> None:
        """Buffer one applied operation for the commit's WAL record."""
        if self._undo is not None:
            self._pending_ops.append(op)

    def pending_ops(self) -> list:
        """The operations a COMMIT would log (transaction must be open)."""
        if self._undo is None:
            raise TransactionError("COMMIT: no transaction is open")
        return list(self._pending_ops)

    def commit(self) -> None:
        """Discard the undo log and close the transaction (apply stays)."""
        if self._undo is None:
            raise TransactionError("COMMIT: no transaction is open")
        self._detach()

    def rollback(self) -> None:
        if self._undo is None:
            raise TransactionError("ROLLBACK: no transaction is open")
        undo = self._undo
        self._detach()
        undo.rollback()

    def _detach(self) -> None:
        for table in self._attached:
            table._undo = None
        self._attached = []
        self._undo = None
        self._pending_ops = []
        self._catalog._txn_token = None

    # ------------------------------------------------------------------
    @contextmanager
    def statement(self, tables: Iterable["Table"]) -> Iterator[None]:
        """Make one statement atomic over *tables*.

        Outside a transaction a fresh undo log is attached to the
        statement's target tables and rolled back if the statement
        raises — a multi-row INSERT that fails on row three leaves no
        trace of rows one and two.  Inside an explicit transaction the
        open undo log takes a savepoint instead, so the failed
        statement is undone while the transaction's earlier writes
        survive.
        """
        if self._undo is not None:
            savepoint = self._undo.savepoint(tables)
            try:
                yield
            except BaseException:
                self._undo.rollback_to(savepoint)
                raise
            return
        undo = UndoLog()
        attached = list(tables)
        for table in attached:
            table._undo = undo
        try:
            yield
        except BaseException:
            for table in attached:
                table._undo = None
            undo.rollback()
            raise
        else:
            for table in attached:
                table._undo = None
