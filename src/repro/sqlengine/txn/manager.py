"""The durability manager: WAL appends, checkpoints, crash recovery.

One instance per durable :class:`~repro.sqlengine.database.Database`,
owning a data directory with at most two live files::

    checkpoint.json.gz   columnar image, stamped with generation G
    wal.<G>.log          committed records since that image

The *generation* scheme is what makes checkpointing crash-safe without
a separate manifest: a checkpoint is written (atomically) already
naming the **next** generation, whose WAL starts empty, so wherever a
crash lands in the checkpoint → new-WAL → delete-old-WAL sequence,
recovery reads one unambiguous pair and can never replay a record that
the checkpoint already contains (the classic duplicate-replay bug).
Stale generations found on disk are deleted, never read.

Write ordering is *apply-then-log*: a statement mutates memory first
(under an undo guard), then its record is appended and fsynced.  If
the append or fsync fails, the guard rolls the memory back before the
error propagates — so live state never runs ahead of what a
post-crash recovery would rebuild, and a WAL write error degrades to a
failed statement instead of a poisoned database.
"""

from __future__ import annotations

import os
import time
from typing import TYPE_CHECKING

from repro.errors import RecoveryError
from repro.obs.metrics import registry
from repro.sqlengine.txn.checkpoint import (
    load_checkpoint,
    restore_catalog,
    save_checkpoint,
)
from repro.sqlengine.txn.wal import (
    FileLogStorage,
    dump_payload,
    encode_record,
    load_payload,
    scan_records,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sqlengine.database import Database

CHECKPOINT_FILENAME = "checkpoint.json.gz"


class DurabilityManager:
    """WAL + checkpoint lifecycle for one data directory."""

    def __init__(
        self,
        data_dir: str,
        wal_sync: bool = True,
        storage_factory=None,
    ) -> None:
        self.data_dir = str(data_dir)
        os.makedirs(self.data_dir, exist_ok=True)
        #: fsync on every commit (off trades the durability point for
        #: speed; the record stream itself is unchanged)
        self.wal_sync = wal_sync
        #: path -> LogStorage; the seam tests use to inject crashes
        self._storage_factory = storage_factory or FileLogStorage
        self.generation = 0
        self._wal = None
        #: True while recovery replays records (suppresses re-logging)
        self.replaying = False
        reg = registry()
        self._metrics_registry = reg
        self._records_metric = reg.counter("wal.records")
        self._bytes_metric = reg.counter("wal.bytes")
        self._fsyncs_metric = reg.counter("wal.fsyncs")
        self._fsync_seconds = reg.histogram("wal.fsync.seconds")
        self._replayed_metric = reg.counter("recovery.replayed_records")
        self._checkpoints_metric = reg.counter("checkpoint.saves")

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    @property
    def checkpoint_path(self) -> str:
        return os.path.join(self.data_dir, CHECKPOINT_FILENAME)

    def wal_path(self, generation: int) -> str:
        return os.path.join(self.data_dir, f"wal.{generation}.log")

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover(self, database: "Database") -> dict:
        """Rebuild *database* from disk; returns a recovery summary.

        Loads the checkpoint (if any), replays the matching WAL tail,
        truncates a torn final record, deletes stale generations, and
        leaves the WAL open for appends.  Raises
        :class:`~repro.errors.RecoveryError` — never half-applies — on
        anything inconsistent.
        """
        restored = False
        if os.path.exists(self.checkpoint_path):
            state = load_checkpoint(self.checkpoint_path)
            try:
                self.generation = int(state["generation"])
            except (KeyError, TypeError, ValueError):
                raise RecoveryError(
                    f"checkpoint {self.checkpoint_path} lacks a generation",
                    path=self.checkpoint_path,
                    kind="checkpoint",
                ) from None
            restore_catalog(
                database.catalog, state, path=self.checkpoint_path
            )
            restored = True
        else:
            self.generation = 0
        replayed = self._replay_wal(database)
        self._remove_stale_files()
        self._open_wal()
        return {
            "checkpoint": restored,
            "replayed": replayed,
            "generation": self.generation,
        }

    def _replay_wal(self, database: "Database") -> int:
        path = self.wal_path(self.generation)
        if not os.path.exists(path):
            return 0
        with open(path, "rb") as handle:
            data = handle.read()
        payloads, valid_length, corruption = scan_records(data)
        if corruption:
            raise RecoveryError(
                f"corrupt WAL {path}: {corruption}", path=path, kind="wal"
            )
        if valid_length < len(data):
            # a torn final record: the crash interrupted an append that
            # was never acknowledged — drop it and move on
            os.truncate(path, valid_length)
        self.replaying = True
        try:
            for payload in payloads:
                try:
                    record = load_payload(payload)
                except ValueError as exc:
                    raise RecoveryError(
                        f"undecodable WAL record in {path}: {exc}",
                        path=path,
                        kind="wal",
                    ) from exc
                self._apply_record(database, record, path)
        finally:
            self.replaying = False
        if self._metrics_registry.enabled and payloads:
            self._replayed_metric.inc(len(payloads))
        return len(payloads)

    def _apply_record(
        self, database: "Database", record, path: str
    ) -> None:
        try:
            kind = record.get("t") if isinstance(record, dict) else None
            if kind == "sql":
                database.execute(record["sql"])
            elif kind == "txn":
                for op in record["ops"]:
                    self._apply_op(database, op)
            elif kind == "rows":
                self._apply_op(database, record)
            elif kind == "create":
                self._apply_create(database, record)
            else:
                raise RecoveryError(
                    f"unknown WAL record type {kind!r} in {path}",
                    path=path,
                    kind="wal",
                )
        except RecoveryError:
            raise
        except Exception as exc:
            raise RecoveryError(
                f"WAL replay failed in {path}: {exc}", path=path, kind="replay"
            ) from exc

    @staticmethod
    def _apply_op(database: "Database", op: dict) -> None:
        if "sql" in op:
            database.execute(op["sql"])
        else:
            database.catalog.table(op["table"]).insert_many(op["rows"])

    @staticmethod
    def _apply_create(database: "Database", record: dict) -> None:
        from repro.sqlengine.catalog import Column, ForeignKey
        from repro.sqlengine.types import SqlType

        columns = [
            Column(name, SqlType(type_name), bool(primary_key))
            for name, type_name, primary_key in record["columns"]
        ]
        foreign_keys = [
            ForeignKey(tuple(cols), ref_table, tuple(ref_cols))
            for cols, ref_table, ref_cols in record["foreign_keys"]
        ]
        database.catalog.create_table(record["name"], columns, foreign_keys)

    def _remove_stale_files(self) -> None:
        for name in os.listdir(self.data_dir):
            full = os.path.join(self.data_dir, name)
            if name.startswith("wal.") and name.endswith(".log"):
                generation_text = name[4:-4]
                if (
                    generation_text.isdigit()
                    and int(generation_text) != self.generation
                ):
                    os.remove(full)
            elif name == CHECKPOINT_FILENAME + ".tmp":
                os.remove(full)

    def _open_wal(self) -> None:
        self._wal = self._storage_factory(self.wal_path(self.generation))

    # ------------------------------------------------------------------
    # logging (called after the in-memory apply succeeded)
    # ------------------------------------------------------------------
    def log_statement(self, sql: str) -> None:
        """One auto-committed statement."""
        self._append({"t": "sql", "sql": sql})

    def log_transaction(self, ops: list) -> None:
        """All operations of one committed explicit transaction."""
        if ops:  # an empty transaction has nothing to redo
            self._append({"t": "txn", "ops": list(ops)})

    def log_rows(self, table_name: str, rows: list) -> None:
        """One programmatic bulk insert (``Database.insert_rows``)."""
        self._append({"t": "rows", "table": table_name, "rows": rows})

    def log_create(self, table) -> None:
        """One programmatic ``Database.create_table`` call."""
        self._append(
            {
                "t": "create",
                "name": table.name,
                "columns": [
                    [c.name, c.sql_type.value, c.primary_key]
                    for c in table.columns
                ],
                "foreign_keys": [
                    [list(fk.columns), fk.ref_table, list(fk.ref_columns)]
                    for fk in table.foreign_keys
                ],
            }
        )

    def _append(self, record: dict) -> None:
        data = encode_record(dump_payload(record))
        self._wal.append(data)
        if self.wal_sync:
            started = time.perf_counter()
            self._wal.sync()
            if self._metrics_registry.enabled:
                self._fsyncs_metric.inc()
                self._fsync_seconds.observe(time.perf_counter() - started)
        if self._metrics_registry.enabled:
            self._records_metric.inc()
            self._bytes_metric.inc(len(data))

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self, catalog) -> dict:
        """Write a columnar image and start a fresh WAL generation."""
        new_generation = self.generation + 1
        size = save_checkpoint(self.checkpoint_path, catalog, new_generation)
        old_wal = self._wal
        old_generation = self.generation
        self.generation = new_generation
        self._open_wal()
        if old_wal is not None:
            old_wal.close()
        try:
            os.remove(self.wal_path(old_generation))
        except FileNotFoundError:
            pass
        if self._metrics_registry.enabled:
            self._checkpoints_metric.inc()
        return {"generation": new_generation, "checkpoint_bytes": size}

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()
            self._wal = None
