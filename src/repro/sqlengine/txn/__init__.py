"""Transactions and durability for the SQL engine.

Three layers, bottom-up:

- :mod:`repro.sqlengine.txn.undo` — in-memory undo log recorded at the
  single ``Table`` mutation choke-point, giving BEGIN/COMMIT/ROLLBACK
  and statement-level atomicity.
- :mod:`repro.sqlengine.txn.wal` — append-only, CRC-checksummed
  write-ahead log behind a :class:`~repro.sqlengine.txn.wal.LogStorage`
  interface, with :mod:`~repro.sqlengine.txn.faults` for crash
  injection at every byte boundary.
- :mod:`repro.sqlengine.txn.manager` — the durability manager tying
  WAL, columnar checkpoints (:mod:`~repro.sqlengine.txn.checkpoint`)
  and crash recovery together for :class:`~repro.sqlengine.database.Database`.
"""

from repro.sqlengine.txn.faults import FaultInjector, InjectedCrash
from repro.sqlengine.txn.manager import DurabilityManager
from repro.sqlengine.txn.undo import TransactionManager, UndoLog
from repro.sqlengine.txn.wal import FileLogStorage, LogStorage

__all__ = [
    "DurabilityManager",
    "FaultInjector",
    "FileLogStorage",
    "InjectedCrash",
    "LogStorage",
    "TransactionManager",
    "UndoLog",
]
