"""Persistent columnar segment checkpoints.

A checkpoint is one gzip-compressed JSON document holding the whole
catalog: schemas, per-table counters, and per-column data in its
*native* storage form — dictionary columns keep their value table and
code list, typed-array columns keep their typecode — so loading is a
bulk columnar fill instead of a row-at-a-time re-ingest (the cold-start
win ``benchmarks/bench_durability.py`` measures).

The file is written atomically (temp file, fsync, ``os.replace``) and
stamped with the WAL *generation* it pairs with; recovery replays only
the WAL file of the matching generation, which is what makes the
checkpoint-then-truncate sequence crash-safe at every intermediate
point (see :mod:`repro.sqlengine.txn.manager`).
"""

from __future__ import annotations

import gzip
import os
from typing import TYPE_CHECKING

from repro.errors import RecoveryError
from repro.sqlengine.catalog import Column, ForeignKey
from repro.sqlengine.encoding import ArrayColumn, ColumnDictionary
from repro.sqlengine.types import SqlType
from repro.sqlengine.txn.wal import dump_payload, load_payload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sqlengine.catalog import Catalog, Table

CHECKPOINT_VERSION = 1


# ---------------------------------------------------------------------------
# save
# ---------------------------------------------------------------------------


def _column_state(table: "Table", index: int) -> dict:
    dictionary = table.column_dictionary(index)
    if dictionary is not None:
        return {
            "t": "dict",
            # dead slots stay None so surviving codes keep their meaning
            "values": list(dictionary.values),
            "codes": list(table.column_codes(index)),
        }
    store = table.column_data(index)
    if isinstance(store, ArrayColumn) and not store.demoted:
        return {"t": "array", "typecode": store.typecode, "values": store[:]}
    return {"t": "plain", "values": list(store)}


def catalog_state(catalog: "Catalog", generation: int) -> dict:
    """The JSON-ready image of *catalog* for WAL generation *generation*."""
    tables = []
    for table in catalog._tables.values():  # creation order, not sorted
        tables.append(
            {
                "name": table.name,
                "columns": [
                    [c.name, c.sql_type.value, c.primary_key]
                    for c in table.columns
                ],
                "foreign_keys": [
                    [list(fk.columns), fk.ref_table, list(fk.ref_columns)]
                    for fk in table.foreign_keys
                ],
                "version": table.version,
                "mutation_count": table.mutation_count,
                "row_count": len(table.rows),
                "data": [
                    _column_state(table, index)
                    for index in range(len(table.columns))
                ],
            }
        )
    return {
        "checkpoint_version": CHECKPOINT_VERSION,
        "generation": generation,
        "ddl_version": catalog.ddl_version,
        "tables": tables,
    }


def save_checkpoint(path: str, catalog: "Catalog", generation: int) -> int:
    """Atomically write the checkpoint file; returns its byte size."""
    payload = gzip.compress(
        dump_payload(catalog_state(catalog, generation)), mtime=0
    )
    tmp_path = path + ".tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    _fsync_directory(os.path.dirname(path) or ".")
    return len(payload)


def _fsync_directory(directory: str) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# ---------------------------------------------------------------------------
# load
# ---------------------------------------------------------------------------


def load_checkpoint(path: str) -> dict:
    """Read and validate a checkpoint file (shape only, not content)."""
    try:
        with gzip.open(path, "rb") as handle:
            state = load_payload(handle.read())
    except FileNotFoundError:
        raise RecoveryError(
            f"checkpoint missing: {path}", path=path, kind="checkpoint"
        ) from None
    except (OSError, EOFError, ValueError) as exc:
        raise RecoveryError(
            f"unreadable checkpoint {path}: {exc}", path=path, kind="checkpoint"
        ) from exc
    if not isinstance(state, dict) or "tables" not in state:
        raise RecoveryError(
            f"malformed checkpoint {path}: not a catalog image",
            path=path,
            kind="checkpoint",
        )
    if state.get("checkpoint_version") != CHECKPOINT_VERSION:
        raise RecoveryError(
            f"checkpoint {path} has unsupported version "
            f"{state.get('checkpoint_version')!r}",
            path=path,
            kind="checkpoint",
        )
    return state


def _decoded_values(column_state: dict) -> list:
    """The plain Python value list of one stored column."""
    if column_state["t"] == "dict":
        values = column_state["values"]
        return [
            None if code is None else values[code]
            for code in column_state["codes"]
        ]
    return list(column_state["values"])


def _restore_dictionary(
    table: "Table", index: int, column_state: dict
) -> None:
    """Rebuild one column's dictionary + codes from their stored form."""
    dictionary = ColumnDictionary()
    values = list(column_state["values"])
    codes = list(column_state["codes"])
    dictionary.values = values
    dictionary.refcounts = [0] * len(values)
    for code in codes:
        if code is not None:
            dictionary.refcounts[code] += 1
    dictionary.free_codes = [
        code for code, value in enumerate(values) if value is None
    ]
    dictionary.code_of = {
        value: code for code, value in enumerate(values) if value is not None
    }
    table._dictionaries[index] = dictionary
    table._codes[index] = codes


def restore_catalog(catalog: "Catalog", state: dict, path: str = "") -> None:
    """Recreate the saved tables inside an empty *catalog*.

    Storage is bulk-filled in columnar form, bypassing the per-value
    insert path entirely; rows are rebuilt by zipping the columns.
    Encoding mismatches between the file and the catalog's settings
    degrade gracefully: a stored dictionary loads as plain values when
    encoding is disabled, a stored plain TEXT column disables its new
    dictionary, and array/plain numeric storage converts either way
    through the normal slice-assignment path.
    """
    try:
        for table_state in state["tables"]:
            columns = [
                Column(name, SqlType(type_name), bool(primary_key))
                for name, type_name, primary_key in table_state["columns"]
            ]
            foreign_keys = [
                ForeignKey(tuple(cols), ref_table, tuple(ref_cols))
                for cols, ref_table, ref_cols in table_state["foreign_keys"]
            ]
            table = catalog.create_table(
                table_state["name"], columns, foreign_keys
            )
            column_values = []
            for index, column_state in enumerate(table_state["data"]):
                values = _decoded_values(column_state)
                if len(values) != table_state["row_count"]:
                    raise RecoveryError(
                        f"checkpoint {path}: column "
                        f"{columns[index].name!r} of "
                        f"{table.name!r} has {len(values)} values for "
                        f"{table_state['row_count']} rows",
                        path=path,
                        kind="checkpoint",
                    )
                column_values.append(values)
                if column_state["t"] == "dict":
                    if table.column_dictionary(index) is not None:
                        _restore_dictionary(table, index, column_state)
                    # else: encoding now disabled — plain values suffice
                elif table.column_dictionary(index) is not None:
                    # stored unencoded (cardinality had outgrown the
                    # threshold); don't resurrect a dictionary the
                    # writer already dropped
                    table._disable_dictionary(index)
                table.column_data(index)[:] = values
            table.rows[:] = list(zip(*column_values)) if column_values else []
            table._check_dictionary_thresholds()
            table._version = table_state["version"]
            table._mutation_count = table_state["mutation_count"]
        catalog._ddl_version = state["ddl_version"]
    except RecoveryError:
        raise
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise RecoveryError(
            f"malformed checkpoint {path}: {exc!r}", path=path, kind="checkpoint"
        ) from exc
