"""Write-ahead log: record codec, storage interface, value serde.

Framing: each record is ``>II`` (payload length, CRC32 of payload)
followed by the payload bytes.  Payloads are UTF-8 JSON objects; the
``t`` key tags the record type (``"sql"`` for one auto-committed
statement, ``"txn"`` for the statement list of one committed explicit
transaction, ``"rows"`` for a programmatic bulk insert).

:func:`scan_records` distinguishes the two failure shapes recovery
cares about: a *torn tail* (the file ends mid-record, or the final
record fails its checksum — the classic power-cut-during-append) is
reported as a safe truncation point, while a checksum failure with
committed records *after* it means the log body itself is damaged and
replaying past it would resurrect an inconsistent prefix — that is
surfaced as corruption for the caller to raise loudly.
"""

from __future__ import annotations

import datetime
import json
import os
import struct
import zlib

_HEADER = struct.Struct(">II")  # (payload length, CRC32 of payload)


# ---------------------------------------------------------------------------
# value serde (shared with checkpoints)
# ---------------------------------------------------------------------------


def _json_default(value):
    if isinstance(value, datetime.date):
        return {"@d": value.isoformat()}
    raise TypeError(f"not WAL-serializable: {value!r}")  # pragma: no cover


def _json_object_hook(obj: dict):
    if len(obj) == 1 and "@d" in obj:
        return datetime.date.fromisoformat(obj["@d"])
    return obj


def dump_payload(obj) -> bytes:
    """Serialize one record payload (dates survive the round-trip)."""
    return json.dumps(
        obj, default=_json_default, separators=(",", ":")
    ).encode("utf-8")


def load_payload(payload: bytes):
    """Inverse of :func:`dump_payload`."""
    return json.loads(payload.decode("utf-8"), object_hook=_json_object_hook)


# ---------------------------------------------------------------------------
# record framing
# ---------------------------------------------------------------------------


def encode_record(payload: bytes) -> bytes:
    """Frame one payload as ``length + crc32 + payload``."""
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def scan_records(data: bytes) -> "tuple[list[bytes], int, str | None]":
    """Walk a log image, returning ``(payloads, valid_length, corruption)``.

    *payloads* are the intact record payloads in order and
    *valid_length* the byte offset they span — the safe truncation
    point.  *corruption* is ``None`` unless a record fails its
    checksum while intact records follow it (mid-log damage); a torn
    tail is silently excluded from *valid_length* instead.
    """
    payloads: list[bytes] = []
    offset = 0
    total = len(data)
    while offset < total:
        if offset + _HEADER.size > total:
            break  # torn header at the tail
        length, crc = _HEADER.unpack_from(data, offset)
        end = offset + _HEADER.size + length
        if end > total:
            break  # torn payload at the tail
        payload = bytes(data[offset + _HEADER.size : end])
        if zlib.crc32(payload) != crc:
            if end < total:
                return (
                    payloads,
                    offset,
                    f"checksum mismatch at offset {offset} "
                    f"with {total - end} bytes after it",
                )
            break  # bad final record: a torn write, not corruption
        payloads.append(payload)
        offset = end
    return payloads, offset, None


# ---------------------------------------------------------------------------
# storage
# ---------------------------------------------------------------------------


class LogStorage:
    """Byte-level log storage; the seam fault injection wraps.

    ``append`` buffers bytes at the end of the log, ``sync`` makes
    everything appended so far durable (the commit point), ``read``
    returns the full current image, ``truncate`` discards a torn tail.
    """

    def append(self, payload: bytes) -> None:
        raise NotImplementedError

    def sync(self) -> None:
        raise NotImplementedError

    def read(self) -> bytes:
        raise NotImplementedError

    def size(self) -> int:
        raise NotImplementedError

    def truncate(self, size: int) -> None:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class FileLogStorage(LogStorage):
    """Append-only file storage; ``sync`` is ``flush`` + ``fsync``."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._file = open(self.path, "ab")

    def append(self, payload: bytes) -> None:
        self._file.write(payload)

    def sync(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())

    def read(self) -> bytes:
        self._file.flush()
        with open(self.path, "rb") as handle:
            return handle.read()

    def size(self) -> int:
        self._file.flush()
        return os.path.getsize(self.path)

    def truncate(self, size: int) -> None:
        self._file.flush()
        os.truncate(self.path, size)

    def close(self) -> None:
        self._file.close()


class MemoryLogStorage(LogStorage):
    """In-memory storage for tests (no filesystem, trivially inspectable)."""

    def __init__(self, image: bytes = b"") -> None:
        self._buffer = bytearray(image)
        self.synced_length = len(image)

    def append(self, payload: bytes) -> None:
        self._buffer.extend(payload)

    def sync(self) -> None:
        self.synced_length = len(self._buffer)

    def read(self) -> bytes:
        return bytes(self._buffer)

    def size(self) -> int:
        return len(self._buffer)

    def truncate(self, size: int) -> None:
        del self._buffer[size:]
        self.synced_length = min(self.synced_length, size)

    def close(self) -> None:
        pass
