"""Crash-point injection for the durability write path.

:class:`FaultInjector` wraps any :class:`~repro.sqlengine.txn.wal.LogStorage`
and kills the process-under-test (by raising :class:`InjectedCrash`)
after a configurable number of bytes has reached the underlying
storage — mid-record, on a record boundary, or during fsync.  Tests
sweep the budget across every byte offset of a workload's WAL traffic
to prove that recovery from *any* torn prefix reproduces the last
committed state exactly.
"""

from __future__ import annotations

from repro.sqlengine.txn.wal import LogStorage


class InjectedCrash(Exception):
    """Raised by :class:`FaultInjector` at the configured kill point.

    Deliberately *not* part of the :class:`~repro.errors.ReproError`
    hierarchy: a crash is not an error the engine may catch and handle
    — it must propagate like a power cut.
    """


class FaultInjector(LogStorage):
    """A LogStorage proxy that crashes after ``byte_budget`` bytes.

    A write that would exceed the remaining budget persists only the
    prefix that fits, then raises — modelling a torn write.  With
    ``fail_sync=True`` the crash fires on the next ``sync`` instead,
    modelling a kernel that buffered everything but died before the
    flush hit the platter.  A budget of ``None`` never crashes.
    """

    def __init__(
        self,
        inner: LogStorage,
        byte_budget: "int | None" = None,
        fail_sync: bool = False,
    ) -> None:
        self.inner = inner
        self.byte_budget = byte_budget
        self.fail_sync = fail_sync
        #: total bytes accepted (telemetry for sweep tests)
        self.bytes_written = 0

    def append(self, payload: bytes) -> None:
        if self.byte_budget is None:
            self.inner.append(payload)
            self.bytes_written += len(payload)
            return
        remaining = self.byte_budget - self.bytes_written
        if len(payload) > remaining:
            if remaining > 0:
                self.inner.append(payload[:remaining])
                self.bytes_written += remaining
            self.inner.sync()  # the torn prefix is what recovery will see
            raise InjectedCrash(
                f"injected crash after {self.bytes_written} bytes"
            )
        self.inner.append(payload)
        self.bytes_written += len(payload)

    def sync(self) -> None:
        if self.fail_sync:
            raise InjectedCrash("injected crash during fsync")
        self.inner.sync()

    def read(self) -> bytes:
        return self.inner.read()

    def size(self) -> int:
        return self.inner.size()

    def truncate(self, size: int) -> None:
        self.inner.truncate(size)

    def close(self) -> None:
        self.inner.close()
