"""Dictionary encoding for low-cardinality TEXT columns.

The classic columnar-engine trick (C-Store compressed column ops,
MonetDB/X100 vectorized execution over encoded vectors): a TEXT column
whose distinct-value count stays small is stored as a *dictionary*
(code → string) plus one small integer code per row.  The vectorized
engine then works on codes wherever string semantics allow it —
equality/IN predicates compare integers, LIKE evaluates its regex once
per dictionary entry instead of once per row, GROUP BY / DISTINCT /
hash-join probes key on codes — and decodes only the rows that survive
("late materialization").

Two classes cooperate:

* :class:`ColumnDictionary` — the per-column value table, refcounted so
  UPDATE/DELETE garbage-collect codes whose last row disappeared (dead
  codes are recycled through a free list, keeping the code space
  bounded by the *live* cardinality);
* :class:`EncodedColumn` — a batch of codes bound to its dictionary.
  It quacks like the plain value list the generic operators expect
  (len / indexing / slicing / iteration all decode transparently), so
  every code-unaware path keeps working unchanged, while code-aware
  fast paths detect it with one ``isinstance`` check and read
  ``.codes`` / ``.dictionary`` directly.

NULL is represented as a ``None`` entry in the code list (it never
enters the dictionary), preserving three-valued logic for free.
"""

from __future__ import annotations

from typing import Iterator, Sequence

#: encode a TEXT column while its live distinct-value count stays at or
#: below this; beyond it the column's dictionary is dropped (the knob —
#: pass ``dict_encoding_threshold`` to ``Database``/``Catalog`` to
#: override per instance, 0 disables encoding entirely)
DICT_ENCODING_MAX_DISTINCT = 256


class ColumnDictionary:
    """Refcounted code ↔ value table of one encoded TEXT column.

    ``values[code]`` is the string for *code* (``None`` marks a dead,
    recyclable slot), ``code_of`` is the inverse map over live codes
    only, and ``refcounts[code]`` counts the rows currently using the
    code.  :attr:`version` bumps whenever the code → value mapping
    changes (a new value is interned or a dead code is collected), so
    per-dictionary memos (e.g. the LIKE match table) can validate
    cheaply.
    """

    __slots__ = ("values", "code_of", "refcounts", "free_codes", "version")

    def __init__(self) -> None:
        self.values: list = []
        self.code_of: dict = {}
        self.refcounts: list = []
        self.free_codes: list = []
        self.version = 0

    @property
    def live_count(self) -> int:
        """Distinct values currently referenced by at least one row."""
        return len(self.code_of)

    def encode(self, value: str) -> int:
        """Intern *value* (refcount +1) and return its code."""
        code = self.code_of.get(value)
        if code is not None:
            self.refcounts[code] += 1
            return code
        if self.free_codes:
            code = self.free_codes.pop()
            self.values[code] = value
            self.refcounts[code] = 1
        else:
            code = len(self.values)
            self.values.append(value)
            self.refcounts.append(1)
        self.code_of[value] = code
        self.version += 1
        return code

    def release(self, code: int) -> None:
        """Drop one reference to *code*; collect the slot at zero."""
        count = self.refcounts[code] - 1
        self.refcounts[code] = count
        if count == 0:
            del self.code_of[self.values[code]]
            self.values[code] = None
            self.free_codes.append(code)
            self.version += 1


class EncodedColumn:
    """A batch of dictionary codes that decodes transparently.

    Generic operators treat it as the sequence of decoded values;
    code-aware fast paths read :attr:`codes` (``None`` = NULL) and
    :attr:`dictionary` directly.  Like plain batch columns, callers
    must not mutate it.
    """

    __slots__ = ("dictionary", "codes")

    def __init__(self, dictionary: ColumnDictionary, codes: list) -> None:
        self.dictionary = dictionary
        self.codes = codes

    def __len__(self) -> int:
        return len(self.codes)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return EncodedColumn(self.dictionary, self.codes[index])
        code = self.codes[index]
        return None if code is None else self.dictionary.values[code]

    def __iter__(self) -> Iterator:
        values = self.dictionary.values
        return (None if code is None else values[code] for code in self.codes)

    def count(self, value) -> int:
        """Occurrences of *value* (NULL counts count ``None`` codes)."""
        if value is None:
            return self.codes.count(None)
        code = self.dictionary.code_of.get(value)
        return 0 if code is None else self.codes.count(code)

    def gather(self, indices: Sequence[int]) -> "EncodedColumn":
        """The selected rows, still encoded (codes gathered, not values)."""
        codes = self.codes
        return EncodedColumn(self.dictionary, [codes[i] for i in indices])

    def decode(self) -> list:
        """The plain value list (NULLs as ``None``)."""
        values = self.dictionary.values
        return [None if code is None else values[code] for code in self.codes]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<EncodedColumn n={len(self.codes)} "
            f"dict={self.dictionary.live_count} values>"
        )


def gather_column(column, indices: Sequence[int]) -> "list | EncodedColumn":
    """Gather one batch column, preserving dictionary encoding."""
    if isinstance(column, EncodedColumn):
        return column.gather(indices)
    return [column[i] for i in indices]
