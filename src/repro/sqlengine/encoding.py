"""Dictionary encoding for low-cardinality TEXT columns.

The classic columnar-engine trick (C-Store compressed column ops,
MonetDB/X100 vectorized execution over encoded vectors): a TEXT column
whose distinct-value count stays small is stored as a *dictionary*
(code → string) plus one small integer code per row.  The vectorized
engine then works on codes wherever string semantics allow it —
equality/IN predicates compare integers, LIKE evaluates its regex once
per dictionary entry instead of once per row, GROUP BY / DISTINCT /
hash-join probes key on codes — and decodes only the rows that survive
("late materialization").

Two classes cooperate:

* :class:`ColumnDictionary` — the per-column value table, refcounted so
  UPDATE/DELETE garbage-collect codes whose last row disappeared (dead
  codes are recycled through a free list, keeping the code space
  bounded by the *live* cardinality);
* :class:`EncodedColumn` — a batch of codes bound to its dictionary.
  It quacks like the plain value list the generic operators expect
  (len / indexing / slicing / iteration all decode transparently), so
  every code-unaware path keeps working unchanged, while code-aware
  fast paths detect it with one ``isinstance`` check and read
  ``.codes`` / ``.dictionary`` directly.

NULL is represented as a ``None`` entry in the code list (it never
enters the dictionary), preserving three-valued logic for free.

This module also hosts :class:`ArrayColumn`, the opt-in typed buffer
backing INTEGER/REAL column storage (``Database(array_store=True)``):
values live in a contiguous ``array.array`` with a validity bitmap for
NULLs, while every read decodes back to plain Python objects so the
rest of the engine never notices.
"""

from __future__ import annotations

from array import array
from typing import Iterator, Sequence

#: encode a TEXT column while its live distinct-value count stays at or
#: below this; beyond it the column's dictionary is dropped (the knob —
#: pass ``dict_encoding_threshold`` to ``Database``/``Catalog`` to
#: override per instance, 0 disables encoding entirely)
DICT_ENCODING_MAX_DISTINCT = 256


class ColumnDictionary:
    """Refcounted code ↔ value table of one encoded TEXT column.

    ``values[code]`` is the string for *code* (``None`` marks a dead,
    recyclable slot), ``code_of`` is the inverse map over live codes
    only, and ``refcounts[code]`` counts the rows currently using the
    code.  :attr:`version` bumps whenever the code → value mapping
    changes (a new value is interned or a dead code is collected), so
    per-dictionary memos (e.g. the LIKE match table) can validate
    cheaply.
    """

    __slots__ = ("values", "code_of", "refcounts", "free_codes", "version")

    def __init__(self) -> None:
        self.values: list = []
        self.code_of: dict = {}
        self.refcounts: list = []
        self.free_codes: list = []
        self.version = 0

    @property
    def live_count(self) -> int:
        """Distinct values currently referenced by at least one row."""
        return len(self.code_of)

    def encode(self, value: str) -> int:
        """Intern *value* (refcount +1) and return its code."""
        code = self.code_of.get(value)
        if code is not None:
            self.refcounts[code] += 1
            return code
        if self.free_codes:
            code = self.free_codes.pop()
            self.values[code] = value
            self.refcounts[code] = 1
        else:
            code = len(self.values)
            self.values.append(value)
            self.refcounts.append(1)
        self.code_of[value] = code
        self.version += 1
        return code

    def release(self, code: int) -> None:
        """Drop one reference to *code*; collect the slot at zero."""
        count = self.refcounts[code] - 1
        self.refcounts[code] = count
        if count == 0:
            del self.code_of[self.values[code]]
            self.values[code] = None
            self.free_codes.append(code)
            self.version += 1


class EncodedColumn:
    """A batch of dictionary codes that decodes transparently.

    Generic operators treat it as the sequence of decoded values;
    code-aware fast paths read :attr:`codes` (``None`` = NULL) and
    :attr:`dictionary` directly.  Like plain batch columns, callers
    must not mutate it.
    """

    __slots__ = ("dictionary", "codes")

    def __init__(self, dictionary: ColumnDictionary, codes: list) -> None:
        self.dictionary = dictionary
        self.codes = codes

    def __len__(self) -> int:
        return len(self.codes)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return EncodedColumn(self.dictionary, self.codes[index])
        code = self.codes[index]
        return None if code is None else self.dictionary.values[code]

    def __iter__(self) -> Iterator:
        values = self.dictionary.values
        return (None if code is None else values[code] for code in self.codes)

    def count(self, value) -> int:
        """Occurrences of *value* (NULL counts count ``None`` codes)."""
        if value is None:
            return self.codes.count(None)
        code = self.dictionary.code_of.get(value)
        return 0 if code is None else self.codes.count(code)

    def gather(self, indices: Sequence[int]) -> "EncodedColumn":
        """The selected rows, still encoded (codes gathered, not values)."""
        codes = self.codes
        return EncodedColumn(self.dictionary, [codes[i] for i in indices])

    def decode(self) -> list:
        """The plain value list (NULLs as ``None``)."""
        values = self.dictionary.values
        return [None if code is None else values[code] for code in self.codes]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<EncodedColumn n={len(self.codes)} "
            f"dict={self.dictionary.live_count} values>"
        )


def gather_column(column, indices: Sequence[int]) -> "list | EncodedColumn":
    """Gather one batch column, preserving dictionary encoding."""
    if isinstance(column, EncodedColumn):
        return column.gather(indices)
    return [column[i] for i in indices]


#: int64 bounds of the ``'q'`` array typecode; INTEGER values outside
#: this range demote an :class:`ArrayColumn` to plain-list storage
_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


class ArrayColumn:
    """Typed buffer storage for one INTEGER or REAL column.

    Values live in a contiguous ``array.array`` — ``'q'`` (int64) for
    INTEGER, ``'d'`` (float64) for REAL — next to a byte-per-row
    validity bitmap (1 = present, 0 = NULL; NULL rows hold a zero
    placeholder in the buffer).  The point is footprint: 8 bytes per
    value instead of a pointer to a boxed Python object, with NULLs
    costing one extra byte.

    The class quacks like the plain value list ``Table._column_data``
    otherwise holds, supporting exactly the operations the engine
    performs: ``len``/iteration/int indexing, **slicing that returns an
    ordinary list** (so batch operators downstream see plain values),
    ``append`` (insert), in-place item assignment (update) and
    whole-buffer slice assignment (delete compaction).  Object identity
    is stable across all mutations — including *demotion*: an INTEGER
    value outside the signed 64-bit range silently converts the
    internal storage to a plain Python list in place, so live
    references held by prepared plans keep seeing correct data.

    Because :func:`~repro.sqlengine.types.coerce_value` guarantees
    INTEGER columns hold only ``int`` and REAL columns only ``float``,
    round-tripping through the array preserves each value's exact
    Python type.
    """

    __slots__ = ("typecode", "_data", "_valid")

    def __init__(self, typecode: str) -> None:
        if typecode not in ("q", "d"):
            raise ValueError(f"unsupported ArrayColumn typecode: {typecode!r}")
        self.typecode = typecode
        self._data = array(typecode)
        #: byte-per-row validity bitmap, or None once demoted to a list
        self._valid: "bytearray | None" = bytearray()

    # -- read side -----------------------------------------------------
    def __len__(self) -> int:
        return len(self._data)

    def __getitem__(self, index):
        data = self._data
        valid = self._valid
        if valid is None:  # demoted: plain list semantics throughout
            return data[index]
        if isinstance(index, slice):
            values = data[index].tolist()
            flags = valid[index]
            if 0 in flags:
                for i, flag in enumerate(flags):
                    if not flag:
                        values[i] = None
            return values
        return data[index] if valid[index] else None

    def __iter__(self) -> Iterator:
        if self._valid is None:
            return iter(self._data)
        return iter(self[:])

    def count(self, value) -> int:
        if self._valid is None:
            return self._data.count(value)
        if value is None:
            return self._valid.count(0)
        matches = self._data.count(value)
        if matches and 0 in self._valid:
            # don't let NULL placeholders masquerade as real zeros
            matches = sum(
                1
                for entry, flag in zip(self._data, self._valid)
                if flag and entry == value
            )
        return matches

    # -- write side (the single Table mutation path) -------------------
    def append(self, value) -> None:
        if self._valid is None:
            self._data.append(value)
            return
        if value is None:
            self._data.append(0)
            self._valid.append(0)
        else:
            try:
                self._data.append(value)
            except OverflowError:
                self._demote()
                self._data.append(value)
                return
            self._valid.append(1)

    def __setitem__(self, index, value) -> None:
        if self._valid is None:
            if isinstance(index, slice):
                self._data[index] = list(value)
            else:
                self._data[index] = value
            return
        if isinstance(index, slice):
            values = list(value)
            try:
                segment = array(
                    self.typecode, [0 if v is None else v for v in values]
                )
            except OverflowError:
                self._demote()
                self._data[index] = values
                return
            self._data[index] = segment
            self._valid[index] = bytes(
                0 if v is None else 1 for v in values
            )
            return
        if value is None:
            self._data[index] = 0
            self._valid[index] = 0
        else:
            try:
                self._data[index] = value
            except OverflowError:
                self._demote()
                self._data[index] = value
                return
            self._valid[index] = 1

    def _demote(self) -> None:
        """Switch to plain-list storage in place (int64 overflow)."""
        values = self._data.tolist()
        valid = self._valid
        if valid is not None and 0 in valid:
            for i, flag in enumerate(valid):
                if not flag:
                    values[i] = None
        self._data = values
        self._valid = None

    @property
    def demoted(self) -> bool:
        """True once an out-of-range value forced plain-list storage."""
        return self._valid is None

    @classmethod
    def for_sql_type(cls, type_name: str) -> "ArrayColumn":
        """The buffer for a column of SQL type *type_name* (the enum value)."""
        return cls("q" if type_name == "INTEGER" else "d")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "list" if self._valid is None else self.typecode
        return f"<ArrayColumn {kind} n={len(self._data)}>"
