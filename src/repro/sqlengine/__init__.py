"""From-scratch in-memory relational engine (the paper's DB backend)."""

from repro.sqlengine.ast_nodes import (
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    Join,
    Like,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    TableRef,
)
from repro.sqlengine.catalog import Catalog, Column, ForeignKey, Table
from repro.sqlengine.database import Database
from repro.sqlengine.executor import ResultSet, execute_select
from repro.sqlengine.parser import parse_select, parse_sql
from repro.sqlengine.planner import PlanCache, QueryPlanner
from repro.sqlengine.types import SqlType

__all__ = [
    "BinaryOp",
    "Catalog",
    "Column",
    "ColumnRef",
    "Database",
    "Expr",
    "ForeignKey",
    "FuncCall",
    "Join",
    "Like",
    "Literal",
    "OrderItem",
    "PlanCache",
    "QueryPlanner",
    "ResultSet",
    "Select",
    "SelectItem",
    "SqlType",
    "Table",
    "TableRef",
    "execute_select",
    "parse_select",
    "parse_sql",
]
