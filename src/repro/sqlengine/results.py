"""The :class:`ResultSet` produced by executing a SELECT.

Lives in its own module so both the thin executor facade and the
planner's physical operators can import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import SqlExecutionError


@dataclass
class ResultSet:
    """The rows produced by a SELECT.

    DML statements return an empty result whose ``rowcount`` records how
    many rows the statement touched (None for queries and DDL).
    """

    columns: list[str]
    rows: list[tuple]
    rowcount: "int | None" = None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def as_dicts(self) -> list[dict]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column(self, name: str) -> list[Any]:
        try:
            index = self.columns.index(name)
        except ValueError:
            raise SqlExecutionError(
                f"no column {name!r} in result (have {self.columns})"
            ) from None
        return [row[index] for row in self.rows]
