"""Aggregate function accumulators."""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.errors import SqlExecutionError, SqlTypeError


def _fold(partials: list, x: float) -> None:
    """Shewchuk insertion: fold one finite float into *partials*.

    Keeps the list's exact (infinitely precise) sum unchanged while
    keeping its entries non-overlapping, so the list stays a handful of
    elements long no matter how many addends pass through it.
    """
    i = 0
    for y in partials:
        if abs(x) < abs(y):
            x, y = y, x
        hi = x + y
        lo = y - (hi - x)
        if lo:
            partials[i] = lo
            i += 1
        x = hi
    partials[i:] = [x]


def _compact(values: list) -> list:
    partials: list = []
    for x in values:
        _fold(partials, x)
    return partials


class _ExactSum:
    """Order-independent exact accumulation of int/float addends.

    Integers accumulate exactly in arbitrary precision; finite floats
    are buffered and periodically folded into Shewchuk partials, so the
    final float is the correctly rounded exact sum no matter how the
    inputs were grouped.  Merging per-worker partial sums therefore
    reproduces the serial result bit for bit — the property the
    parallel engine's partial-aggregate merge relies on.  Non-finite
    addends become flags with the same outcome as sequential IEEE
    addition (any NaN, or both infinities, is NaN; otherwise the
    surviving infinity wins), which is likewise order-independent.
    """

    __slots__ = (
        "int_total",
        "saw_int",
        "saw_float",
        "neg_zero_only",
        "nan",
        "pos_inf",
        "neg_inf",
        "buffer",
    )

    _COMPACT_AT = 512

    def __init__(self) -> None:
        self.int_total = 0
        self.saw_int = False
        self.saw_float = False
        #: True while every addend so far was a float -0.0 — the one
        #: case where sequential IEEE addition yields -0.0
        self.neg_zero_only = True
        self.nan = False
        self.pos_inf = False
        self.neg_inf = False
        self.buffer: list = []

    def add_int(self, value: int) -> None:
        self.int_total += value
        self.saw_int = True
        self.neg_zero_only = False

    def add_float(self, value: float) -> None:
        self.saw_float = True
        if value != value:
            self.nan = True
            self.neg_zero_only = False
        elif value == math.inf:
            self.pos_inf = True
            self.neg_zero_only = False
        elif value == -math.inf:
            self.neg_inf = True
            self.neg_zero_only = False
        else:
            if self.neg_zero_only and (
                value != 0.0 or math.copysign(1.0, value) > 0.0
            ):
                self.neg_zero_only = False
            buffer = self.buffer
            buffer.append(value)
            if len(buffer) >= self._COMPACT_AT:
                self.buffer = _compact(buffer)

    def add_floats(self, values: list) -> None:
        if not all(map(math.isfinite, values)):
            for value in values:
                self.add_float(value)
            return
        self.saw_float = True
        if self.neg_zero_only:
            for value in values:
                if value != 0.0 or math.copysign(1.0, value) > 0.0:
                    self.neg_zero_only = False
                    break
        buffer = self.buffer
        buffer.extend(values)
        if len(buffer) >= self._COMPACT_AT:
            self.buffer = _compact(buffer)

    def merge(self, other: "_ExactSum") -> None:
        self.int_total += other.int_total
        self.saw_int |= other.saw_int
        self.saw_float |= other.saw_float
        self.neg_zero_only &= other.neg_zero_only
        self.nan |= other.nan
        self.pos_inf |= other.pos_inf
        self.neg_inf |= other.neg_inf
        buffer = self.buffer
        buffer.extend(other.buffer)
        if len(buffer) >= self._COMPACT_AT:
            self.buffer = _compact(buffer)

    def special(self) -> "float | None":
        if self.nan or (self.pos_inf and self.neg_inf):
            return math.nan
        if self.pos_inf:
            return math.inf
        if self.neg_inf:
            return -math.inf
        return None

    def float_total(self) -> float:
        """The correctly rounded float of the exact finite sum."""
        total = math.fsum(self.buffer)
        if self.int_total:
            total = self.int_total + total
        return total


class Accumulator:
    """Base class for aggregate accumulators (one instance per group).

    ``add`` is the row-at-a-time interface; the vectorized engine feeds
    whole value slices through ``add_many`` / ``add_repeat``, which
    subclasses override with bulk implementations that produce results
    identical to the equivalent sequence of ``add`` calls (same
    accumulation order, same type errors).  ``merge`` absorbs another
    accumulator of the same type — the parallel engine's workers each
    accumulate a partition, then merge in partition order.
    """

    def add(self, value: Any) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def add_many(self, values) -> None:
        add = self.add
        for value in values:
            add(value)

    def add_repeat(self, count: int) -> None:
        """``count`` successive ``add(1)`` calls (the ``count(*)`` shape)."""
        add = self.add
        for __ in range(count):
            add(1)

    def merge(self, other: "Accumulator") -> None:  # pragma: no cover
        raise NotImplementedError

    def result(self) -> Any:  # pragma: no cover - interface
        raise NotImplementedError


class CountAccumulator(Accumulator):
    """``count(expr)`` — counts non-NULL values; ``count(*)`` counts rows."""

    def __init__(self, count_nulls: bool = False, distinct: bool = False) -> None:
        self._count = 0
        self._count_nulls = count_nulls
        self._distinct = distinct
        self._seen: set = set()

    def add(self, value: Any) -> None:
        if value is None and not self._count_nulls:
            return
        if self._distinct:
            if value in self._seen:
                return
            self._seen.add(value)
        self._count += 1

    def add_many(self, values) -> None:
        if self._distinct:
            super().add_many(values)
            return
        if self._count_nulls:
            self._count += len(values)
        else:
            self._count += len(values) - values.count(None)

    def add_repeat(self, count: int) -> None:
        if self._distinct:
            super().add_repeat(count)
            return
        self._count += count

    def merge(self, other: "CountAccumulator") -> None:
        if self._distinct:
            self._seen |= other._seen
            self._count = len(self._seen)
        else:
            self._count += other._count

    def result(self) -> int:
        return self._count


class SumAccumulator(Accumulator):
    """``sum(expr)`` — NULL over empty/all-NULL input.

    Accumulation is exact (:class:`_ExactSum`), rounded once at
    ``result()``: the value is a function of the *set* of addends, not
    of how they were batched, so row mode, batch mode and merged
    parallel partials all agree bit for bit.
    """

    def __init__(self, distinct: bool = False) -> None:
        self._sum = _ExactSum()
        self._any = False
        self._distinct = distinct
        self._seen: set = set()

    def add(self, value: Any) -> None:
        if value is None:
            return
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise SqlTypeError(f"sum() expects numbers, got {value!r}")
        if self._distinct:
            if value in self._seen:
                return
            self._seen.add(value)
        self._any = True
        if isinstance(value, int):
            self._sum.add_int(value)
        else:
            self._sum.add_float(value)

    def add_many(self, values) -> None:
        if self._distinct:
            super().add_many(values)
            return
        ints = 0
        floats: list = []
        append = floats.append
        count = 0
        for value in values:
            if value is None:
                continue
            if type(value) is int:
                ints += value
            elif type(value) is float:
                append(value)
            elif not isinstance(value, (int, float)) or isinstance(value, bool):
                raise SqlTypeError(f"sum() expects numbers, got {value!r}")
            elif isinstance(value, int):
                ints += value
            else:
                append(value)
            count += 1
        if not count:
            return
        self._any = True
        if len(floats) != count:
            total = self._sum
            total.int_total += ints
            total.saw_int = True
            total.neg_zero_only = False
        if floats:
            self._sum.add_floats(floats)

    def merge(self, other: "SumAccumulator") -> None:
        if self._distinct or other._distinct:
            raise SqlExecutionError("cannot merge DISTINCT accumulators")
        self._any |= other._any
        self._sum.merge(other._sum)

    def result(self) -> "int | float | None":
        if not self._any:
            return None
        total = self._sum
        special = total.special()
        if special is not None:
            return special
        if not total.saw_float:
            return total.int_total
        value = total.float_total()
        if value == 0.0:
            return -0.0 if total.neg_zero_only else 0.0
        return value


class AvgAccumulator(Accumulator):
    def __init__(self, distinct: bool = False) -> None:
        self._sum = _ExactSum()
        self._count = 0
        self._distinct = distinct
        self._seen: set = set()

    def add(self, value: Any) -> None:
        if value is None:
            return
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise SqlTypeError(f"avg() expects numbers, got {value!r}")
        if self._distinct:
            if value in self._seen:
                return
            self._seen.add(value)
        if isinstance(value, int):
            self._sum.add_int(value)
        else:
            self._sum.add_float(value)
        self._count += 1

    def add_many(self, values) -> None:
        if self._distinct:
            super().add_many(values)
            return
        ints = 0
        floats: list = []
        append = floats.append
        count = 0
        for value in values:
            if value is None:
                continue
            if type(value) is int:
                ints += value
            elif type(value) is float:
                append(value)
            elif not isinstance(value, (int, float)) or isinstance(value, bool):
                raise SqlTypeError(f"avg() expects numbers, got {value!r}")
            elif isinstance(value, int):
                ints += value
            else:
                append(value)
            count += 1
        if not count:
            return
        if len(floats) != count:
            total = self._sum
            total.int_total += ints
            total.saw_int = True
            total.neg_zero_only = False
        if floats:
            self._sum.add_floats(floats)
        self._count += count

    def merge(self, other: "AvgAccumulator") -> None:
        if self._distinct or other._distinct:
            raise SqlExecutionError("cannot merge DISTINCT accumulators")
        self._sum.merge(other._sum)
        self._count += other._count

    def result(self) -> "float | None":
        if self._count == 0:
            return None
        special = self._sum.special()
        if special is not None:
            return special / self._count
        total = self._sum.float_total()
        if total == 0.0:
            # an all-zero (or exactly cancelling) sum divides as +0.0,
            # matching sequential accumulation from a 0.0 seed
            total = 0.0
        return total / self._count


class MinAccumulator(Accumulator):
    def __init__(self, distinct: bool = False) -> None:
        self._best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._best is None or value < self._best:
            self._best = value

    def add_many(self, values) -> None:
        present = [value for value in values if value is not None]
        if not present:
            return
        candidate = min(present)
        if self._best is None or candidate < self._best:
            self._best = candidate

    def merge(self, other: "MinAccumulator") -> None:
        if other._best is None:
            return
        if self._best is None or other._best < self._best:
            self._best = other._best

    def result(self) -> Any:
        return self._best


class MaxAccumulator(Accumulator):
    def __init__(self, distinct: bool = False) -> None:
        self._best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._best is None or value > self._best:
            self._best = value

    def add_many(self, values) -> None:
        present = [value for value in values if value is not None]
        if not present:
            return
        candidate = max(present)
        if self._best is None or candidate > self._best:
            self._best = candidate

    def merge(self, other: "MaxAccumulator") -> None:
        if other._best is None:
            return
        if self._best is None or other._best > self._best:
            self._best = other._best

    def result(self) -> Any:
        return self._best


def make_accumulator(name: str, star: bool, distinct: bool) -> Accumulator:
    """Instantiate the accumulator for an aggregate call."""
    if name == "count":
        return CountAccumulator(count_nulls=star, distinct=distinct)
    factories: dict[str, Callable[[bool], Accumulator]] = {
        "sum": SumAccumulator,
        "avg": AvgAccumulator,
        "min": MinAccumulator,
        "max": MaxAccumulator,
    }
    if name not in factories:
        raise SqlExecutionError(f"unknown aggregate function: {name!r}")
    return factories[name](distinct)
