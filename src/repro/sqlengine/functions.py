"""Aggregate function accumulators."""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SqlExecutionError, SqlTypeError


class Accumulator:
    """Base class for aggregate accumulators (one instance per group)."""

    def add(self, value: Any) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def result(self) -> Any:  # pragma: no cover - interface
        raise NotImplementedError


class CountAccumulator(Accumulator):
    """``count(expr)`` — counts non-NULL values; ``count(*)`` counts rows."""

    def __init__(self, count_nulls: bool = False, distinct: bool = False) -> None:
        self._count = 0
        self._count_nulls = count_nulls
        self._distinct = distinct
        self._seen: set = set()

    def add(self, value: Any) -> None:
        if value is None and not self._count_nulls:
            return
        if self._distinct:
            if value in self._seen:
                return
            self._seen.add(value)
        self._count += 1

    def result(self) -> int:
        return self._count


class SumAccumulator(Accumulator):
    """``sum(expr)`` — NULL over empty/all-NULL input."""

    def __init__(self, distinct: bool = False) -> None:
        self._total: "int | float | None" = None
        self._distinct = distinct
        self._seen: set = set()

    def add(self, value: Any) -> None:
        if value is None:
            return
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise SqlTypeError(f"sum() expects numbers, got {value!r}")
        if self._distinct:
            if value in self._seen:
                return
            self._seen.add(value)
        self._total = value if self._total is None else self._total + value

    def result(self) -> "int | float | None":
        return self._total


class AvgAccumulator(Accumulator):
    def __init__(self, distinct: bool = False) -> None:
        self._total = 0.0
        self._count = 0
        self._distinct = distinct
        self._seen: set = set()

    def add(self, value: Any) -> None:
        if value is None:
            return
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise SqlTypeError(f"avg() expects numbers, got {value!r}")
        if self._distinct:
            if value in self._seen:
                return
            self._seen.add(value)
        self._total += value
        self._count += 1

    def result(self) -> float | None:
        if self._count == 0:
            return None
        return self._total / self._count


class MinAccumulator(Accumulator):
    def __init__(self, distinct: bool = False) -> None:
        self._best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._best is None or value < self._best:
            self._best = value

    def result(self) -> Any:
        return self._best


class MaxAccumulator(Accumulator):
    def __init__(self, distinct: bool = False) -> None:
        self._best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._best is None or value > self._best:
            self._best = value

    def result(self) -> Any:
        return self._best


def make_accumulator(name: str, star: bool, distinct: bool) -> Accumulator:
    """Instantiate the accumulator for an aggregate call."""
    if name == "count":
        return CountAccumulator(count_nulls=star, distinct=distinct)
    factories: dict[str, Callable[[bool], Accumulator]] = {
        "sum": SumAccumulator,
        "avg": AvgAccumulator,
        "min": MinAccumulator,
        "max": MaxAccumulator,
    }
    if name not in factories:
        raise SqlExecutionError(f"unknown aggregate function: {name!r}")
    return factories[name](distinct)
