"""Aggregate function accumulators."""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SqlExecutionError, SqlTypeError


class Accumulator:
    """Base class for aggregate accumulators (one instance per group).

    ``add`` is the row-at-a-time interface; the vectorized engine feeds
    whole value slices through ``add_many`` / ``add_repeat``, which
    subclasses override with bulk implementations that produce results
    identical to the equivalent sequence of ``add`` calls (same
    accumulation order, same type errors).
    """

    def add(self, value: Any) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def add_many(self, values) -> None:
        add = self.add
        for value in values:
            add(value)

    def add_repeat(self, count: int) -> None:
        """``count`` successive ``add(1)`` calls (the ``count(*)`` shape)."""
        add = self.add
        for __ in range(count):
            add(1)

    def result(self) -> Any:  # pragma: no cover - interface
        raise NotImplementedError


class CountAccumulator(Accumulator):
    """``count(expr)`` — counts non-NULL values; ``count(*)`` counts rows."""

    def __init__(self, count_nulls: bool = False, distinct: bool = False) -> None:
        self._count = 0
        self._count_nulls = count_nulls
        self._distinct = distinct
        self._seen: set = set()

    def add(self, value: Any) -> None:
        if value is None and not self._count_nulls:
            return
        if self._distinct:
            if value in self._seen:
                return
            self._seen.add(value)
        self._count += 1

    def add_many(self, values) -> None:
        if self._distinct:
            super().add_many(values)
            return
        if self._count_nulls:
            self._count += len(values)
        else:
            self._count += len(values) - values.count(None)

    def add_repeat(self, count: int) -> None:
        if self._distinct:
            super().add_repeat(count)
            return
        self._count += count

    def result(self) -> int:
        return self._count


class SumAccumulator(Accumulator):
    """``sum(expr)`` — NULL over empty/all-NULL input."""

    def __init__(self, distinct: bool = False) -> None:
        self._total: "int | float | None" = None
        self._distinct = distinct
        self._seen: set = set()

    def add(self, value: Any) -> None:
        if value is None:
            return
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise SqlTypeError(f"sum() expects numbers, got {value!r}")
        if self._distinct:
            if value in self._seen:
                return
            self._seen.add(value)
        self._total = value if self._total is None else self._total + value

    def add_many(self, values) -> None:
        if self._distinct:
            super().add_many(values)
            return
        present = [value for value in values if value is not None]
        if not present:
            return
        for value in present:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise SqlTypeError(f"sum() expects numbers, got {value!r}")
        # left-to-right binary adds: identical to sequential add() calls
        # (the first value seeds the total directly, as add() does — an
        # integer-0 seed would turn a leading -0.0 into 0.0)
        if self._total is None:
            self._total = sum(present[1:], present[0])
        else:
            self._total = sum(present, self._total)

    def result(self) -> "int | float | None":
        return self._total


class AvgAccumulator(Accumulator):
    def __init__(self, distinct: bool = False) -> None:
        self._total = 0.0
        self._count = 0
        self._distinct = distinct
        self._seen: set = set()

    def add(self, value: Any) -> None:
        if value is None:
            return
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise SqlTypeError(f"avg() expects numbers, got {value!r}")
        if self._distinct:
            if value in self._seen:
                return
            self._seen.add(value)
        self._total += value
        self._count += 1

    def add_many(self, values) -> None:
        if self._distinct:
            super().add_many(values)
            return
        present = [value for value in values if value is not None]
        if not present:
            return
        for value in present:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise SqlTypeError(f"avg() expects numbers, got {value!r}")
        self._total = sum(present, self._total)
        self._count += len(present)

    def result(self) -> float | None:
        if self._count == 0:
            return None
        return self._total / self._count


class MinAccumulator(Accumulator):
    def __init__(self, distinct: bool = False) -> None:
        self._best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._best is None or value < self._best:
            self._best = value

    def add_many(self, values) -> None:
        present = [value for value in values if value is not None]
        if not present:
            return
        candidate = min(present)
        if self._best is None or candidate < self._best:
            self._best = candidate

    def result(self) -> Any:
        return self._best


class MaxAccumulator(Accumulator):
    def __init__(self, distinct: bool = False) -> None:
        self._best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._best is None or value > self._best:
            self._best = value

    def add_many(self, values) -> None:
        present = [value for value in values if value is not None]
        if not present:
            return
        candidate = max(present)
        if self._best is None or candidate > self._best:
            self._best = candidate

    def result(self) -> Any:
        return self._best


def make_accumulator(name: str, star: bool, distinct: bool) -> Accumulator:
    """Instantiate the accumulator for an aggregate call."""
    if name == "count":
        return CountAccumulator(count_nulls=star, distinct=distinct)
    factories: dict[str, Callable[[bool], Accumulator]] = {
        "sum": SumAccumulator,
        "avg": AvgAccumulator,
        "min": MinAccumulator,
        "max": MaxAccumulator,
    }
    if name not in factories:
        raise SqlExecutionError(f"unknown aggregate function: {name!r}")
    return factories[name](distinct)
