"""Thin execution facade over the planner subsystem.

Historically this module interpreted the ``Select`` AST directly with
ad-hoc inline planning.  Execution now flows through
:mod:`repro.sqlengine.planner`: the AST is lowered to a logical plan
DAG, optimized (constant folding, predicate pushdown, projection
pruning, statistics-driven join ordering) and compiled into physical
operators — vectorized batch operators by default, or the row-at-a-time
volcano engine via ``execution_mode="row"``.  :class:`~repro.sqlengine.
database.Database` owns a long-lived :class:`~repro.sqlengine.planner.
QueryPlanner` whose LRU plan cache makes repeated statements skip
re-planning; the module-level functions below create a transient
planner per call and exist for API compatibility (tests, notebooks).

All pre-planner semantics are preserved — see
:mod:`repro.sqlengine.planner.physical` for the operator contracts.
"""

from __future__ import annotations

from repro.errors import SqlExecutionError
from repro.sqlengine.ast_nodes import Select
from repro.sqlengine.catalog import Catalog
from repro.sqlengine.results import ResultSet

__all__ = [
    "ResultSet",
    "execute_select",
    "execute_union",
    "explain_select",
]


def _planner_for(catalog: Catalog, planner=None):
    if planner is not None:
        return planner
    from repro.sqlengine.planner import QueryPlanner

    return QueryPlanner(catalog)


def execute_select(catalog: Catalog, select: Select, planner=None) -> ResultSet:
    """Plan and execute a SELECT statement against *catalog*."""
    return _planner_for(catalog, planner).execute(select)


def execute_union(catalog: Catalog, union, planner=None) -> ResultSet:
    """Execute a UNION [ALL] chain; columns come from the first branch."""
    owner = _planner_for(catalog, planner)
    results = [owner.execute(select) for select in union.selects]
    width = len(results[0].columns)
    for index, result in enumerate(results[1:], start=2):
        if len(result.columns) != width:
            raise SqlExecutionError(
                f"UNION branches must have the same number of columns: "
                f"branch 1 has {width}, branch {index} has "
                f"{len(result.columns)}"
            )
    rows: list = []
    if union.all:
        for result in results:
            rows.extend(result.rows)
    else:
        seen: set = set()
        for result in results:
            for row in result.rows:
                if row not in seen:
                    seen.add(row)
                    rows.append(row)
    return ResultSet(columns=results[0].columns, rows=rows)


def explain_select(catalog: Catalog, select: Select, planner=None) -> str:
    """The optimized plan of a SELECT as a deterministic text tree."""
    return _planner_for(catalog, planner).explain(select)
