"""Query planner and executor.

The executor turns a parsed :class:`~repro.sqlengine.ast_nodes.Select`
into a :class:`ResultSet`:

1. FROM tables and INNER JOIN tables are planned together: predicates are
   split into single-table filters (pushed below joins), equi-join
   predicates (executed as hash joins, greedily following connectivity),
   and residual predicates (applied as soon as their bindings exist).
2. LEFT joins are applied sequentially after the inner block.
3. Aggregation (GROUP BY / aggregate functions) runs on the joined rows;
   non-aggregated, non-grouped expressions are evaluated on the first row
   of each group (documented leniency, matching classic MySQL).
4. HAVING, projection, DISTINCT, ORDER BY (aliases, positions or
   expressions) and LIMIT follow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import SqlCatalogError, SqlExecutionError
from repro.sqlengine.ast_nodes import (
    AGGREGATE_FUNCTIONS,
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    collect_column_refs,
    contains_aggregate,
)
from repro.sqlengine.catalog import Catalog, Table
from repro.sqlengine.expressions import Scope, compile_expr, split_conjuncts
from repro.sqlengine.functions import make_accumulator


@dataclass
class ResultSet:
    """The rows produced by a SELECT."""

    columns: list[str]
    rows: list[tuple]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def as_dicts(self) -> list[dict]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column(self, name: str) -> list[Any]:
        try:
            index = self.columns.index(name)
        except ValueError:
            raise SqlExecutionError(
                f"no column {name!r} in result (have {self.columns})"
            ) from None
        return [row[index] for row in self.rows]


@dataclass
class _Relation:
    """Intermediate rows plus their column layout."""

    scope: Scope
    rows: list


def execute_union(catalog: Catalog, union) -> ResultSet:
    """Execute a UNION [ALL] chain; columns come from the first branch."""
    results = [execute_select(catalog, select) for select in union.selects]
    width = len(results[0].columns)
    for result in results[1:]:
        if len(result.columns) != width:
            raise SqlExecutionError(
                "UNION branches must have the same number of columns"
            )
    rows: list = []
    if union.all:
        for result in results:
            rows.extend(result.rows)
    else:
        seen: set = set()
        for result in results:
            for row in result.rows:
                if row not in seen:
                    seen.add(row)
                    rows.append(row)
    return ResultSet(columns=results[0].columns, rows=rows)


def execute_select(catalog: Catalog, select: Select) -> ResultSet:
    """Execute a SELECT statement against *catalog*."""
    relation, conjuncts = _plan_joins(catalog, select)
    relation = _apply_conjuncts(relation, conjuncts)

    needs_aggregation = bool(select.group_by) or any(
        item.expr is not None and contains_aggregate(item.expr)
        for item in select.items
    )
    if select.having is not None:
        needs_aggregation = True
    if any(contains_aggregate(item.expr) for item in select.order_by):
        needs_aggregation = True

    if needs_aggregation:
        relation, agg_slots = _aggregate(relation, select)
    else:
        agg_slots = {}

    columns, out_rows, pre_rows = _project(relation, select, agg_slots)

    if select.distinct:
        seen: set = set()
        deduped_out: list[tuple] = []
        deduped_pre: list[tuple] = []
        for out_row, pre_row in zip(out_rows, pre_rows):
            if out_row in seen:
                continue
            seen.add(out_row)
            deduped_out.append(out_row)
            deduped_pre.append(pre_row)
        out_rows, pre_rows = deduped_out, deduped_pre

    if select.order_by:
        out_rows = _order(
            select.order_by, columns, out_rows, pre_rows, relation.scope, agg_slots
        )

    if select.limit is not None:
        out_rows = out_rows[: select.limit]

    return ResultSet(columns=columns, rows=out_rows)


def explain_select(catalog: Catalog, select: Select) -> str:
    """A human-readable plan description (no execution).

    Mirrors the planner's decisions: filter pushdown, equi-join
    recognition, greedy join order, residual predicates, aggregation and
    final ordering.
    """
    inner_tables: list = [(ref.binding, catalog.table(ref.name))
                          for ref in select.tables]
    conjuncts: list = split_conjuncts(select.where)
    left_joins = []
    for join in select.joins:
        if join.kind == "INNER":
            inner_tables.append((join.table.binding, catalog.table(join.table.name)))
            conjuncts.extend(split_conjuncts(join.condition))
        else:
            left_joins.append(join)
    scopes = {
        binding: Scope([(binding, name) for name in table.column_names()])
        for binding, table in inner_tables
    }
    filters: dict = {binding: [] for binding, __ in inner_tables}
    equi_joins: list = []
    residual: list = []
    for conjunct in conjuncts:
        refs = collect_column_refs(conjunct)
        ref_bindings = _bindings_of(refs, scopes)
        if ref_bindings is not None and len(ref_bindings) == 1:
            filters[next(iter(ref_bindings))].append(conjunct)
            continue
        equi = _as_equi_join(conjunct, scopes) if ref_bindings else None
        if equi is not None:
            equi_joins.append(equi)
        else:
            residual.append(conjunct)

    lines = []
    for binding, table in inner_tables:
        pushed = filters[binding]
        suffix = ""
        if pushed:
            suffix = " filter: " + " AND ".join(p.to_sql() for p in pushed)
        lines.append(f"scan {table.name} as {binding} "
                     f"({len(table.rows)} rows){suffix}")

    order = [binding for binding, __ in inner_tables]
    joined = {order[0]}
    pending = order[1:]
    remaining = list(equi_joins)
    while pending:
        next_binding = _pick_connected(pending, joined, remaining)
        if next_binding is None:
            next_binding = pending[0]
            lines.append(f"cross join {next_binding}")
        pending.remove(next_binding)
        usable, remaining = _split_usable_equi(remaining, joined, next_binding)
        if usable:
            conditions = " AND ".join(item[4].to_sql() for item in usable)
            lines.append(f"hash join {next_binding} on {conditions}")
        joined.add(next_binding)
    for join in left_joins:
        lines.append(
            f"left join {join.table.binding} on {join.condition.to_sql()}"
        )
    for conjunct in residual:
        lines.append(f"residual filter {conjunct.to_sql()}")

    if select.group_by or any(
        item.expr is not None and contains_aggregate(item.expr)
        for item in select.items
    ):
        keys = ", ".join(e.to_sql() for e in select.group_by) or "(all rows)"
        lines.append(f"aggregate group by {keys}")
    if select.having is not None:
        lines.append(f"having {select.having.to_sql()}")
    if select.distinct:
        lines.append("distinct")
    if select.order_by:
        lines.append(
            "sort by " + ", ".join(item.to_sql() for item in select.order_by)
        )
    if select.limit is not None:
        lines.append(f"limit {select.limit}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# join planning
# ---------------------------------------------------------------------------


def _plan_joins(catalog: Catalog, select: Select) -> tuple[_Relation, list]:
    """Join all tables; return the joined relation and residual conjuncts."""
    inner_tables: list[tuple] = []  # (binding, Table)
    bindings_seen: set[str] = set()

    def register(binding: str, table_name: str) -> Table:
        if binding in bindings_seen:
            raise SqlCatalogError(f"duplicate table binding: {binding!r}")
        bindings_seen.add(binding)
        return catalog.table(table_name)

    for table_ref in select.tables:
        inner_tables.append(
            (table_ref.binding, register(table_ref.binding, table_ref.name))
        )

    conjuncts: list = split_conjuncts(select.where)
    left_joins: list = []
    for join in select.joins:
        if join.kind == "INNER":
            inner_tables.append(
                (join.table.binding, register(join.table.binding, join.table.name))
            )
            conjuncts.extend(split_conjuncts(join.condition))
        else:
            left_joins.append(join)

    scopes = {
        binding: Scope([(binding, name) for name in table.column_names()])
        for binding, table in inner_tables
    }

    # classify conjuncts
    filters: dict[str, list] = {binding: [] for binding, __ in inner_tables}
    equi_joins: list[tuple] = []  # (binding_a, ref_a, binding_b, ref_b, expr)
    residual: list = []
    for conjunct in conjuncts:
        refs = collect_column_refs(conjunct)
        ref_bindings = _bindings_of(refs, scopes)
        if ref_bindings is None:
            residual.append(conjunct)
            continue
        if len(ref_bindings) == 1:
            filters[next(iter(ref_bindings))].append(conjunct)
            continue
        equi = _as_equi_join(conjunct, scopes)
        if equi is not None:
            equi_joins.append(equi)
        else:
            residual.append(conjunct)

    # scan + pushdown
    relations: dict[str, _Relation] = {}
    for binding, table in inner_tables:
        scope = scopes[binding]
        rows = list(table.rows)
        for predicate in filters[binding]:
            fn = compile_expr(predicate, scope)
            rows = [row for row in rows if fn(row) is True]
        relations[binding] = _Relation(scope=scope, rows=rows)

    # greedy hash-join ordering
    order = [binding for binding, __ in inner_tables]
    joined = relations[order[0]]
    joined_bindings = {order[0]}
    pending = order[1:]
    remaining_equi = list(equi_joins)
    remaining_residual = list(residual)

    while pending:
        next_binding = _pick_connected(pending, joined_bindings, remaining_equi)
        if next_binding is None:
            next_binding = pending[0]
        pending.remove(next_binding)
        usable, remaining_equi = _split_usable_equi(
            remaining_equi, joined_bindings, next_binding
        )
        joined = _hash_join(joined, relations[next_binding], usable)
        joined_bindings.add(next_binding)
        joined, remaining_residual = _apply_ready_residuals(
            joined, remaining_residual, joined_bindings, scopes
        )

    # any leftover equi joins reference bindings already merged (e.g. cycles)
    for __, left_ref, __, right_ref, expr in remaining_equi:
        fn = compile_expr(expr, joined.scope)
        joined.rows = [row for row in joined.rows if fn(row) is True]

    # LEFT joins applied sequentially
    for join in left_joins:
        table = register(join.table.binding, join.table.name)
        right_scope = Scope(
            [(join.table.binding, name) for name in table.column_names()]
        )
        right = _Relation(scope=right_scope, rows=list(table.rows))
        joined = _left_join(joined, right, join.condition)

    return joined, remaining_residual


def _bindings_of(refs: Sequence[ColumnRef], scopes: dict) -> set | None:
    """The set of bindings referenced, or None if any ref is unresolvable."""
    found: set[str] = set()
    for ref in refs:
        if ref.table is not None:
            if ref.table not in scopes:
                return None
            found.add(ref.table)
            continue
        owners = [
            binding
            for binding, scope in scopes.items()
            if scope.try_resolve(ColumnRef(binding, ref.column)) is not None
        ]
        if len(owners) != 1:
            return None
        found.add(owners[0])
    return found


def _as_equi_join(conjunct: Expr, scopes: dict) -> tuple | None:
    """Recognise ``a.x = b.y`` between two different bindings."""
    if not (isinstance(conjunct, BinaryOp) and conjunct.op == "="):
        return None
    left, right = conjunct.left, conjunct.right
    if not (isinstance(left, ColumnRef) and isinstance(right, ColumnRef)):
        return None
    left_binding = _owner_of(left, scopes)
    right_binding = _owner_of(right, scopes)
    if left_binding is None or right_binding is None:
        return None
    if left_binding == right_binding:
        return None
    return (left_binding, left, right_binding, right, conjunct)


def _owner_of(ref: ColumnRef, scopes: dict) -> str | None:
    if ref.table is not None:
        return ref.table if ref.table in scopes else None
    owners = [
        binding
        for binding, scope in scopes.items()
        if scope.try_resolve(ColumnRef(binding, ref.column)) is not None
    ]
    return owners[0] if len(owners) == 1 else None


def _pick_connected(
    pending: list, joined_bindings: set, equi_joins: list
) -> str | None:
    for binding in pending:
        for left_b, __, right_b, __, __ in equi_joins:
            if binding == left_b and right_b in joined_bindings:
                return binding
            if binding == right_b and left_b in joined_bindings:
                return binding
    return None


def _split_usable_equi(
    equi_joins: list, joined_bindings: set, new_binding: str
) -> tuple[list, list]:
    usable, remaining = [], []
    for item in equi_joins:
        left_b, __, right_b, __, __ = item
        endpoints = {left_b, right_b}
        if new_binding in endpoints and (endpoints - {new_binding}) <= joined_bindings:
            usable.append(item)
        else:
            remaining.append(item)
    return usable, remaining


def _hash_join(left: _Relation, right: _Relation, equi: list) -> _Relation:
    """Hash join on the usable equi predicates; cross join if none."""
    out_scope = left.scope.concat(right.scope)
    if not equi:
        rows = [l + r for l in left.rows for r in right.rows]
        return _Relation(scope=out_scope, rows=rows)

    left_indexes: list[int] = []
    right_indexes: list[int] = []
    for left_b, left_ref, right_b, right_ref, __ in equi:
        if left.scope.try_resolve(left_ref) is not None:
            left_indexes.append(left.scope.resolve(left_ref))
            right_indexes.append(right.scope.resolve(right_ref))
        else:
            left_indexes.append(left.scope.resolve(right_ref))
            right_indexes.append(right.scope.resolve(left_ref))

    table: dict = {}
    for row in right.rows:
        key = tuple(row[i] for i in right_indexes)
        if any(v is None for v in key):
            continue
        table.setdefault(key, []).append(row)

    rows = []
    for row in left.rows:
        key = tuple(row[i] for i in left_indexes)
        if any(v is None for v in key):
            continue
        for match in table.get(key, ()):
            rows.append(row + match)
    return _Relation(scope=out_scope, rows=rows)


def _left_join(left: _Relation, right: _Relation, condition: Expr) -> _Relation:
    out_scope = left.scope.concat(right.scope)
    fn = compile_expr(condition, out_scope)
    null_pad = (None,) * len(right.scope)
    rows = []
    for left_row in left.rows:
        matched = False
        for right_row in right.rows:
            combined = left_row + right_row
            if fn(combined) is True:
                rows.append(combined)
                matched = True
        if not matched:
            rows.append(left_row + null_pad)
    return _Relation(scope=out_scope, rows=rows)


def _apply_ready_residuals(
    relation: _Relation, residuals: list, joined_bindings: set, scopes: dict
) -> tuple[_Relation, list]:
    still_waiting = []
    for conjunct in residuals:
        refs = collect_column_refs(conjunct)
        needed = _bindings_of(refs, scopes)
        if needed is not None and needed <= joined_bindings:
            fn = compile_expr(conjunct, relation.scope)
            relation.rows = [row for row in relation.rows if fn(row) is True]
        else:
            still_waiting.append(conjunct)
    return relation, still_waiting


def _apply_conjuncts(relation: _Relation, conjuncts: list) -> _Relation:
    for conjunct in conjuncts:
        fn = compile_expr(conjunct, relation.scope)
        relation.rows = [row for row in relation.rows if fn(row) is True]
    return relation


# ---------------------------------------------------------------------------
# aggregation
# ---------------------------------------------------------------------------


def _collect_aggregates(expr: Expr | None, found: list) -> None:
    if expr is None:
        return
    if isinstance(expr, FuncCall):
        if expr.name in AGGREGATE_FUNCTIONS:
            if expr not in found:
                found.append(expr)
            return
        for arg in expr.args:
            _collect_aggregates(arg, found)
        return
    for child in _children(expr):
        _collect_aggregates(child, found)


def _children(expr: Expr) -> list:
    from repro.sqlengine.ast_nodes import Between, InList, IsNull, Like, UnaryOp

    if isinstance(expr, BinaryOp):
        return [expr.left, expr.right]
    if isinstance(expr, UnaryOp):
        return [expr.operand]
    if isinstance(expr, Like):
        return [expr.operand, expr.pattern]
    if isinstance(expr, InList):
        return [expr.operand, *expr.items]
    if isinstance(expr, Between):
        return [expr.operand, expr.low, expr.high]
    if isinstance(expr, IsNull):
        return [expr.operand]
    return []


def _aggregate(relation: _Relation, select: Select) -> tuple[_Relation, dict]:
    """Group rows and append aggregate results to a representative row."""
    scope = relation.scope
    agg_calls: list = []
    for item in select.items:
        _collect_aggregates(item.expr, agg_calls)
    _collect_aggregates(select.having, agg_calls)
    for order_item in select.order_by:
        _collect_aggregates(order_item.expr, agg_calls)

    group_fns = [compile_expr(expr, scope) for expr in select.group_by]

    arg_fns = []
    for call in agg_calls:
        if call.star:
            arg_fns.append(None)
        else:
            if len(call.args) != 1:
                raise SqlExecutionError(
                    f"aggregate {call.name}() takes exactly one argument"
                )
            arg_fns.append(compile_expr(call.args[0], scope))

    groups: dict = {}
    group_order: list = []
    for row in relation.rows:
        key = tuple(fn(row) for fn in group_fns)
        if key not in groups:
            accumulators = [
                make_accumulator(call.name, call.star, call.distinct)
                for call in agg_calls
            ]
            groups[key] = (row, accumulators)
            group_order.append(key)
        __, accumulators = groups[key]
        for call, arg_fn, accumulator in zip(agg_calls, arg_fns, accumulators):
            accumulator.add(1 if call.star else arg_fn(row))

    # aggregate query over empty input and no GROUP BY -> one empty group
    if not groups and not select.group_by:
        accumulators = [
            make_accumulator(call.name, call.star, call.distinct)
            for call in agg_calls
        ]
        null_row = (None,) * len(scope)
        groups[()] = (null_row, accumulators)
        group_order.append(())

    agg_slots = {call: len(scope) + i for i, call in enumerate(agg_calls)}
    extended_scope = Scope(
        scope.pairs + [(None, f"__agg_{i}") for i in range(len(agg_calls))]
    )
    extended_rows = []
    for key in group_order:
        rep_row, accumulators = groups[key]
        extended_rows.append(
            rep_row + tuple(acc.result() for acc in accumulators)
        )

    out = _Relation(scope=extended_scope, rows=extended_rows)
    if select.having is not None:
        fn = compile_expr(select.having, extended_scope, agg_slots)
        out.rows = [row for row in out.rows if fn(row) is True]
    return out, agg_slots


# ---------------------------------------------------------------------------
# projection & ordering
# ---------------------------------------------------------------------------


def _project(
    relation: _Relation, select: Select, agg_slots: dict
) -> tuple[list, list, list]:
    """Evaluate the select list; returns (columns, out_rows, pre_rows)."""
    scope = relation.scope
    columns: list[str] = []
    fns: list = []

    multi_table = len({b for b, __ in scope.pairs if b is not None}) > 1
    for item in select.items:
        if item.is_star:
            for index, (binding, column) in enumerate(scope.pairs):
                if column.startswith("__agg_"):
                    continue
                if item.star_table is not None and binding != item.star_table:
                    continue
                if item.star_table is None and multi_table and binding is not None:
                    columns.append(f"{binding}.{column}")
                else:
                    columns.append(column)
                fns.append(_make_picker(index))
            if item.star_table is not None and not any(
                binding == item.star_table for binding, __ in scope.pairs
            ):
                raise SqlCatalogError(f"unknown table in star: {item.star_table!r}")
            continue
        assert item.expr is not None
        columns.append(item.alias or item.expr.to_sql())
        fns.append(compile_expr(item.expr, scope, agg_slots))

    out_rows = []
    pre_rows = []
    for row in relation.rows:
        out_rows.append(tuple(fn(row) for fn in fns))
        pre_rows.append(row)
    return columns, out_rows, pre_rows


def _make_picker(index: int):
    return lambda row: row[index]


def _order(
    order_by: Sequence[OrderItem],
    columns: list,
    out_rows: list,
    pre_rows: list,
    scope: Scope,
    agg_slots: dict,
) -> list:
    """Sort output rows; supports aliases, positions and expressions."""
    pairs = list(zip(out_rows, pre_rows))

    key_fns: list = []
    for item in order_by:
        expr = item.expr
        if isinstance(expr, Literal) and isinstance(expr.value, int):
            position = expr.value - 1
            if not 0 <= position < len(columns):
                raise SqlExecutionError(f"ORDER BY position out of range: {expr.value}")
            key_fns.append((_make_out_picker(position), item.descending))
            continue
        if (
            isinstance(expr, ColumnRef)
            and expr.table is None
            and expr.column in columns
        ):
            position = columns.index(expr.column)
            key_fns.append((_make_out_picker(position), item.descending))
            continue
        fn = compile_expr(expr, scope, agg_slots)
        key_fns.append((_make_pre_picker(fn), item.descending))

    # stable multi-pass sort, last key first
    for key_fn, descending in reversed(key_fns):
        pairs.sort(key=lambda pair: _sort_key(key_fn(pair)), reverse=descending)
    return [out_row for out_row, __ in pairs]


def _make_out_picker(position: int):
    return lambda pair: pair[0][position]


def _make_pre_picker(fn):
    return lambda pair: fn(pair[1])


def _sort_key(value: Any) -> tuple:
    """Total order over mixed values: NULLs first, then by type group."""
    if value is None:
        return (0, 0, 0)
    if isinstance(value, bool):
        return (1, 0, int(value))
    if isinstance(value, (int, float)):
        return (1, 1, value)
    if isinstance(value, str):
        return (1, 2, value)
    return (1, 3, str(value))
