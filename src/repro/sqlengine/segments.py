"""Frozen columnar segments + mutable delta: snapshot-pinned reads.

The LSM design point (immutable sorted runs plus a small mutable
memtable) applied to this engine's dual row/columnar storage: when a
table opts in (``EngineConfig(segment_rows=N)``), its flat storage is
mirrored by a :class:`SegmentedStorage` — an ordered list of
:class:`FrozenSegment` objects (immutable row/column tuples frozen off
the front of the table once the mutable *delta* tail reaches the
threshold) plus writer-side bookkeeping.  The flat lists stay
authoritative and byte-identical to the classic layout, so every
single-threaded code path (DML position scans, undo, WAL checkpoints,
the inverted-index maintainer) is untouched; the mirror exists so
*readers* can pin.

A reader calls :meth:`~repro.sqlengine.catalog.Table.pin` (or, for a
whole query, :meth:`~repro.sqlengine.catalog.Catalog.pin_tables`) and
gets a :class:`TableSnapshot`: the segment list with each segment's
tombstone set captured as a frozenset, plus a copy of the (small)
delta.  Segments are never mutated after freezing — DML maps onto the
mirror as:

* **INSERT** appends to the delta; full threshold-sized chunks freeze
  into new segments (:meth:`SegmentedStorage.note_insert`);
* **UPDATE** touching frozen rows replaces the affected segments with
  fresh ones built from the flat post-image (copy-on-write — pinned
  readers keep the old objects);
* **DELETE** of frozen rows grows the owning segment's tombstone set
  (grow-only, so a pinned frozenset stays a consistent past state) and
  compacts a segment once half its rows are dead;
* **restore_rows** (transaction rollback) rebuilds the mirror.

All mirror maintenance happens inside the table's storage lock (one
:class:`threading.RLock` per catalog); pinning takes the same lock
briefly.  Readers never take the lock while scanning, so one writer
and any number of readers proceed without blocking each other beyond
the pin/maintenance critical sections.  The engine's scan operators
consult the current thread's *installed pins* (:func:`pinned`, set up
by ``QueryPlanner.execute`` around each query, and propagated into
morsel worker threads) so every batch of one execution reads the same
snapshot.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Iterator

__all__ = [
    "FrozenSegment",
    "SegmentedStorage",
    "TableSnapshot",
    "current_pins",
    "pin_for",
    "pinned",
    "snapshot_of",
]


class FrozenSegment:
    """One immutable chunk of a table: row tuples + per-column tuples.

    ``tombstones`` (physical offsets of deleted rows) is the only
    mutable part, owned by the writer and *grow-only* for the lifetime
    of the segment object — so a reader that captured the set as a
    frozenset of size ``k`` sees exactly the state after the first
    ``k`` deletions.  Live-row projections are cached per tombstone
    count (at most two states: concurrent readers at different
    snapshots recompute older states instead of growing the cache).
    """

    __slots__ = ("rows", "columns", "tombstones", "_live_cache")

    def __init__(self, rows: tuple, columns: tuple) -> None:
        self.rows = rows
        self.columns = columns
        self.tombstones: set = set()
        self._live_cache: dict = {}

    @property
    def live_count(self) -> int:
        return len(self.rows) - len(self.tombstones)

    def _state(self, tombstones) -> dict:
        """The cached live projection for one tombstone state.

        Keyed by ``len(tombstones)``: the set only ever grows, so the
        size identifies the state.  Safe under concurrent readers —
        recomputation is idempotent and dict writes are atomic.
        """
        key = len(tombstones)
        state = self._live_cache.get(key)
        if state is None:
            keep = [
                offset
                for offset in range(len(self.rows))
                if offset not in tombstones
            ]
            state = {"keep": keep, "rows": None, "cols": {}}
            if len(self._live_cache) >= 2:
                # keep only the newest state; a straggler reader on an
                # evicted one just recomputes
                newest = max(self._live_cache)
                self._live_cache = {newest: self._live_cache[newest]}
            self._live_cache[key] = state
        return state

    def live_rows(self, tombstones) -> "tuple | list":
        """Row tuples surviving *tombstones* (None/empty: all rows)."""
        if not tombstones:
            return self.rows
        state = self._state(tombstones)
        rows = state["rows"]
        if rows is None:
            data = self.rows
            rows = [data[offset] for offset in state["keep"]]
            state["rows"] = rows
        return rows

    def live_column(self, index: int, tombstones) -> "tuple | list":
        """One column's values surviving *tombstones*."""
        if not tombstones:
            return self.columns[index]
        state = self._state(tombstones)
        column = state["cols"].get(index)
        if column is None:
            data = self.columns[index]
            column = [data[offset] for offset in state["keep"]]
            state["cols"][index] = column
        return column

    def live_to_physical(self, tombstones) -> "list | None":
        """Physical offset of each live row, or None for the identity."""
        if not tombstones:
            return None
        return self._state(tombstones)["keep"]


class TableSnapshot:
    """A pinned, immutable view: frozen segments + a copied delta.

    Row coordinates are *live* positions over the whole snapshot
    (``0 .. row_count``), exactly matching the table's flat storage at
    pin time — so batch boundaries, row order and values are identical
    to a flat scan of the same state.
    """

    __slots__ = ("entries", "delta_rows", "delta_columns", "prefix", "row_count")

    def __init__(self, entries: list, delta_rows: list, delta_columns: list):
        #: ``(segment, tombstones frozenset | None, live_count)`` per segment
        self.entries = entries
        self.delta_rows = delta_rows
        self.delta_columns = delta_columns
        prefix = [0]
        for __, __, live in entries:
            prefix.append(prefix[-1] + live)
        prefix.append(prefix[-1] + len(delta_rows))
        #: cumulative live counts; parts are segments then the delta
        self.prefix = prefix
        self.row_count = prefix[-1]

    def column_slice(self, index: int, start: int, stop: int) -> list:
        """Values of one column over live positions ``[start, stop)``."""
        stop = min(stop, self.row_count)
        if start >= stop:
            return []
        prefix = self.prefix
        entries = self.entries
        out: list = []
        part = bisect_right(prefix, start) - 1
        position = start
        while position < stop:
            base = prefix[part]
            end = prefix[part + 1]
            if end == base:  # pragma: no cover - empty parts are skipped
                part += 1
                continue
            if part < len(entries):
                segment, tombstones, __ = entries[part]
                data = segment.live_column(index, tombstones)
            else:
                data = self.delta_columns[index]
            upto = min(stop, end)
            out.extend(data[position - base : upto - base])
            position = upto
            part += 1
        return out

    def iter_rows(self) -> Iterator[tuple]:
        """Row tuples in live order (segments first, then the delta)."""
        for segment, tombstones, __ in self.entries:
            yield from segment.live_rows(tombstones)
        yield from self.delta_rows


class SegmentedStorage:
    """Writer-side mirror of one table's flat storage.

    Invariant (checked by the property tests): the concatenation of
    every segment's live rows followed by the delta equals the table's
    flat ``rows`` list.  All methods must be called under the table's
    storage lock, from the single-writer mutation path.
    """

    __slots__ = ("threshold", "segments", "frozen_live")

    def __init__(self, threshold: int) -> None:
        self.threshold = max(1, int(threshold))
        self.segments: list = []
        #: total live rows across segments == the delta's start offset
        self.frozen_live = 0

    # -- pinning -------------------------------------------------------
    def snapshot(self, table) -> TableSnapshot:
        entries = [
            (
                segment,
                frozenset(segment.tombstones) if segment.tombstones else None,
                segment.live_count,
            )
            for segment in self.segments
        ]
        start = self.frozen_live
        delta_rows = list(table.rows[start:])
        delta_columns = [
            list(store[start:]) for store in table._column_data
        ]
        return TableSnapshot(entries, delta_rows, delta_columns)

    # -- mutation mapping ----------------------------------------------
    def _freeze_range(self, table, start: int, stop: int) -> FrozenSegment:
        rows = tuple(table.rows[start:stop])
        columns = tuple(
            tuple(store[start:stop]) for store in table._column_data
        )
        return FrozenSegment(rows, columns)

    def note_insert(self, table) -> None:
        """Freeze full threshold-sized chunks off the delta's front."""
        total = len(table.rows)
        while total - self.frozen_live >= self.threshold:
            start = self.frozen_live
            self.segments.append(
                self._freeze_range(table, start, start + self.threshold)
            )
            self.frozen_live += self.threshold

    def _map_frozen(self, positions) -> dict:
        """Sorted live positions -> ``{segment index: [physical offsets]}``.

        Positions at or past ``frozen_live`` (the delta) are ignored.
        """
        mapping: dict = {}
        if not self.segments:
            return mapping
        base = 0
        index = 0
        segment = self.segments[0]
        for position in positions:
            if position >= self.frozen_live:
                break
            while position >= base + segment.live_count:
                base += segment.live_count
                index += 1
                segment = self.segments[index]
            offset = position - base
            live_map = segment.live_to_physical(segment.tombstones)
            if live_map is not None:
                offset = live_map[offset]
            mapping.setdefault(index, []).append(offset)
        return mapping

    def note_update(self, table, positions) -> None:
        """Copy-on-write: re-freeze segments whose rows were rewritten.

        Called after the flat in-place writes, so the affected live
        ranges of the flat storage hold the post-image.  Untouched
        segments keep their identity (pinned readers notice nothing);
        live counts are unchanged, so no offsets shift.
        """
        frozen_positions = sorted(
            {p for p in positions if p < self.frozen_live}
        )
        touched = self._map_frozen(frozen_positions)
        if not touched:
            return
        prefix = [0]
        for segment in self.segments:
            prefix.append(prefix[-1] + segment.live_count)
        for index in touched:
            self.segments[index] = self._freeze_range(
                table, prefix[index], prefix[index + 1]
            )

    def plan_delete(self, sorted_positions) -> dict:
        """Map doomed live positions to segments *before* compaction."""
        return self._map_frozen(
            [p for p in sorted_positions if p < self.frozen_live]
        )

    def commit_delete(self, table, mapping: dict) -> None:
        """Apply a planned delete *after* the flat compaction.

        Grows tombstone sets (never shrinks — pinned frozensets stay
        valid), drops fully-dead segments, and compacts any segment
        with at least half its rows dead by re-freezing its live range
        from the flat post-image.
        """
        if not mapping:
            return
        removed = 0
        for index, offsets in mapping.items():
            segment = self.segments[index]
            segment.tombstones.update(offsets)
            removed += len(offsets)
        self.frozen_live -= removed
        survivors: list = []
        start = 0
        for segment in self.segments:
            live = segment.live_count
            if live == 0:
                continue
            if len(segment.tombstones) * 2 >= len(segment.rows):
                segment = self._freeze_range(table, start, start + live)
            survivors.append(segment)
            start += live
        self.segments = survivors

    def rebuild(self, table) -> None:
        """Re-derive the whole mirror from the flat storage (rollback)."""
        self.segments = []
        self.frozen_live = 0
        self.note_insert(table)

    # -- introspection -------------------------------------------------
    def stats(self, table) -> dict:
        return {
            "segments": len(self.segments),
            "frozen_live": self.frozen_live,
            "delta_rows": len(table.rows) - self.frozen_live,
            "tombstones": sum(
                len(segment.tombstones) for segment in self.segments
            ),
        }


# ----------------------------------------------------------------------
# per-thread pin scopes (installed by QueryPlanner around execution)
# ----------------------------------------------------------------------
_TLS = threading.local()


def current_pins() -> "dict | None":
    """The thread's installed pin set (``id(table) -> TableSnapshot``)."""
    return getattr(_TLS, "pins", None)


def pin_for(table) -> "TableSnapshot | None":
    """The installed snapshot for *table*, or None."""
    pins = getattr(_TLS, "pins", None)
    if pins is None:
        return None
    return pins.get(id(table))


def snapshot_of(table) -> "TableSnapshot | None":
    """The snapshot a scan of *table* must read, or None for flat reads.

    Segmented tables always read through a snapshot: the thread's
    installed pin when a query-level scope is active, otherwise a fresh
    ad-hoc pin (consistent within the one call that took it).
    """
    if table._segments is None:
        return None
    pinned_snapshot = pin_for(table)
    if pinned_snapshot is not None:
        return pinned_snapshot
    return table.pin()


class pinned:
    """Install a pin set thread-locally for a ``with`` block.

    ``pinned(None)`` is a no-op scope, so callers can unconditionally
    wrap execution without branching on whether anything is segmented.
    Scopes nest (the previous pin set is restored on exit), and the
    morsel dispatcher re-installs the coordinator's pins inside each
    worker thread.
    """

    __slots__ = ("_pins", "_previous")

    def __init__(self, pins: "dict | None") -> None:
        self._pins = pins
        self._previous = None

    def __enter__(self) -> "dict | None":
        if self._pins is not None:
            self._previous = getattr(_TLS, "pins", None)
            _TLS.pins = self._pins
        return self._pins

    def __exit__(self, *exc) -> bool:
        if self._pins is not None:
            _TLS.pins = self._previous
        return False
