"""Incremental maintenance of the base-data inverted index.

The paper's inverted index takes 24 hours to build, so it cannot be
rebuilt whenever the warehouse loads new rows.  This module provides the
write-through path instead: an :class:`InvertedIndexMaintainer`
registered as a :class:`~repro.sqlengine.catalog.CatalogObserver` sees
every INSERT, UPDATE, DELETE and DDL statement and applies the delta to
the index, so a long-lived :class:`~repro.warehouse.warehouse.Warehouse`
keeps serving fresh lookups without a full scan.  Updates un-index the
old value of each changed TEXT column and index the new one; deletes
un-index every TEXT value of the removed row.

The maintained index is guaranteed to equal a from-scratch
:meth:`~repro.index.inverted.InvertedIndex.build` over the same catalog
(parity is locked by ``tests/index/test_maintenance.py``).
"""

from __future__ import annotations

from repro.index.inverted import InvertedIndex
from repro.obs.metrics import registry as _metrics_registry
from repro.sqlengine.catalog import Catalog, CatalogObserver, Table
from repro.sqlengine.types import SqlType


class InvertedIndexMaintainer(CatalogObserver):
    """Applies catalog write events to one :class:`InvertedIndex`."""

    def __init__(self, index: InvertedIndex) -> None:
        self.index = index
        #: table name -> [(row position, column name)] of its TEXT columns
        self._text_columns: dict[str, list[tuple]] = {}
        #: counts applied deltas, for observability (`repro index stats`)
        self.applied_inserts = 0
        self.applied_updates = 0
        self.applied_deletes = 0
        self.applied_ddl = 0
        # the same events mirrored into the process-wide registry
        self._metrics = _metrics_registry()
        self._inserts_counter = self._metrics.counter(
            "index.maintainer.inserts"
        )
        self._updates_counter = self._metrics.counter(
            "index.maintainer.updates"
        )
        self._deletes_counter = self._metrics.counter(
            "index.maintainer.deletes"
        )
        self._ddl_counter = self._metrics.counter("index.maintainer.ddl")

    # ------------------------------------------------------------------
    # CatalogObserver interface
    # ------------------------------------------------------------------
    def on_insert(self, table: Table, row: tuple) -> None:
        for position, column_name in self._columns_for(table):
            value = row[position]
            if value is not None:
                self.index.add(table.name, column_name, value)
        self.applied_inserts += 1
        if self._metrics.enabled:
            self._inserts_counter.inc()

    def on_update(self, table: Table, old_row: tuple, new_row: tuple) -> None:
        for position, column_name in self._columns_for(table):
            old_value = old_row[position]
            new_value = new_row[position]
            if old_value == new_value:
                continue
            if old_value is not None:
                self.index.remove(table.name, column_name, old_value)
            if new_value is not None:
                self.index.add(table.name, column_name, new_value)
        self.applied_updates += 1
        if self._metrics.enabled:
            self._updates_counter.inc()

    def on_delete(self, table: Table, row: tuple) -> None:
        for position, column_name in self._columns_for(table):
            value = row[position]
            if value is not None:
                self.index.remove(table.name, column_name, value)
        self.applied_deletes += 1
        if self._metrics.enabled:
            self._deletes_counter.inc()

    def on_create_table(self, table: Table) -> None:
        self._scan_text_columns(table)
        self.applied_ddl += 1
        if self._metrics.enabled:
            self._ddl_counter.inc()

    def on_drop_table(self, name: str) -> None:
        self._text_columns.pop(name, None)
        self.index.remove_table(name)
        self.applied_ddl += 1
        if self._metrics.enabled:
            self._ddl_counter.inc()

    # ------------------------------------------------------------------
    def _columns_for(self, table: Table) -> list[tuple]:
        """The cached (position, name) TEXT columns of *table*."""
        columns = self._text_columns.get(table.name)
        if columns is None:
            columns = self._scan_text_columns(table)
        return columns

    def _scan_text_columns(self, table: Table) -> list[tuple]:
        columns = [
            (position, column.name)
            for position, column in enumerate(table.columns)
            if column.sql_type is SqlType.TEXT
        ]
        self._text_columns[table.name] = columns
        return columns


def attach_maintainer(
    catalog: Catalog, index: InvertedIndex
) -> InvertedIndexMaintainer:
    """Register a maintainer for *index* on *catalog* and return it."""
    maintainer = InvertedIndexMaintainer(index)
    catalog.register_observer(maintainer)
    return maintainer
