"""Incremental maintenance of the base-data inverted index.

The paper's inverted index takes 24 hours to build, so it cannot be
rebuilt whenever the warehouse loads new rows.  This module provides the
write-through path instead: an :class:`InvertedIndexMaintainer`
registered as a :class:`~repro.sqlengine.catalog.CatalogObserver` sees
every INSERT and DDL statement and applies the delta to the index, so a
long-lived :class:`~repro.warehouse.warehouse.Warehouse` keeps serving
fresh lookups without a full scan.

The maintained index is guaranteed to equal a from-scratch
:meth:`~repro.index.inverted.InvertedIndex.build` over the same catalog
(parity is locked by ``tests/index/test_maintenance.py``).
"""

from __future__ import annotations

from repro.index.inverted import InvertedIndex
from repro.sqlengine.catalog import Catalog, CatalogObserver, Table
from repro.sqlengine.types import SqlType


class InvertedIndexMaintainer(CatalogObserver):
    """Applies catalog write events to one :class:`InvertedIndex`."""

    def __init__(self, index: InvertedIndex) -> None:
        self.index = index
        #: table name -> [(row position, column name)] of its TEXT columns
        self._text_columns: dict[str, list[tuple]] = {}
        #: counts applied deltas, for observability (`repro index stats`)
        self.applied_inserts = 0
        self.applied_ddl = 0

    # ------------------------------------------------------------------
    # CatalogObserver interface
    # ------------------------------------------------------------------
    def on_insert(self, table: Table, row: tuple) -> None:
        columns = self._text_columns.get(table.name)
        if columns is None:
            columns = self._scan_text_columns(table)
        for position, column_name in columns:
            value = row[position]
            if value is not None:
                self.index.add(table.name, column_name, value)
        self.applied_inserts += 1

    def on_create_table(self, table: Table) -> None:
        self._scan_text_columns(table)
        self.applied_ddl += 1

    def on_drop_table(self, name: str) -> None:
        self._text_columns.pop(name, None)
        self.index.remove_table(name)
        self.applied_ddl += 1

    # ------------------------------------------------------------------
    def _scan_text_columns(self, table: Table) -> list[tuple]:
        columns = [
            (position, column.name)
            for position, column in enumerate(table.columns)
            if column.sql_type is SqlType.TEXT
        ]
        self._text_columns[table.name] = columns
        return columns


def attach_maintainer(
    catalog: Catalog, index: InvertedIndex
) -> InvertedIndexMaintainer:
    """Register a maintainer for *index* on *catalog* and return it."""
    maintainer = InvertedIndexMaintainer(index)
    catalog.register_observer(maintainer)
    return maintainer
