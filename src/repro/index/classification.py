"""Classification index over metadata terms (paper Step 1 - Lookup).

Every term attached to a metadata-graph node — ontology terms, DBpedia
synonyms, entity/attribute names of the conceptual and logical schema,
physical table/column names — is registered here so that query keywords
can be matched with the longest-word-combination algorithm of Section
4.2.2.  Each match records *where* in the metadata graph the keyword was
found, which is what the ranking step scores (Figure 5's "Query
Classification").
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass

from repro.index.inverted import tokenize_text


class EntrySource(enum.Enum):
    """Where in the metadata graph a lookup term was found.

    Ordered roughly by the trust the ranking heuristic places in each
    location (see :mod:`repro.core.ranking`).
    """

    DOMAIN_ONTOLOGY = "domain_ontology"
    CONCEPTUAL_SCHEMA = "conceptual_schema"
    LOGICAL_SCHEMA = "logical_schema"
    PHYSICAL_SCHEMA = "physical_schema"
    BASE_DATA = "base_data"
    DBPEDIA = "dbpedia"


@dataclass(frozen=True)
class TermMatch:
    """One classification-index hit for a term."""

    term: str
    node: str
    source: EntrySource

    def sort_key(self) -> tuple:
        return (self.term, self.source.value, self.node)


def normalize_term(term: str) -> str:
    """Canonical form of a term: lowercase tokens joined by one space.

    >>> normalize_term('  Private   CUSTOMERS ')
    'private customers'
    """
    return " ".join(tokenize_text(term))


def depluralize(term: str) -> str:
    """Naive singularisation of every token (strip a trailing ``s``).

    Good enough for the schema vocabulary in play (customers/customer,
    transactions/transaction); irregular plurals simply do not match.
    """
    tokens = []
    for token in normalize_term(term).split(" "):
        if len(token) > 4 and token.endswith("sses"):
            tokens.append(token[:-2])
        elif len(token) > 3 and token.endswith("ies"):
            tokens.append(token[:-3] + "y")
        elif len(token) > 2 and token.endswith("s") and not token.endswith("ss"):
            tokens.append(token[:-1])
        else:
            tokens.append(token)
    return " ".join(tokens)


class ClassificationIndex:
    """Term -> metadata node matches, with plural-insensitive lookup."""

    def __init__(self) -> None:
        self._terms: dict[str, list[TermMatch]] = defaultdict(list)
        self._max_words = 1
        self._version = 0

    def add_term(self, term: str, node: str, source: EntrySource) -> None:
        """Register *term* as referring to graph *node*."""
        canonical = depluralize(term)
        if not canonical:
            return
        match = TermMatch(term=normalize_term(term), node=node, source=source)
        bucket = self._terms[canonical]
        if match not in bucket:
            bucket.append(match)
            self._version += 1
        self._max_words = max(self._max_words, canonical.count(" ") + 1)

    @property
    def version(self) -> int:
        """Bumped on every new registration; lets caches detect staleness."""
        return self._version

    def lookup(self, term: str) -> list[TermMatch]:
        """All matches of *term* (plural-insensitive)."""
        canonical = depluralize(term)
        return sorted(self._terms.get(canonical, []), key=TermMatch.sort_key)

    def __contains__(self, term: str) -> bool:
        return depluralize(term) in self._terms

    @property
    def max_term_words(self) -> int:
        """Longest registered term, in words (bounds the matcher window)."""
        return self._max_words

    def term_count(self) -> int:
        return len(self._terms)

    def terms(self) -> list[str]:
        return sorted(self._terms)

    # ------------------------------------------------------------------
    # snapshot serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-compatible representation (see :mod:`repro.index.snapshot`)."""
        return {
            "terms": {
                canonical: [
                    [match.term, match.node, match.source.value]
                    for match in bucket
                ]
                for canonical, bucket in self._terms.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ClassificationIndex":
        """Rebuild an index from :meth:`to_dict` output."""
        from repro.errors import WarehouseError

        index = cls()
        try:
            for canonical, bucket in payload["terms"].items():
                index._terms[canonical] = [
                    TermMatch(term=term, node=node, source=EntrySource(source))
                    for term, node, source in bucket
                ]
                index._max_words = max(
                    index._max_words, canonical.count(" ") + 1
                )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise WarehouseError(
                f"malformed classification-index payload: {exc}"
            ) from exc
        return index
