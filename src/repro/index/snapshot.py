"""Versioned index snapshots for warehouse warm-starts.

The paper amortizes a 24-hour index build across many interactive
searches; the equivalent here is persisting the built indexes so a
process restart loads them instead of re-scanning the catalog.  A
snapshot bundles:

* the base-data :class:`~repro.index.inverted.InvertedIndex`,
* every materialized
  :class:`~repro.index.classification.ClassificationIndex` variant
  (keyed by its ``include_dbpedia`` / ``include_physical`` build flags),
* a format version and a *catalog stamp* — the warehouse name,
  ``Catalog.fingerprint()`` (DDL version, total rows, total
  UPDATE/DELETE mutations) and a sampled content digest
  (:func:`catalog_digest`) taken at save time.  The mutation count
  makes a snapshot stale after any UPDATE or DELETE, even one that
  leaves the row count unchanged (an in-place rewrite, or a delete
  followed by a same-size reinsert).

Loading verifies the stamp against the live catalog, so a snapshot
cannot silently serve postings for data it has not seen — the digest
samples actual row content, catching same-shape catalogs populated
with different data (e.g. a different generator seed); a mismatch
raises :class:`~repro.errors.WarehouseError` (callers may catch it and
fall back to a cold build).

File-level failures raise the structured
:class:`~repro.errors.SnapshotError` (a ``WarehouseError`` subclass)
carrying the snapshot ``path`` and a failure ``kind`` — ``"missing"``,
``"corrupt"`` (unreadable bytes: truncated gzip, damaged deflate),
``"malformed"`` (valid bytes, wrong shape) or ``"version"`` — so
callers can log *why* a warm start failed without string matching.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import SnapshotError, WarehouseError
from repro.index.classification import ClassificationIndex
from repro.index.inverted import InvertedIndex

SNAPSHOT_VERSION = 1


def catalog_digest(catalog) -> str:
    """A cheap, process-stable digest of the catalog's data content.

    Samples each table's name, row count and first/middle/last rows —
    O(tables), not O(rows), so verifying it never approaches the cost
    of the full scan a warm-start avoids.  Deliberately a sample: two
    catalogs differing only in unsampled interior rows collide, which
    the fingerprint's total row count makes hard in practice.
    """
    digest = hashlib.sha256()
    for table in catalog.tables():
        digest.update(table.name.encode())
        rows = table.rows
        digest.update(str(len(rows)).encode())
        if rows:
            for sample in (rows[0], rows[len(rows) // 2], rows[-1]):
                digest.update(repr(sample).encode())
    return digest.hexdigest()


@dataclass
class IndexSnapshot:
    """The in-memory form of one saved snapshot."""

    name: str
    fingerprint: tuple  # (ddl_version, total_rows, total_mutations) at save
    inverted: InvertedIndex
    #: (include_dbpedia, include_physical) -> ClassificationIndex
    classifications: dict = field(default_factory=dict)
    #: sampled data-content digest (see :func:`catalog_digest`)
    content_digest: str = ""

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "snapshot_version": SNAPSHOT_VERSION,
            "name": self.name,
            "fingerprint": list(self.fingerprint),
            "content_digest": self.content_digest,
            "inverted": self.inverted.to_dict(),
            "classifications": [
                {
                    "include_dbpedia": include_dbpedia,
                    "include_physical": include_physical,
                    "index": index.to_dict(),
                }
                for (include_dbpedia, include_physical), index in sorted(
                    self.classifications.items()
                )
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "IndexSnapshot":
        if not isinstance(payload, dict):
            raise SnapshotError(
                f"malformed index snapshot: expected an object, "
                f"got {type(payload).__name__}",
                kind="malformed",
            )
        version = payload.get("snapshot_version")
        if version != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"unsupported index snapshot version: {version!r} "
                f"(expected {SNAPSHOT_VERSION})",
                kind="version",
            )
        try:
            fingerprint = tuple(payload["fingerprint"])
            if len(fingerprint) == 2:
                # pre-DML snapshots stamped (ddl_version, total_rows);
                # a catalog that has never seen an UPDATE/DELETE has
                # mutation count 0, so the migrated stamp still matches
                # and the warm start is preserved
                fingerprint += (0,)
            return cls(
                name=payload["name"],
                fingerprint=fingerprint,
                inverted=InvertedIndex.from_dict(payload["inverted"]),
                classifications={
                    (entry["include_dbpedia"], entry["include_physical"]):
                        ClassificationIndex.from_dict(entry["index"])
                    for entry in payload.get("classifications", [])
                },
                content_digest=payload.get("content_digest", ""),
            )
        except (KeyError, TypeError, AttributeError) as exc:
            raise SnapshotError(
                f"malformed index snapshot: {exc}", kind="malformed"
            ) from exc

    # ------------------------------------------------------------------
    def verify(
        self, name: str, fingerprint: tuple, content_digest: "str | None" = None
    ) -> None:
        """Raise unless the snapshot matches the live warehouse state."""
        if self.name != name:
            raise WarehouseError(
                f"index snapshot is for warehouse {self.name!r}, "
                f"not {name!r}"
            )
        if self.fingerprint != tuple(fingerprint):
            raise WarehouseError(
                f"index snapshot is stale: catalog fingerprint "
                f"{tuple(fingerprint)} != stamped {self.fingerprint}"
            )
        if (
            content_digest is not None
            and self.content_digest
            and self.content_digest != content_digest
        ):
            raise WarehouseError(
                "index snapshot is stale: catalog content digest does not "
                "match the stamped digest (same shape, different data)"
            )


def save_snapshot(snapshot: IndexSnapshot, path, compress: bool = True) -> None:
    """Write *snapshot* to *path* as gzip-compressed compact JSON.

    Compression is the default (the conventional extension is
    ``.json.gz``; postings compress ~5-10x) and deterministic (the gzip
    mtime field is pinned), so identical snapshots are byte-identical
    on disk.  ``compress=False`` writes the legacy plain-JSON format,
    which :func:`load_snapshot` keeps reading either way.
    """
    payload = json.dumps(snapshot.to_dict(), separators=(",", ":")).encode()
    if compress:
        payload = gzip.compress(payload, mtime=0)
    Path(path).write_bytes(payload)


def load_snapshot(path) -> IndexSnapshot:
    """Read a snapshot from *path* (format-validated, stamp NOT verified).

    The format is sniffed from the content, not the file name: gzip
    members are detected by their magic bytes, anything else is parsed
    as legacy plain JSON — so pre-compression snapshots keep loading.
    """
    try:
        raw = Path(path).read_bytes()
    except FileNotFoundError as exc:
        raise SnapshotError(
            f"index snapshot missing: {path!s}", path=str(path), kind="missing"
        ) from exc
    except OSError as exc:
        raise SnapshotError(
            f"cannot read index snapshot {path!s}: {exc}",
            path=str(path),
            kind="corrupt",
        ) from exc
    try:
        if raw[:2] == b"\x1f\x8b":
            raw = gzip.decompress(raw)
        text = raw.decode("utf-8")
    except (OSError, EOFError, zlib.error, UnicodeDecodeError) as exc:
        # OSError covers gzip.BadGzipFile; EOFError is a truncated gzip
        # member; zlib.error a corrupted deflate stream
        raise SnapshotError(
            f"corrupt index snapshot {path!s}: {exc}",
            path=str(path),
            kind="corrupt",
        ) from exc
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise SnapshotError(
            f"malformed index snapshot {path!s}: {exc}",
            path=str(path),
            kind="malformed",
        ) from exc
    try:
        return IndexSnapshot.from_dict(payload)
    except SnapshotError as exc:
        if exc.path:
            raise
        raise SnapshotError(str(exc), path=str(path), kind=exc.kind) from exc
