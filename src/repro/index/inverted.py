"""Inverted index over the base data (paper Section 5.1.2).

The paper builds an inverted index over all text columns of the 472 base
tables (9.5 GB, 24-hour build).  Here the same structure is built in
memory: every token of every TEXT column value maps to a posting list
recording the table, column and exact stored value.  Step 1 (lookup)
probes this index to turn query keywords into base-data entry points, and
Step 4 (filters) turns a posting into an equality filter such as
``addresses.city = 'Zurich'``.

The index is designed for *long-lived* service (the paper amortizes its
24-hour build across many interactive searches):

* postings can be added and removed (and whole tables dropped)
  incrementally, so a registered
  :class:`~repro.index.maintenance.InvertedIndexMaintainer` keeps the
  index fresh under INSERT/UPDATE/DELETE/DDL without any rebuild;
* sorted posting lists, tokenized haystacks and phrase-lookup results
  are cached and invalidated precisely by the incremental write path;
* :meth:`to_dict` / :meth:`from_dict` serialize the index for the
  warm-start snapshots of :mod:`repro.index.snapshot`.

Numeric columns are deliberately *not* indexed — the paper notes "base
data table columns with numerical data types are not contained in our
inverted index".
"""

from __future__ import annotations

import re
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable

from repro.errors import WarehouseError
from repro.sqlengine.catalog import Catalog
from repro.sqlengine.types import SqlType

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def tokenize_text(text: str) -> list[str]:
    """Lowercase word tokens of a stored value or a query phrase.

    >>> tokenize_text('Credit Suisse AG')
    ['credit', 'suisse', 'ag']
    """
    return _TOKEN_RE.findall(text.lower())


def count_phrase_occurrences(haystack: tuple, needle: tuple) -> int:
    """Contiguous occurrences of token sequence *needle* in *haystack*.

    >>> count_phrase_occurrences(('a', 'b', 'a', 'b'), ('a', 'b'))
    2
    >>> count_phrase_occurrences(('a', 'x', 'b'), ('a', 'b'))
    0
    """
    if not needle or len(needle) > len(haystack):
        return 0
    first = needle[0]
    width = len(needle)
    count = 0
    for position in range(len(haystack) - width + 1):
        if haystack[position] == first and haystack[position:position + width] == needle:
            count += 1
    return count


@dataclass(frozen=True)
class Posting:
    """One occurrence of a token (or phrase) in the base data."""

    table: str
    column: str
    value: str
    occurrences: int = 1

    def sort_key(self) -> tuple:
        return (self.table, self.column, self.value)


class InvertedIndex:
    """Token -> posting list over the TEXT columns of a catalog.

    >>> from repro.sqlengine import Database
    >>> db = Database()
    >>> _ = db.execute("CREATE TABLE t (id INT, city TEXT)")
    >>> _ = db.execute("INSERT INTO t VALUES (1, 'Zurich'), (2, 'Zurich')")
    >>> index = InvertedIndex.build(db.catalog)
    >>> index.lookup('zurich')[0].occurrences
    2
    """

    def __init__(self) -> None:
        # token -> set of (table, column, value) keys
        self._postings: dict[str, set[tuple]] = defaultdict(set)
        # (table, column, value) -> number of rows storing that value
        self._value_counts: dict[tuple, int] = {}
        self._entries = 0
        self._version = 0
        # caches, invalidated by _invalidate() on every mutation
        self._sorted_cache: dict[str, list[Posting]] = {}
        self._haystack_cache: dict[tuple, tuple] = {}
        self._phrase_cache: dict[str, list[Posting]] = {}

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, catalog: Catalog, tables: Iterable[str] | None = None
    ) -> "InvertedIndex":
        """Index every TEXT column of *catalog* (or only *tables*)."""
        index = cls()
        names = list(tables) if tables is not None else catalog.table_names()
        for table_name in names:
            table = catalog.table(table_name)
            text_columns = [
                (position, column.name)
                for position, column in enumerate(table.columns)
                if column.sql_type is SqlType.TEXT
            ]
            if not text_columns:
                continue
            for row in table.rows:
                for position, column_name in text_columns:
                    value = row[position]
                    if value is None:
                        continue
                    index.add(table_name, column_name, value)
        return index

    def add(self, table: str, column: str, value: str) -> None:
        """Index one stored value (the incremental write path)."""
        key = (table, column, value)
        tokens = set(tokenize_text(value))
        for token in tokens:
            self._postings[token].add(key)
        self._value_counts[key] = self._value_counts.get(key, 0) + 1
        self._entries += 1
        self._invalidate(tokens)

    def remove(self, table: str, column: str, value: str) -> None:
        """Un-index one stored value (the incremental UPDATE/DELETE path).

        The exact inverse of :meth:`add`: the value count is
        decremented, and when the last row storing *value* is gone its
        postings disappear from every token's list.
        """
        key = (table, column, value)
        count = self._value_counts.get(key)
        if count is None:
            raise WarehouseError(
                f"cannot remove unindexed value {value!r} "
                f"({table}.{column})"
            )
        tokens = set(tokenize_text(value))
        if count <= 1:
            del self._value_counts[key]
            for token in tokens:
                bucket = self._postings.get(token)
                if bucket is None:
                    continue
                bucket.discard(key)
                if not bucket:
                    del self._postings[token]
        else:
            self._value_counts[key] = count - 1
        self._entries -= 1
        self._invalidate(tokens)

    def remove_table(self, table: str) -> None:
        """Drop all postings of *table* (DDL write path, rare)."""
        doomed = [key for key in self._value_counts if key[0] == table]
        if not doomed:
            return
        for key in doomed:
            self._entries -= self._value_counts.pop(key)
            for token in set(tokenize_text(key[2])):
                bucket = self._postings.get(token)
                if bucket is None:
                    continue
                bucket.discard(key)
                if not bucket:
                    del self._postings[token]
        self._invalidate(None)

    def _invalidate(self, tokens: "set | None") -> None:
        """Drop caches made stale by a mutation touching *tokens* (None: all)."""
        self._version += 1
        self._phrase_cache.clear()
        if tokens is None:
            self._sorted_cache.clear()
            self._haystack_cache.clear()
        else:
            for token in tokens:
                self._sorted_cache.pop(token, None)

    @property
    def version(self) -> int:
        """Bumped on every mutation; lets external caches detect staleness."""
        return self._version

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def lookup(self, token: str) -> list[Posting]:
        """The (cached, sorted) posting list of a single token."""
        cleaned = token.lower().strip()
        cached = self._sorted_cache.get(cleaned)
        if cached is None:
            cached = sorted(
                (
                    Posting(key[0], key[1], key[2], self._value_counts[key])
                    for key in self._postings.get(cleaned, ())
                ),
                key=Posting.sort_key,
            )
            self._sorted_cache[cleaned] = cached
        return list(cached)

    def _haystack(self, key: tuple) -> tuple:
        """The tokenized stored value of *key* (cached)."""
        tokens = self._haystack_cache.get(key)
        if tokens is None:
            tokens = tuple(tokenize_text(key[2]))
            self._haystack_cache[key] = tokens
        return tokens

    def lookup_phrase(self, phrase: str) -> list[Posting]:
        """Postings whose stored value contains *phrase* contiguously.

        A multi-word keyword such as "Credit Suisse" matches values in
        which the tokens appear adjacent and in order ("Credit Suisse
        AG" matches, "Suisse Credit Union" does not).  This keeps the
        lookup consistent with the generated ``LIKE '%credit suisse%'``
        filter.  ``occurrences`` counts actual contiguous phrase
        occurrences (times the number of rows storing the value), not
        the per-token minimum, which miscounts values whose tokens
        repeat non-adjacently.
        """
        tokens = tuple(tokenize_text(phrase))
        if not tokens:
            return []
        cache_key = " ".join(tokens)
        cached = self._phrase_cache.get(cache_key)
        if cached is not None:
            return list(cached)
        keys: set[tuple] | None = None
        for token in tokens:
            token_keys = self._postings.get(token)
            if not token_keys:
                keys = set()
                break
            keys = set(token_keys) if keys is None else keys & token_keys
            if not keys:
                break
        results = []
        for key in keys or ():
            per_value = count_phrase_occurrences(self._haystack(key), tokens)
            if per_value == 0:
                continue
            table, column, value = key
            results.append(
                Posting(
                    table, column, value, per_value * self._value_counts[key]
                )
            )
        results.sort(key=Posting.sort_key)
        self._phrase_cache[cache_key] = results
        return list(results)

    def has_token(self, token: str) -> bool:
        return token.lower().strip() in self._postings

    def token_count(self) -> int:
        """Number of distinct tokens in the index."""
        return len(self._postings)

    def entry_count(self) -> int:
        """Number of indexed (non-unique) values, as reported in the paper."""
        return self._entries

    def size_summary(self) -> dict:
        """Statistics in the spirit of the paper's index size report."""
        postings = sum(len(values) for values in self._postings.values())
        return {
            "distinct_tokens": len(self._postings),
            "postings": postings,
            "indexed_values": self._entries,
        }

    # ------------------------------------------------------------------
    # snapshot serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-compatible representation (see :mod:`repro.index.snapshot`).

        Keys are interned into a value table so each (table, column,
        value) triple is written once, with posting lists referring to
        it by position.
        """
        ordered = sorted(self._value_counts)
        id_of = {key: position for position, key in enumerate(ordered)}
        return {
            "values": [
                [table, column, value, self._value_counts[(table, column, value)]]
                for table, column, value in ordered
            ],
            "postings": {
                token: sorted(id_of[key] for key in keys)
                for token, keys in self._postings.items()
            },
            "entries": self._entries,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "InvertedIndex":
        """Rebuild an index from :meth:`to_dict` output (no re-tokenizing)."""
        index = cls()
        try:
            keys = []
            for table, column, value, count in payload["values"]:
                key = (table, column, value)
                keys.append(key)
                index._value_counts[key] = count
            for token, ids in payload["postings"].items():
                index._postings[token] = {keys[i] for i in ids}
            index._entries = payload["entries"]
        except (KeyError, IndexError, TypeError, ValueError, AttributeError) as exc:
            raise WarehouseError(f"malformed inverted-index payload: {exc}") from exc
        return index
