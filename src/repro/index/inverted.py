"""Inverted index over the base data (paper Section 5.1.2).

The paper builds an inverted index over all text columns of the 472 base
tables (9.5 GB, 24-hour build).  Here the same structure is built in
memory: every token of every TEXT column value maps to postings that
record the table, column and exact stored value.  Step 1 (lookup) probes
this index to turn query keywords into base-data entry points, and Step 4
(filters) turns a posting into an equality filter such as
``addresses.city = 'Zurich'``.

Numeric columns are deliberately *not* indexed — the paper notes "base
data table columns with numerical data types are not contained in our
inverted index".
"""

from __future__ import annotations

import re
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable

from repro.sqlengine.catalog import Catalog
from repro.sqlengine.types import SqlType

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def tokenize_text(text: str) -> list[str]:
    """Lowercase word tokens of a stored value or a query phrase.

    >>> tokenize_text('Credit Suisse AG')
    ['credit', 'suisse', 'ag']
    """
    return _TOKEN_RE.findall(text.lower())


@dataclass(frozen=True)
class Posting:
    """One occurrence of a token (or phrase) in the base data."""

    table: str
    column: str
    value: str
    occurrences: int = 1

    def sort_key(self) -> tuple:
        return (self.table, self.column, self.value)


class InvertedIndex:
    """Token -> postings over the TEXT columns of a catalog.

    >>> from repro.sqlengine import Database
    >>> db = Database()
    >>> _ = db.execute("CREATE TABLE t (id INT, city TEXT)")
    >>> _ = db.execute("INSERT INTO t VALUES (1, 'Zurich'), (2, 'Zurich')")
    >>> index = InvertedIndex.build(db.catalog)
    >>> index.lookup('zurich')[0].occurrences
    2
    """

    def __init__(self) -> None:
        # token -> (table, column, value) -> count
        self._postings: dict[str, dict[tuple, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        self._entries = 0

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, catalog: Catalog, tables: Iterable[str] | None = None
    ) -> "InvertedIndex":
        """Index every TEXT column of *catalog* (or only *tables*)."""
        index = cls()
        names = list(tables) if tables is not None else catalog.table_names()
        for table_name in names:
            table = catalog.table(table_name)
            text_columns = [
                (position, column.name)
                for position, column in enumerate(table.columns)
                if column.sql_type is SqlType.TEXT
            ]
            if not text_columns:
                continue
            for row in table.rows:
                for position, column_name in text_columns:
                    value = row[position]
                    if value is None:
                        continue
                    index.add(table_name, column_name, value)
        return index

    def add(self, table: str, column: str, value: str) -> None:
        """Index one stored value."""
        key = (table, column, value)
        for token in set(tokenize_text(value)):
            self._postings[token][key] += 1
        self._entries += 1

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def lookup(self, token: str) -> list[Posting]:
        """Postings of a single token."""
        cleaned = token.lower().strip()
        found = self._postings.get(cleaned, {})
        return sorted(
            (
                Posting(table, column, value, occurrences)
                for (table, column, value), occurrences in found.items()
            ),
            key=Posting.sort_key,
        )

    def lookup_phrase(self, phrase: str) -> list[Posting]:
        """Postings whose stored value contains *phrase* contiguously.

        A multi-word keyword such as "Credit Suisse" matches values in
        which the tokens appear adjacent and in order ("Credit Suisse
        AG" matches, "Suisse Credit Union" does not).  This keeps the
        lookup consistent with the generated ``LIKE '%credit suisse%'``
        filter.
        """
        tokens = tokenize_text(phrase)
        if not tokens:
            return []
        keys: set[tuple] | None = None
        for token in tokens:
            token_keys = set(self._postings.get(token, {}))
            keys = token_keys if keys is None else keys & token_keys
            if not keys:
                return []
        assert keys is not None
        needle = " " + " ".join(tokens) + " "
        results = []
        for key in keys:
            table, column, value = key
            haystack = " " + " ".join(tokenize_text(value)) + " "
            if needle not in haystack:
                continue
            occurrences = min(
                self._postings[token][key] for token in tokens
            )
            results.append(Posting(table, column, value, occurrences))
        return sorted(results, key=Posting.sort_key)

    def has_token(self, token: str) -> bool:
        return token.lower().strip() in self._postings

    def token_count(self) -> int:
        """Number of distinct tokens in the index."""
        return len(self._postings)

    def entry_count(self) -> int:
        """Number of indexed (non-unique) values, as reported in the paper."""
        return self._entries

    def size_summary(self) -> dict:
        """Statistics in the spirit of the paper's index size report."""
        postings = sum(len(values) for values in self._postings.values())
        return {
            "distinct_tokens": len(self._postings),
            "postings": postings,
            "indexed_values": self._entries,
        }
