"""Index substrates: base-data inverted index and metadata classification."""

from repro.index.classification import (
    ClassificationIndex,
    EntrySource,
    TermMatch,
    depluralize,
    normalize_term,
)
from repro.index.inverted import InvertedIndex, Posting, tokenize_text

__all__ = [
    "ClassificationIndex",
    "EntrySource",
    "InvertedIndex",
    "Posting",
    "TermMatch",
    "depluralize",
    "normalize_term",
    "tokenize_text",
]
