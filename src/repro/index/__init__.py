"""Index substrates: base-data inverted index and metadata classification.

Long-lived indexes are maintained incrementally (``maintenance``) and
persist across processes via versioned snapshots (``snapshot``).
"""

from repro.index.classification import (
    ClassificationIndex,
    EntrySource,
    TermMatch,
    depluralize,
    normalize_term,
)
from repro.index.inverted import (
    InvertedIndex,
    Posting,
    count_phrase_occurrences,
    tokenize_text,
)
from repro.index.maintenance import InvertedIndexMaintainer, attach_maintainer
from repro.index.snapshot import (
    SNAPSHOT_VERSION,
    IndexSnapshot,
    load_snapshot,
    save_snapshot,
)

__all__ = [
    "ClassificationIndex",
    "EntrySource",
    "IndexSnapshot",
    "InvertedIndex",
    "InvertedIndexMaintainer",
    "Posting",
    "SNAPSHOT_VERSION",
    "TermMatch",
    "attach_maintainer",
    "count_phrase_occurrences",
    "depluralize",
    "load_snapshot",
    "normalize_term",
    "save_snapshot",
    "tokenize_text",
]
