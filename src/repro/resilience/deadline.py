"""Request deadlines with cooperative cancellation.

A :class:`Deadline` is created once at the edge of a request (the HTTP
front end's ``?timeout_ms=``, or ``EngineConfig(request_timeout_ms=)``
for any direct :class:`~repro.sqlengine.database.Database` /
:class:`~repro.core.soda.Soda` caller) and installed thread-locally via
:func:`deadline_scope` — the same pattern the tracer uses
(:func:`repro.obs.tracing.current_tracer`), so layers that cannot be
handed a deadline explicitly read the *active* one with
:func:`current_deadline`.

Cancellation is **cooperative**: nothing is interrupted mid-operation.
Instead the long-running loops of the engine — pipeline step
boundaries, scan batch boundaries (row and vectorized), morsel
dispatch — call :meth:`Deadline.check` at natural safe points and raise
:class:`DeadlineExceeded` when the budget is spent.  The exception
unwinds through the ordinary ``with`` scopes (snapshot pins, undo
guards, tracer spans), so a timed-out request leaves the engine exactly
as consistent as a failed one, and the *next* request proceeds
normally.

The per-check cost matters on hot paths, so callers fetch the active
deadline once per operator/loop (``deadline = current_deadline()``)
and skip all checks when it is None — an undeadlined query pays one
thread-local read per operator, nothing per batch.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import perf_counter

from repro.errors import ReproError

__all__ = [
    "Deadline",
    "DeadlineExceeded",
    "current_deadline",
    "deadline_scope",
]


class DeadlineExceeded(ReproError):
    """A request ran past its deadline and was cooperatively unwound.

    Structured for the wire: :attr:`timeout_ms` is the budget,
    :attr:`elapsed_ms` how long the request had been running when the
    check fired, and :attr:`where` names the checkpoint that noticed
    (``"step:execute"``, ``"scan"``, ``"morsel"``, ...).
    """

    def __init__(
        self,
        message: str,
        timeout_ms: float = 0.0,
        elapsed_ms: float = 0.0,
        where: str = "",
    ) -> None:
        super().__init__(message)
        self.timeout_ms = timeout_ms
        self.elapsed_ms = elapsed_ms
        self.where = where


class Deadline:
    """A monotonic time budget for one request.

    ``clock`` is injectable (seconds, monotonic) so tests can drive a
    deadline over the edge without sleeping.

    >>> ticks = iter([0.0, 0.05, 0.2]).__next__
    >>> deadline = Deadline(100, clock=ticks)
    >>> deadline.expired  # 50ms in
    False
    >>> deadline.expired  # 200ms in
    True
    """

    __slots__ = ("timeout_ms", "_clock", "_started", "_expires")

    def __init__(self, timeout_ms: float, clock=perf_counter) -> None:
        if not isinstance(timeout_ms, (int, float)) or timeout_ms <= 0:
            raise ValueError(
                f"timeout_ms must be a positive number, got {timeout_ms!r}"
            )
        self.timeout_ms = float(timeout_ms)
        self._clock = clock
        self._started = clock()
        self._expires = self._started + self.timeout_ms / 1000.0

    def elapsed_ms(self) -> float:
        """Milliseconds since the deadline was created."""
        return (self._clock() - self._started) * 1000.0

    def remaining_ms(self) -> float:
        """Milliseconds left in the budget (never negative)."""
        return max(0.0, (self._expires - self._clock()) * 1000.0)

    @property
    def expired(self) -> bool:
        return self._clock() >= self._expires

    def check(self, where: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        now = self._clock()
        if now >= self._expires:
            elapsed = (now - self._started) * 1000.0
            raise DeadlineExceeded(
                f"request exceeded its {self.timeout_ms:g}ms deadline "
                f"after {elapsed:.1f}ms"
                + (f" (at {where})" if where else ""),
                timeout_ms=self.timeout_ms,
                elapsed_ms=elapsed,
                where=where,
            )


# like the active tracer, the active deadline is per-thread: concurrent
# serving runs many requests at once and a deadline must only ever
# cancel its own request
_ACTIVE = threading.local()


def current_deadline() -> "Deadline | None":
    """The deadline cooperative checkpoints should honour right now."""
    return getattr(_ACTIVE, "deadline", None)


@contextmanager
def deadline_scope(deadline: "Deadline | None"):
    """Install *deadline* as this thread's active deadline for the block.

    ``deadline_scope(None)`` is a true no-op scope (the previous
    deadline, if any, stays active), so callers can wrap
    unconditionally.  Scopes nest; the innermost installed deadline
    wins, and the previous one is restored on exit.
    """
    if deadline is None:
        yield None
        return
    previous = getattr(_ACTIVE, "deadline", None)
    _ACTIVE.deadline = deadline
    try:
        yield deadline
    finally:
        _ACTIVE.deadline = previous
