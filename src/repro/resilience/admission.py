"""Admission control + load shedding for the asyncio front end.

The server's engine pool can run ``max_concurrent`` requests at once;
beyond that, up to ``queue_depth`` requests may *wait* — but only for
``queue_timeout_ms``.  Everything else is **shed immediately** with a
:class:`LoadShedError` (the HTTP layer maps it to 429 + ``Retry-After``)
instead of piling unbounded tasks onto the event loop, which is what
keeps accepted-request latency bounded under a saturating burst: the
worst case an accepted request ever sees is the queue wait plus one
pool slot's worth of service time, no matter how hard clients hammer.

The controller is asyncio-native (the wait happens on the event loop,
holding no thread) and must be used from the loop thread only.
"""

from __future__ import annotations

import asyncio

from repro.errors import ReproError
from repro.obs.metrics import registry as _metrics_registry

__all__ = ["AdmissionController", "LoadShedError"]

_METRICS = _metrics_registry()
_SHED = _METRICS.counter("serving.admission.shed")
_ADMITTED = _METRICS.counter("serving.admission.admitted")
_QUEUE_SECONDS = _METRICS.histogram("serving.admission.queue_wait.seconds")


class LoadShedError(ReproError):
    """The server refused the request to protect itself.

    :attr:`reason` is ``"queue_full"`` (the bounded queue was already
    at depth) or ``"queue_timeout"`` (the request waited its whole
    queue budget without a slot freeing up); :attr:`retry_after_s` is
    the hint clients get in the ``Retry-After`` header.
    """

    def __init__(
        self, message: str, reason: str = "queue_full",
        retry_after_s: float = 1.0,
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.retry_after_s = retry_after_s


class AdmissionController:
    """A bounded concurrency gate with a bounded, deadlined queue."""

    def __init__(
        self,
        max_concurrent: int = 4,
        queue_depth: int = 16,
        queue_timeout_ms: float = 1000.0,
    ) -> None:
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if queue_depth < 0:
            raise ValueError("queue_depth must be >= 0")
        if queue_timeout_ms <= 0:
            raise ValueError("queue_timeout_ms must be > 0")
        self.max_concurrent = max_concurrent
        self.queue_depth = queue_depth
        self.queue_timeout_ms = queue_timeout_ms
        self._slots = asyncio.Semaphore(max_concurrent)
        self._active = 0
        self._waiting = 0
        self._shed = 0
        self._admitted = 0

    # ------------------------------------------------------------------
    async def acquire(self) -> None:
        """Admit the caller or raise :class:`LoadShedError`.

        The fast path (a free slot) never touches the queue counters.
        """
        if self._active < self.max_concurrent and self._waiting == 0:
            # free slot and nobody queued ahead: admit immediately
            await self._slots.acquire()
            self._active += 1
            self._admitted += 1
            if _METRICS.enabled:
                _ADMITTED.inc()
            return
        if self._waiting >= self.queue_depth:
            self._shed += 1
            if _METRICS.enabled:
                _SHED.inc()
            raise LoadShedError(
                f"admission queue full ({self.queue_depth} waiting); "
                "load shed",
                reason="queue_full",
                retry_after_s=self.queue_timeout_ms / 1000.0,
            )
        self._waiting += 1
        loop = asyncio.get_running_loop()
        started = loop.time()
        try:
            await asyncio.wait_for(
                self._slots.acquire(), timeout=self.queue_timeout_ms / 1000.0
            )
        except asyncio.TimeoutError:
            self._shed += 1
            if _METRICS.enabled:
                _SHED.inc()
            raise LoadShedError(
                f"no slot freed within the {self.queue_timeout_ms:g}ms "
                "queue-wait deadline; load shed",
                reason="queue_timeout",
                retry_after_s=self.queue_timeout_ms / 1000.0,
            ) from None
        finally:
            self._waiting -= 1
        self._active += 1
        self._admitted += 1
        if _METRICS.enabled:
            _ADMITTED.inc()
            _QUEUE_SECONDS.observe(loop.time() - started)

    def release(self) -> None:
        self._active -= 1
        self._slots.release()

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Point-in-time occupancy for ``/healthz``."""
        return {
            "max_concurrent": self.max_concurrent,
            "queue_depth": self.queue_depth,
            "queue_timeout_ms": self.queue_timeout_ms,
            "active": self._active,
            "waiting": self._waiting,
            "admitted": self._admitted,
            "shed": self._shed,
        }
