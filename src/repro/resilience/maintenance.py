"""Supervised background maintenance with retry/backoff.

ROADMAP item 1 leaves index rebuilds and statistics refreshes on the
request path; this module moves them onto a supervised worker thread.
A :class:`MaintenanceRunner` owns named tasks (plain callables), runs
each on its own interval, and — crucially for a serving process —
**keeps running** when a task throws: the failure is recorded, the task
is retried with exponential backoff plus deterministic jitter (a seeded
RNG, so tests replay exactly), and one success resets the schedule.

Shutdown is clean and prompt: ``stop()`` wakes the worker, waits for
the in-flight task (if any) to finish, and joins with a timeout, so a
server drain never hangs on maintenance.
"""

from __future__ import annotations

import logging
import random
import threading
from time import monotonic, perf_counter

from repro.obs.metrics import registry as _metrics_registry

__all__ = ["MaintenanceRunner", "RetryPolicy"]

_LOG = logging.getLogger("repro.resilience.maintenance")

_METRICS = _metrics_registry()
_RUNS = _METRICS.counter("maintenance.runs")
_FAILURES = _METRICS.counter("maintenance.failures")
_TASK_SECONDS = _METRICS.histogram("maintenance.task.seconds")


class RetryPolicy:
    """Exponential backoff with multiplicative jitter.

    ``delay(n)`` for the *n*-th consecutive failure (n >= 1) is
    ``base_s * multiplier**(n-1)`` capped at ``max_s``, scaled by a
    jitter factor drawn uniformly from ``[1 - jitter, 1 + jitter]``
    from a **seeded** RNG — deterministic backoff sequences in tests,
    de-synchronised retries in production (pass a random seed).

    >>> policy = RetryPolicy(base_s=1.0, max_s=30.0, jitter=0.0)
    >>> [policy.delay(n) for n in (1, 2, 3, 6)]
    [1.0, 2.0, 4.0, 30.0]
    """

    def __init__(
        self,
        base_s: float = 1.0,
        max_s: float = 60.0,
        multiplier: float = 2.0,
        jitter: float = 0.1,
        seed: int = 0,
    ) -> None:
        if base_s <= 0 or max_s < base_s or multiplier < 1 or jitter < 0:
            raise ValueError("invalid retry policy parameters")
        self.base_s = base_s
        self.max_s = max_s
        self.multiplier = multiplier
        self.jitter = jitter
        self._rng = random.Random(seed)

    def delay(self, consecutive_failures: int) -> float:
        exponent = max(0, consecutive_failures - 1)
        raw = min(self.max_s, self.base_s * self.multiplier**exponent)
        if not self.jitter:
            return raw
        return raw * self._rng.uniform(1 - self.jitter, 1 + self.jitter)


class _Task:
    __slots__ = (
        "name", "fn", "interval_s", "policy", "next_run", "runs",
        "failures", "consecutive_failures", "last_error", "last_delay_s",
    )

    def __init__(self, name, fn, interval_s, policy, now) -> None:
        self.name = name
        self.fn = fn
        self.interval_s = interval_s
        self.policy = policy
        self.next_run = now + interval_s
        self.runs = 0
        self.failures = 0
        self.consecutive_failures = 0
        self.last_error: "str | None" = None
        self.last_delay_s = 0.0


class MaintenanceRunner:
    """Run named maintenance tasks off the request path, supervised."""

    def __init__(self, clock=monotonic) -> None:
        self._clock = clock
        self._tasks: dict = {}
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._stopping = threading.Event()
        self._thread: "threading.Thread | None" = None

    # ------------------------------------------------------------------
    def add_task(
        self,
        name: str,
        fn,
        interval_s: float,
        policy: "RetryPolicy | None" = None,
    ) -> None:
        """Register *fn* to run every ``interval_s`` seconds."""
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        with self._lock:
            if name in self._tasks:
                raise ValueError(f"maintenance task {name!r} already exists")
            self._tasks[name] = _Task(
                name, fn, interval_s, policy or RetryPolicy(), self._clock()
            )
        self._wake.set()

    # ------------------------------------------------------------------
    def run_task_now(self, name: str) -> bool:
        """Run one task synchronously (tests, warm-up); True on success."""
        with self._lock:
            task = self._tasks[name]
        return self._run(task)

    def _run(self, task: _Task) -> bool:
        started = perf_counter()
        try:
            task.fn()
        except Exception as exc:  # noqa: BLE001 - supervision is the point
            now = self._clock()
            with self._lock:
                task.failures += 1
                task.consecutive_failures += 1
                task.last_error = f"{type(exc).__name__}: {exc}"
                task.last_delay_s = task.policy.delay(
                    task.consecutive_failures
                )
                task.next_run = now + task.last_delay_s
            if _METRICS.enabled:
                _FAILURES.inc()
            _LOG.warning(
                "maintenance task %s failed (attempt %d, retry in %.2fs): %s",
                task.name, task.consecutive_failures, task.last_delay_s, exc,
            )
            return False
        now = self._clock()
        with self._lock:
            task.runs += 1
            task.consecutive_failures = 0
            task.last_error = None
            task.last_delay_s = 0.0
            task.next_run = now + task.interval_s
        if _METRICS.enabled:
            _RUNS.inc()
            _TASK_SECONDS.observe(perf_counter() - started)
        return True

    # ------------------------------------------------------------------
    def _due(self) -> "tuple[_Task | None, float]":
        """(the next due task or None, seconds until something is due)."""
        now = self._clock()
        soonest = None
        with self._lock:
            for task in self._tasks.values():
                if task.next_run <= now:
                    return task, 0.0
                if soonest is None or task.next_run < soonest:
                    soonest = task.next_run
        if soonest is None:
            return None, 3600.0
        return None, max(0.0, soonest - now)

    def _loop(self) -> None:
        while not self._stopping.is_set():
            task, wait = self._due()
            if task is not None:
                self._run(task)
                continue
            self._wake.wait(timeout=min(wait, 0.5))
            self._wake.clear()

    # ------------------------------------------------------------------
    def start(self) -> "MaintenanceRunner":
        """Start the worker thread (idempotent)."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return self
            self._stopping.clear()
            self._thread = threading.Thread(
                target=self._loop, name="soda-maintenance", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> bool:
        """Stop the worker; True once it has joined (idempotent)."""
        self._stopping.set()
        self._wake.set()
        with self._lock:
            thread = self._thread
        if thread is None:
            return True
        thread.join(timeout=timeout)
        stopped = not thread.is_alive()
        if stopped:
            with self._lock:
                self._thread = None
        return stopped

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Per-task supervision state (for ``/healthz`` and tests)."""
        now = self._clock()
        with self._lock:
            return {
                name: {
                    "interval_s": task.interval_s,
                    "runs": task.runs,
                    "failures": task.failures,
                    "consecutive_failures": task.consecutive_failures,
                    "last_error": task.last_error,
                    "backoff_s": round(task.last_delay_s, 3),
                    "next_run_in_s": round(max(0.0, task.next_run - now), 3),
                }
                for name, task in self._tasks.items()
            }
