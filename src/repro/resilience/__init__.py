"""Serving resilience: deadlines, shedding, breaker, maintenance.

The building blocks that keep the serving stack (``repro serve``)
standing under real traffic:

* :mod:`repro.resilience.deadline` — request deadlines with cooperative
  cancellation at pipeline/batch/morsel boundaries;
* :mod:`repro.resilience.admission` — a bounded admission queue that
  sheds excess load instead of queueing unboundedly;
* :mod:`repro.resilience.breaker` — a circuit breaker that fast-fails
  while the engine is unhealthy and probes its way back;
* :mod:`repro.resilience.maintenance` — supervised background tasks
  (stats refresh, index-snapshot saves) with retry + backoff;
* :mod:`repro.resilience.faults` — deterministic serving-path fault
  injection, so every behaviour above is provoked on demand in tests.
"""

from repro.resilience.admission import AdmissionController, LoadShedError
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.deadline import (
    Deadline,
    DeadlineExceeded,
    current_deadline,
    deadline_scope,
)
from repro.resilience.faults import InjectedServingFault, ServingFaultInjector
from repro.resilience.maintenance import MaintenanceRunner, RetryPolicy

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "InjectedServingFault",
    "LoadShedError",
    "MaintenanceRunner",
    "RetryPolicy",
    "ServingFaultInjector",
    "current_deadline",
    "deadline_scope",
]
