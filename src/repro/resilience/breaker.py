"""A circuit breaker for the serving path.

Consecutive *engine* failures (unexpected exceptions out of the search
pipeline or the SQL engine — not client errors, which prove the engine
is answering) trip the breaker **open**: requests fast-fail with 503
instead of queueing onto a broken engine.  After ``cooldown_s`` the
breaker goes **half-open** and admits one probe request at a time; a
probe success closes the breaker, a probe failure re-opens it for
another cooldown.

The class is engine-agnostic and thread-safe: ``allow()`` is called
before the work, then exactly one of ``record_success()`` /
``record_failure()`` / ``record_abandoned()`` after it — the last for
work that was admitted but never reached the engine (deadline spent in
the queue, load shed, bad request parameters), which says nothing
about engine health but must still release a half-open probe slot.
The clock is injectable so tests step through cooldowns without
sleeping.
"""

from __future__ import annotations

import threading
from time import monotonic

from repro.obs.metrics import registry as _metrics_registry

__all__ = ["CircuitBreaker"]

_METRICS = _metrics_registry()
_OPENED = _METRICS.counter("serving.breaker.opened")
_FAST_FAILURES = _METRICS.counter("serving.breaker.fast_failures")
_STATE_GAUGE = _METRICS.gauge("serving.breaker.state")

#: gauge encoding of the three states (0 is healthy on dashboards)
_STATE_CODES = {"closed": 0, "half_open": 1, "open": 2}


class CircuitBreaker:
    """Trip after ``failure_threshold`` consecutive failures.

    >>> ticks = iter([float(i) for i in range(10)]).__next__
    >>> breaker = CircuitBreaker(failure_threshold=2, cooldown_s=100,
    ...                          clock=ticks)
    >>> breaker.record_failure(); breaker.record_failure()
    >>> breaker.state
    'open'
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_s: float = 5.0,
        clock=monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s <= 0:
            raise ValueError("cooldown_s must be > 0")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        #: True while a half-open probe is in flight (one at a time)
        self._probing = False

    # ------------------------------------------------------------------
    def _tick(self, now: float) -> None:
        """Open -> half-open transition (call with the lock held)."""
        if self._state == "open" and now - self._opened_at >= self.cooldown_s:
            self._state = "half_open"
            self._probing = False
            self._publish()

    def _publish(self) -> None:
        if _METRICS.enabled:
            _STATE_GAUGE.set(_STATE_CODES[self._state])

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May a request proceed right now?

        Closed: always.  Open: no (fast-fail) until the cooldown lapses.
        Half-open: one probe at a time; the rest keep fast-failing until
        the probe reports back.
        """
        with self._lock:
            now = self._clock()
            self._tick(now)
            if self._state == "closed":
                return True
            if self._state == "half_open" and not self._probing:
                self._probing = True
                return True
            if _METRICS.enabled:
                _FAST_FAILURES.inc()
            return False

    def record_success(self) -> None:
        """The admitted work completed: close (and reset) the breaker."""
        with self._lock:
            self._state = "closed"
            self._consecutive_failures = 0
            self._probing = False
            self._publish()

    def record_abandoned(self) -> None:
        """The admitted work never reached the engine: no verdict.

        Deadline exhaustion, load shedding, or a bad parameter between
        ``allow()`` and the engine call says nothing about engine
        health, but a half-open probe slot claimed by ``allow()`` must
        still be released or the breaker wedges with ``_probing`` stuck
        True and every future ``allow()`` returning False.  State and
        the failure count are untouched; calling this after a real
        record is harmless (the record already cleared the probe flag).
        """
        with self._lock:
            self._probing = False

    def record_failure(self) -> None:
        """The admitted work failed: count it; trip when over threshold."""
        with self._lock:
            self._consecutive_failures += 1
            tripped = (
                self._state == "half_open"
                or self._consecutive_failures >= self.failure_threshold
            )
            self._probing = False
            if tripped and self._state != "open":
                self._state = "open"
                self._opened_at = self._clock()
                if _METRICS.enabled:
                    _OPENED.inc()
            elif tripped:
                # already open (e.g. two probes raced): restart cooldown
                self._opened_at = self._clock()
            self._publish()

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """``"closed"`` | ``"half_open"`` | ``"open"`` (cooldown-aware)."""
        with self._lock:
            self._tick(self._clock())
            return self._state

    def retry_after_s(self) -> float:
        """Seconds until an open breaker will accept a probe (0 if not open)."""
        with self._lock:
            if self._state != "open":
                return 0.0
            return max(0.0, self.cooldown_s - (self._clock() - self._opened_at))

    def snapshot(self) -> dict:
        """The observable state for ``/healthz`` (one consistent read)."""
        with self._lock:
            self._tick(self._clock())
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "cooldown_s": self.cooldown_s,
                "retry_after_s": round(
                    max(
                        0.0,
                        self.cooldown_s - (self._clock() - self._opened_at),
                    )
                    if self._state == "open"
                    else 0.0,
                    3,
                ),
            }
