"""Deterministic fault injection for the serving path.

The PR-8 :class:`~repro.sqlengine.txn.faults.FaultInjector` proved the
durability stack by killing the write path at every byte offset; this
is the same idea one layer up.  A :class:`ServingFaultInjector` is
handed to :class:`~repro.server.SodaServer` and consulted at the top of
every engine call, so tests can *provoke* each resilience behaviour on
demand instead of hoping a race shows up:

* ``fail_requests(n)`` — the next *n* engine calls raise (default
  :class:`InjectedServingFault`), which is exactly what trips the
  circuit breaker;
* ``delay_s`` — every engine call first sleeps, turning a fast test
  engine into a slow one (saturation for the admission queue, budget
  exhaustion for request deadlines).

Both knobs are thread-safe (engine calls run on the server's worker
pool) and can be changed while the server runs.
"""

from __future__ import annotations

import threading
import time

__all__ = ["InjectedServingFault", "ServingFaultInjector"]


class InjectedServingFault(RuntimeError):
    """The stand-in engine failure tests inject (an 'unexpected' error)."""


class ServingFaultInjector:
    """Injectable delays and failures for `SodaServer` engine calls."""

    def __init__(self, delay_s: float = 0.0) -> None:
        self._lock = threading.Lock()
        self.delay_s = delay_s
        self._pending_failures = 0
        self._exception_factory = InjectedServingFault
        #: engine calls that passed through (delayed or not)
        self.calls = 0
        #: engine calls that were failed by injection
        self.failures_injected = 0

    # ------------------------------------------------------------------
    def fail_requests(
        self, count: int, exception_factory=InjectedServingFault
    ) -> None:
        """Make the next *count* engine calls raise."""
        with self._lock:
            self._pending_failures = count
            self._exception_factory = exception_factory

    def set_delay(self, delay_s: float) -> None:
        with self._lock:
            self.delay_s = delay_s

    # ------------------------------------------------------------------
    def before_engine_call(self, what: str = "search") -> None:
        """Called by the server just before running engine work."""
        with self._lock:
            self.calls += 1
            delay = self.delay_s
            fail = self._pending_failures > 0
            if fail:
                self._pending_failures -= 1
                self.failures_injected += 1
                factory = self._exception_factory
        if delay:
            time.sleep(delay)
        if fail:
            raise factory(f"injected {what} fault")
