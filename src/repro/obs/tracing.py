"""Hierarchical tracing: nested spans over one search/SQL request.

A :class:`Tracer` produces :class:`Span` objects used as context
managers; entering a span attaches it under the currently-open span (or
as a root), so the paper's pipeline decomposition — search → pipeline
step → plan/cache lookup → operator execute — falls out of the call
structure with no bookkeeping at the call sites::

    tracer = Tracer()
    with tracer.span("search", query=text):
        with tracer.span("step:lookup"):
            ...

The span *tree* (names, nesting, order) is fully deterministic for a
given query; only the recorded wall-clock durations vary run to run.
:meth:`Tracer.tree` exposes exactly the deterministic part, which is
what the tests lock.

When tracing is off the shared :data:`NULL_TRACER` is used instead: its
``span()`` returns one preallocated no-op span, so an untraced request
allocates nothing and pays only a couple of attribute lookups.

Instrumented layers that cannot be handed a tracer explicitly (the SQL
planner below ``Soda.search``) read the *active* tracer via
:func:`current_tracer`; :func:`activate` installs one for a ``with``
block.  The active tracer is **per-thread** (``threading.local``) so
the concurrent serving layer can trace one request without its spans
bleeding into searches running on neighbouring threads.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from time import perf_counter


class Span:
    """One timed node of a trace tree (use as a context manager)."""

    __slots__ = ("name", "attributes", "children", "elapsed", "_tracer",
                 "_started")

    def __init__(self, tracer: "Tracer", name: str, attributes: dict) -> None:
        self.name = name
        self.attributes = attributes
        self.children: list = []
        #: wall-clock seconds between enter and exit (0.0 while open)
        self.elapsed = 0.0
        self._tracer = tracer
        self._started = 0.0

    def set(self, **attributes) -> None:
        """Attach attributes to an open span (e.g. ``cache="hit"``)."""
        self.attributes.update(attributes)

    def __enter__(self) -> "Span":
        tracer = self._tracer
        stack = tracer._stack
        (stack[-1].children if stack else tracer.roots).append(self)
        stack.append(self)
        self._started = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.elapsed = perf_counter() - self._started
        self._tracer._stack.pop()
        return False

    # ------------------------------------------------------------------
    def tree(self) -> tuple:
        """The deterministic shape: ``(name, (child trees...))``."""
        return self.name, tuple(child.tree() for child in self.children)

    def to_dict(self, timings: bool = True) -> dict:
        """A JSON-ready dict; ``timings=False`` drops the elapsed_ms."""
        out: dict = {"name": self.name}
        if self.attributes:
            out["attributes"] = {
                key: self.attributes[key] for key in sorted(self.attributes)
            }
        if timings:
            out["elapsed_ms"] = round(self.elapsed * 1000.0, 3)
        if self.children:
            out["children"] = [
                child.to_dict(timings=timings) for child in self.children
            ]
        return out


class Tracer:
    """Collects one request's span tree; re-usable across requests."""

    enabled = True

    def __init__(self) -> None:
        self.roots: list = []
        self._stack: list = []

    def span(self, name: str, **attributes) -> Span:
        """A new (not yet entered) span; attach it with ``with``."""
        return Span(self, name, attributes)

    # ------------------------------------------------------------------
    # exports
    # ------------------------------------------------------------------
    def tree(self) -> tuple:
        """Deterministic shapes of all root spans."""
        return tuple(span.tree() for span in self.roots)

    def to_dict(self, timings: bool = True) -> list:
        return [span.to_dict(timings=timings) for span in self.roots]

    def to_json(self, timings: bool = True, indent: int = 2) -> str:
        return json.dumps(
            self.to_dict(timings=timings), indent=indent, sort_keys=False
        )

    def render(self) -> str:
        """The span tree as an indented text tree with durations."""
        lines: list = []
        for span in self.roots:
            _render_span(span, prefix="", connector="", lines=lines)
        return "\n".join(lines)


def _render_span(span: Span, prefix: str, connector: str, lines: list) -> None:
    label = span.name
    if span.attributes:
        rendered = ", ".join(
            f"{key}={span.attributes[key]!r}" for key in sorted(span.attributes)
        )
        label += f" [{rendered}]"
    lines.append(f"{prefix}{connector}{label}  {span.elapsed * 1000.0:.3f}ms")
    children = span.children
    if not children:
        return
    if connector == "":
        child_prefix = prefix
    elif connector.startswith("├"):
        child_prefix = prefix + "│  "
    else:
        child_prefix = prefix + "   "
    for index, child in enumerate(children):
        last = index == len(children) - 1
        _render_span(child, child_prefix, "└─ " if last else "├─ ", lines)


class _NullSpan:
    """The shared do-nothing span; every no-op call lands here."""

    __slots__ = ()

    def set(self, **attributes) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracing: ``span()`` hands back one preallocated no-op."""

    __slots__ = ()
    enabled = False

    def span(self, name: str, **attributes) -> _NullSpan:
        return _NULL_SPAN


#: the process-wide disabled tracer (a singleton; never collects)
NULL_TRACER = NullTracer()

# the active tracer is per-thread: concurrent serving runs several
# searches at once, and a traced request must never leak its spans into
# (or collect spans from) a neighbouring thread's query
_ACTIVE = threading.local()


def current_tracer():
    """The tracer instrumented layers should emit into right now."""
    return getattr(_ACTIVE, "tracer", NULL_TRACER)


@contextmanager
def activate(tracer):
    """Install *tracer* as this thread's active tracer for the block."""
    previous = getattr(_ACTIVE, "tracer", NULL_TRACER)
    _ACTIVE.tracer = tracer
    try:
        yield tracer
    finally:
        _ACTIVE.tracer = previous
