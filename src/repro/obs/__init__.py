"""Unified observability: hierarchical tracing and a metrics registry.

Everything the stack reports about itself flows through this package:

* :mod:`repro.obs.tracing` — nested :class:`Span` trees produced by a
  :class:`Tracer` (``Soda.search(trace=True)``, ``repro trace``),
  renderable as a deterministic text tree or JSON;
* :mod:`repro.obs.metrics` — the process-wide :class:`MetricsRegistry`
  of named counters/gauges/histograms every layer emits into
  (``Database.metrics()``, ``repro stats --metrics``), dumpable as JSON
  or Prometheus text.

Both are engineered to cost (almost) nothing when idle: the null tracer
is a shared singleton whose spans are no-ops, and hot-path metric
emission sites check one ``registry().enabled`` flag.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
)
from repro.obs.tracing import (
    NULL_TRACER,
    Span,
    Tracer,
    activate,
    current_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "activate",
    "current_tracer",
    "registry",
]
