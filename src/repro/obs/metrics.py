"""The process-wide metrics registry: named counters, gauges, histograms.

Every layer of the stack emits into one :class:`MetricsRegistry`
(reached via :func:`registry`): the plan cache its hits/misses, the
physical operators their rows scanned/filtered/joined, the index
maintainer its applied ops, the pipeline its per-step latencies.  A
metric is created on first use and lives for the life of the process;
:meth:`MetricsRegistry.to_dict` and
:meth:`MetricsRegistry.render_prometheus` snapshot all of them for
``Database.metrics()`` / ``repro stats --metrics``.

Hot-path cost discipline: emission sites *cache the metric handle*
(``self._rows_scanned = registry().counter("engine.rows_scanned")``)
and guard per-batch emission with the registry's single ``enabled``
flag, so a disabled registry costs one attribute check per batch, not
per row.  :meth:`MetricsRegistry.reset` zeroes values in place — the
cached handles stay valid.
"""

from __future__ import annotations

import json


class Counter:
    """A monotonically increasing count (events, rows, hits)."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def _reset(self) -> None:
        self.value = 0

    def _snapshot(self):
        return self.value


class Gauge:
    """A value that goes up and down (cache entries, open sessions)."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def _reset(self) -> None:
        self.value = 0.0

    def _snapshot(self):
        return self.value


class Histogram:
    """A streaming summary of observations (latencies, row counts).

    Keeps count/sum/min/max — enough for the mean and the extremes
    without storing samples.  Percentile sketches can slot in behind the
    same ``observe`` API when the serving work needs p50/p99.
    """

    __slots__ = ("name", "count", "sum", "min", "max")
    kind = "histogram"

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def _reset(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    def _snapshot(self):
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Get-or-create home for every named metric in the process."""

    def __init__(self, enabled: bool = True) -> None:
        #: hot-path emitters check this one flag before touching handles
        self.enabled = enabled
        self._metrics: dict = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {cls.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def reset(self) -> None:
        """Zero every metric in place (handles cached by emitters survive)."""
        for metric in self._metrics.values():
            metric._reset()

    # ------------------------------------------------------------------
    # exports
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """``{name: {"kind": ..., "value": ...}}``, sorted by name."""
        return {
            name: {"kind": metric.kind, "value": metric._snapshot()}
            for name, metric in sorted(self._metrics.items())
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render_prometheus(self) -> str:
        """Prometheus text exposition (``repro_`` prefix, dots → ``_``)."""
        lines: list = []
        for name, metric in sorted(self._metrics.items()):
            flat = "repro_" + name.replace(".", "_").replace("-", "_")
            lines.append(f"# TYPE {flat} {_PROM_TYPE[metric.kind]}")
            if metric.kind == "histogram":
                lines.append(f"{flat}_count {_prom_value(metric.count)}")
                lines.append(f"{flat}_sum {_prom_value(metric.sum)}")
            else:
                lines.append(f"{flat} {_prom_value(metric.value)}")
        return "\n".join(lines) + ("\n" if lines else "")


_PROM_TYPE = {"counter": "counter", "gauge": "gauge", "histogram": "summary"}


def _prom_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide registry every layer emits into."""
    return _REGISTRY
