"""Exception hierarchy for the SODA reproduction.

All library exceptions derive from :class:`ReproError` so that callers can
catch everything raised by this package with a single ``except`` clause
while still being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this package."""


class GraphError(ReproError):
    """Raised for invalid metadata-graph operations."""


class PatternError(GraphError):
    """Raised when a graph pattern is malformed or cannot be parsed."""


class SqlError(ReproError):
    """Base class for relational-engine errors."""


class SqlSyntaxError(SqlError):
    """Raised when a SQL statement cannot be lexed or parsed."""


class SqlCatalogError(SqlError):
    """Raised for unknown tables/columns or conflicting definitions."""


class SqlTypeError(SqlError):
    """Raised when an expression is applied to incompatible value types."""


class SqlExecutionError(SqlError):
    """Raised when a plan fails during execution."""


class QueryParseError(ReproError):
    """Raised when a SODA input query cannot be parsed."""


class LookupError_(ReproError):
    """Raised when the lookup step fails structurally.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`LookupError`.
    """


class WarehouseError(ReproError):
    """Raised for inconsistent warehouse model definitions."""


class EvaluationError(ReproError):
    """Raised when precision/recall evaluation cannot be computed."""
