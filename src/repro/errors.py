"""Exception hierarchy for the SODA reproduction.

All library exceptions derive from :class:`ReproError` so that callers can
catch everything raised by this package with a single ``except`` clause
while still being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this package."""


class GraphError(ReproError):
    """Raised for invalid metadata-graph operations."""


class PatternError(GraphError):
    """Raised when a graph pattern is malformed or cannot be parsed."""


class SqlError(ReproError):
    """Base class for relational-engine errors."""


class SqlSyntaxError(SqlError):
    """Raised when a SQL statement cannot be lexed or parsed."""


class SqlCatalogError(SqlError):
    """Raised for unknown tables/columns or conflicting definitions."""


class SqlTypeError(SqlError):
    """Raised when an expression is applied to incompatible value types."""


class SqlExecutionError(SqlError):
    """Raised when a plan fails during execution."""


class TransactionError(SqlError):
    """Raised for transaction-protocol misuse.

    Examples: ``BEGIN`` while a transaction is already open,
    ``COMMIT``/``ROLLBACK`` with none open, or DDL inside an explicit
    transaction (DDL is auto-commit only).
    """


class RecoveryError(ReproError):
    """Raised when a durable database cannot be recovered consistently.

    Structured: :attr:`path` names the file that failed and
    :attr:`kind` the failure class (``"checkpoint"``, ``"wal"``,
    ``"replay"``), so callers and tests can distinguish a torn
    checkpoint from mid-log corruption without parsing the message.
    Recovery either reproduces the last committed state exactly or
    raises this — it never half-applies.
    """

    def __init__(self, message: str, path: str = "", kind: str = "") -> None:
        super().__init__(message)
        self.path = path
        self.kind = kind


class QueryParseError(ReproError):
    """Raised when a SODA input query cannot be parsed."""


class LookupError_(ReproError):
    """Raised when the lookup step fails structurally.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`LookupError`.
    """


class WarehouseError(ReproError):
    """Raised for inconsistent warehouse model definitions."""


class SnapshotError(WarehouseError):
    """Raised when an index snapshot file cannot be read or is invalid.

    Structured: :attr:`path` is the snapshot file and :attr:`kind` the
    failure class (``"missing"``, ``"corrupt"``, ``"malformed"``,
    ``"version"``), so a truncated gzip, a bit-flipped payload and a
    stale stamp are distinguishable without string matching.  Subclasses
    :class:`WarehouseError` so existing soft-fallback callers keep
    working unchanged.
    """

    def __init__(self, message: str, path: str = "", kind: str = "") -> None:
        super().__init__(message)
        self.path = path
        self.kind = kind


class EvaluationError(ReproError):
    """Raised when precision/recall evaluation cannot be computed."""
