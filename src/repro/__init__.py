"""Reproduction of "SODA: Generating SQL for Business Users" (VLDB 2012).

Public API highlights:

>>> from repro import build_minibank, Soda
>>> warehouse = build_minibank(scale=0.2)
>>> soda = Soda(warehouse)
>>> result = soda.search("Sara Guttinger")
>>> result.best is not None
True
"""

from repro.core import (
    PrecisionRecall,
    SearchResult,
    ScoredStatement,
    Soda,
    SodaConfig,
    SodaQuery,
    compare_results,
    evaluate_sql,
    parse_query,
)
from repro.graph import Text, Triple, TripleStore, Vocab
from repro.sqlengine import Database, ResultSet
from repro.warehouse import (
    Warehouse,
    WarehouseDefinition,
    build_minibank,
)

__version__ = "1.0.0"

__all__ = [
    "Database",
    "PrecisionRecall",
    "ResultSet",
    "ScoredStatement",
    "SearchResult",
    "Soda",
    "SodaConfig",
    "SodaQuery",
    "Text",
    "Triple",
    "TripleStore",
    "Vocab",
    "Warehouse",
    "WarehouseDefinition",
    "__version__",
    "build_minibank",
    "compare_results",
    "evaluate_sql",
    "parse_query",
]
