"""Small concurrency primitives shared across the engine.

:class:`SharedRLock` exists because the storage layer now embeds locks
in objects the rest of the codebase treats as plain values — tables and
catalogs are deep-copied by the time-travel tests, pickled into
checkpoint fixtures, and so on.  A raw ``threading.RLock`` poisons
``copy.deepcopy`` / ``pickle`` for the whole object graph; this wrapper
copies as a *fresh, unlocked* lock while preserving sharing (two
objects holding the same lock before a deepcopy hold one shared lock
after it, via the deepcopy memo).
"""

from __future__ import annotations

import threading

__all__ = ["SharedRLock"]


class SharedRLock:
    """A reentrant lock that survives deepcopy and pickling.

    Semantics of the copy: brand new and unlocked — lock *state* is
    inherently tied to live threads and never meaningfully copyable.
    """

    __slots__ = ("_lock",)

    def __init__(self) -> None:
        self._lock = threading.RLock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        return self._lock.acquire(blocking, timeout)

    def release(self) -> None:
        self._lock.release()

    def __enter__(self) -> "SharedRLock":
        self._lock.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._lock.release()
        return False

    def __deepcopy__(self, memo: dict) -> "SharedRLock":
        clone = type(self)()
        memo[id(self)] = clone
        return clone

    def __getstate__(self) -> dict:
        return {}

    def __setstate__(self, state: dict) -> None:
        self._lock = threading.RLock()
