"""End-to-end experiment driver reproducing Tables 3 and 4.

For every workload query the runner executes the full SODA pipeline,
evaluates every produced statement against the gold standard, and
records the paper's measurements: best precision/recall, the counts of
results with P,R > 0 and P,R = 0, the query complexity, and the SODA
runtime vs. total (SQL-executing) runtime split.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.evaluation import PrecisionRecall, evaluate_sql
from repro.core.soda import Soda, SodaConfig
from repro.experiments.workload import WORKLOAD, ExperimentQuery
from repro.obs.metrics import registry as _metrics_registry
from repro.warehouse.minibank import build_minibank
from repro.warehouse.warehouse import Warehouse

_METRICS = _metrics_registry()
_QUERIES = _METRICS.counter("experiments.queries")
_SODA_SECONDS = _METRICS.histogram("experiments.soda.seconds")
_EXECUTE_SECONDS = _METRICS.histogram("experiments.execute.seconds")


@dataclass
class StatementOutcome:
    """Evaluation of one generated statement."""

    sql: str
    score: float
    metrics: PrecisionRecall
    disconnected: bool


@dataclass
class QueryOutcome:
    """Everything measured for one workload query (Tables 3 + 4)."""

    query: ExperimentQuery
    complexity: int
    statements: list
    soda_seconds: float
    execute_seconds: float
    step_timings: dict

    # ------------------------------------------------------------------
    @property
    def n_results(self) -> int:
        return len(self.statements)

    @property
    def best(self) -> PrecisionRecall:
        """Best statement by (precision, recall), the Table 3 headline."""
        if not self.statements:
            return PrecisionRecall(0.0, 0.0, 0, 0)
        ranked = sorted(
            (s.metrics for s in self.statements),
            key=lambda m: (m.precision, m.recall),
            reverse=True,
        )
        return ranked[0]

    @property
    def n_positive(self) -> int:
        return sum(1 for s in self.statements if s.metrics.is_positive)

    @property
    def n_zero(self) -> int:
        return self.n_results - self.n_positive


class ExperimentRunner:
    """Runs the 13-query workload against a warehouse."""

    def __init__(
        self,
        warehouse: Warehouse | None = None,
        config: SodaConfig | None = None,
        seed: int = 42,
        scale: float = 1.0,
    ) -> None:
        self.warehouse = warehouse or build_minibank(seed=seed, scale=scale)
        self.config = config or SodaConfig()
        self.soda = Soda(self.warehouse, self.config)

    # ------------------------------------------------------------------
    def run_query(self, query: ExperimentQuery) -> QueryOutcome:
        """Execute one workload query and evaluate all its statements."""
        started = time.perf_counter()
        result = self.soda.search(query.text, execute=False)
        soda_seconds = time.perf_counter() - started
        return self._evaluate(query, result, soda_seconds)

    def _evaluate(self, query: ExperimentQuery, result, soda_seconds) -> QueryOutcome:
        """Score one search result against the query's gold standard."""
        started = time.perf_counter()
        statements = []
        for scored in result.statements:
            metrics = evaluate_sql(
                self.warehouse.database,
                scored.sql,
                query.gold,
                estimated_rows=scored.estimated_rows,
                max_rows=self.config.max_execution_rows,
            )
            statements.append(
                StatementOutcome(
                    sql=scored.sql,
                    score=scored.score,
                    metrics=metrics,
                    disconnected=scored.disconnected,
                )
            )
        execute_seconds = time.perf_counter() - started

        if _METRICS.enabled:
            _QUERIES.inc()
            _SODA_SECONDS.observe(soda_seconds)
            _EXECUTE_SECONDS.observe(execute_seconds)

        return QueryOutcome(
            query=query,
            complexity=result.complexity,
            statements=statements,
            soda_seconds=soda_seconds,
            execute_seconds=execute_seconds,
            step_timings={
                "lookup": result.timings.lookup,
                "rank": result.timings.rank,
                "tables": result.timings.tables,
                "filters": result.timings.filters,
                "sql": result.timings.sql,
            },
        )

    def run_all(self, batch: bool = False) -> list:
        """Run the full Table 2 workload in order.

        With *batch*, the whole workload is served through
        :meth:`Soda.search_many` — one warm engine, shared lookup/join
        memos, deduplicated query texts — and each query's SODA time is
        its per-search pipeline total instead of a wall-clock split.
        """
        if not batch:
            return [self.run_query(query) for query in WORKLOAD]
        return self.run_batch(WORKLOAD)

    def run_batch(self, queries) -> list:
        """Serve *queries* (ExperimentQuery list) as one batch."""
        results = self.soda.search_many(
            [query.text for query in queries], execute=False
        )
        return [
            self._evaluate(query, result, result.timings.soda_total)
            for query, result in zip(queries, results)
        ]
