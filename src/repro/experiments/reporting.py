"""Paper-style table formatting for experiment outcomes."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.experiments.workload import PAPER_TABLE3, PAPER_TABLE4, WORKLOAD


def format_rows(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Fixed-width table rendering used by all benches."""
    string_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in string_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    header_line = "  ".join(
        header.ljust(widths[index]) for index, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in string_rows:
        lines.append(
            "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_table2() -> str:
    """Table 2: the experiment queries."""
    rows = [
        (query.qid, query.text, "".join(sorted(query.types)), query.comment[:60])
        for query in WORKLOAD
    ]
    return format_rows(("Q", "Keywords", "Types", "Comment"), rows)


def format_table3(outcomes: Sequence) -> str:
    """Table 3: precision/recall, with the paper's values alongside."""
    rows = []
    for outcome in outcomes:
        best = outcome.best
        paper = PAPER_TABLE3.get(outcome.query.qid)
        rows.append(
            (
                outcome.query.qid,
                f"{best.precision:.2f}",
                f"{best.recall:.2f}",
                outcome.n_positive,
                outcome.n_zero,
                f"{paper[0]:.2f}" if paper else "-",
                f"{paper[1]:.2f}" if paper else "-",
                paper[2] if paper else "-",
                paper[3] if paper else "-",
            )
        )
    return format_rows(
        (
            "Q", "P(best)", "R(best)", "#P,R>0", "#P,R=0",
            "paperP", "paperR", "paper>0", "paper=0",
        ),
        rows,
    )


def format_table4(outcomes: Sequence) -> str:
    """Table 4: complexity, result counts and runtimes."""
    rows = []
    for outcome in outcomes:
        paper = PAPER_TABLE4.get(outcome.query.qid)
        rows.append(
            (
                outcome.query.qid,
                outcome.complexity,
                outcome.n_results,
                f"{outcome.soda_seconds:.3f}",
                f"{outcome.execute_seconds:.3f}",
                paper[0] if paper else "-",
                paper[1] if paper else "-",
                f"{paper[2]:.2f}" if paper else "-",
                f"{paper[3]}min" if paper else "-",
            )
        )
    return format_rows(
        (
            "Q", "Cmplx", "#Res", "SODA(s)", "Exec(s)",
            "paperCmplx", "paper#Res", "paperSODA(s)", "paperTotal",
        ),
        rows,
    )


def format_table1(stats: dict, paper: dict | None = None) -> str:
    """Table 1: schema-graph complexity."""
    paper_defaults = {
        "conceptual_entities": 226,
        "conceptual_attributes": 985,
        "conceptual_relationships": 243,
        "logical_entities": 436,
        "logical_attributes": 2700,
        "logical_relationships": 254,
        "physical_tables": 472,
        "physical_columns": 3181,
    }
    paper = paper or paper_defaults
    rows = [
        (key, stats.get(key, "-"), paper.get(key, "-"))
        for key in paper_defaults
    ]
    return format_rows(("Type", "Cardinality", "Paper"), rows)
