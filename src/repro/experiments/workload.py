"""The experiment workload: Table 2 of the paper.

Thirteen queries (Q1.0 – Q10.0) with their SODA keyword text, the query
type tags used by Table 5 (B = base data, S = schema, D = domain
ontology, I = inheritance, P = predicates, A = aggregates), and the
hand-written gold-standard SQL against the finbank physical schema.

A gold standard may consist of several statements whose union is the
expected answer (the paper's Q5.0 gold is "two separate 3-way join
queries for private and corporate clients").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ExperimentQuery:
    """One row of Table 2."""

    qid: str
    text: str
    types: tuple  # subset of B, S, D, I, P, A
    gold: tuple  # one or more SQL statements (union semantics)
    comment: str

    def uses(self, type_tag: str) -> bool:
        return type_tag in self.types


WORKLOAD: tuple = (
    ExperimentQuery(
        qid="1.0",
        text="private customers family name",
        types=("D", "S", "I"),
        gold=(
            "SELECT individuals.family_nm FROM parties, individuals "
            "WHERE parties.id = individuals.id",
        ),
        comment=(
            "Customer domain ontology (D) combined with a schema attribute "
            "(S); needs the inheritance join (I)."
        ),
    ),
    ExperimentQuery(
        qid="2.1",
        text="Sara",
        types=("B", "I"),
        gold=(
            "SELECT individuals.id FROM parties, individuals, "
            "individual_name_hist WHERE parties.id = individuals.id "
            "AND individual_name_hist.indiv_id = individuals.id "
            "AND individual_name_hist.given_nm = 'Sara'",
        ),
        comment=(
            "Base data (B) as filter; the gold standard searches the "
            "bi-temporal name history (five Saras ever, one current)."
        ),
    ),
    ExperimentQuery(
        qid="2.2",
        text="Sara given name",
        types=("B", "S", "I"),
        gold=(
            "SELECT individuals.id FROM parties, individuals, "
            "individual_name_hist WHERE parties.id = individuals.id "
            "AND individual_name_hist.indiv_id = individuals.id "
            "AND individual_name_hist.given_nm = 'Sara'",
        ),
        comment="Q2.1 plus a restriction on the given-name attribute (S).",
    ),
    ExperimentQuery(
        qid="2.3",
        text="Sara birth date",
        types=("B", "S", "I"),
        gold=(
            "SELECT individuals.id, individuals.birth_dt FROM parties, "
            "individuals WHERE parties.id = individuals.id "
            "AND individuals.given_nm = 'Sara'",
        ),
        comment=(
            "The birth-date attribute focuses the query on the individuals "
            "snapshot table, where SODA's answer is exact."
        ),
    ),
    ExperimentQuery(
        qid="3.1",
        text="Credit Suisse",
        types=("B",),
        gold=(
            "SELECT organizations.id, organizations.org_nm FROM organizations "
            "WHERE organizations.org_nm = 'Credit Suisse'",
        ),
        comment="Credit Suisse as an organization (ambiguity case A).",
    ),
    ExperimentQuery(
        qid="3.2",
        text="Credit Suisse",
        types=("B",),
        gold=(
            "SELECT agreements_td.id, agreements_td.agreement_nm "
            "FROM agreements_td "
            "WHERE agreements_td.agreement_nm LIKE '%Credit Suisse%'",
        ),
        comment="Credit Suisse as part of an agreement (ambiguity case B).",
    ),
    ExperimentQuery(
        qid="4.0",
        text="gold agreement",
        types=("B", "S"),
        gold=(
            "SELECT agreements_td.id, agreements_td.agreement_nm "
            "FROM agreements_td, parties "
            "WHERE agreements_td.party_id = parties.id "
            "AND agreements_td.agreement_nm LIKE '%Gold%'",
        ),
        comment="Base-data filter matched with a schema entity (2-way join).",
    ),
    ExperimentQuery(
        qid="5.0",
        text="customers names",
        types=("D", "I"),
        gold=(
            "SELECT individuals.family_nm FROM parties, individuals "
            "WHERE parties.id = individuals.id",
            "SELECT organization_name_hist.org_nm FROM parties, organizations, "
            "organization_name_hist WHERE parties.id = organizations.id "
            "AND organization_name_hist.org_id = organizations.id "
            "AND organization_name_hist.valid_to_dt IS NULL",
        ),
        comment=(
            "Two separate queries for private and corporate clients; SODA "
            "produces one query through the sibling bridge (Fig. 10) and "
            "degrades."
        ),
    ),
    ExperimentQuery(
        qid="6.0",
        text="trade order period > date(2011-09-01)",
        types=("S", "P", "I"),
        gold=(
            "SELECT trade_orders.id, orders_td.order_period_dt "
            "FROM orders_td, trade_orders "
            "WHERE trade_orders.id = orders_td.id "
            "AND orders_td.order_period_dt > DATE '2011-09-01'",
        ),
        comment="Time-based range predicate (P) on a schema column (S).",
    ),
    ExperimentQuery(
        qid="7.0",
        text="YEN trade order",
        types=("B", "S", "I"),
        gold=(
            "SELECT trade_orders.id FROM orders_td, trade_orders, currencies "
            "WHERE trade_orders.id = orders_td.id "
            "AND trade_orders.currency_cd = currencies.currency_cd "
            "AND currencies.currency_cd = 'YEN' "
            "AND orders_td.status_cd = 'EXECUTED'",
        ),
        comment=(
            "The expert intent restricts to executed orders; SODA returns "
            "all YEN trade orders (half precision, full recall)."
        ),
    ),
    ExperimentQuery(
        qid="8.0",
        text="trade order investment product Lehman XYZ",
        types=("B", "S", "I"),
        gold=(
            "SELECT trade_orders.id, investment_products.product_nm "
            "FROM orders_td, trade_orders, investment_products "
            "WHERE trade_orders.id = orders_td.id "
            "AND trade_orders.instr_id = investment_products.id "
            "AND investment_products.product_nm LIKE '%Lehman XYZ%'",
        ),
        comment="Base data + schema, multi-way join incl. inheritance.",
    ),
    ExperimentQuery(
        qid="9.0",
        text="select count() private customers Switzerland",
        types=("B", "D", "A", "I"),
        gold=(
            "SELECT count(*) FROM parties, individuals, party_address, "
            "addresses WHERE parties.id = individuals.id "
            "AND party_address.party_id = parties.id "
            "AND party_address.adr_id = addresses.id "
            "AND addresses.country = 'Switzerland'",
        ),
        comment=(
            "The correct count goes through the party_address bridge; SODA "
            "joins the stale domicile foreign key and returns a wrong count."
        ),
    ),
    ExperimentQuery(
        qid="10.0",
        text="sum(investments) group by (currency)",
        types=("A", "S"),
        gold=(
            "SELECT sum(investments_td.amount), investments_td.currency_cd "
            "FROM investments_td GROUP BY investments_td.currency_cd",
        ),
        comment="Explicit aggregation and grouping via the product ontology.",
    ),
)


def query_by_id(qid: str) -> ExperimentQuery:
    """Look up a workload query by its Table 2 id."""
    for query in WORKLOAD:
        if query.qid == qid:
            return query
    raise KeyError(f"no experiment query with id {qid!r}")


#: Paper-reported values for EXPERIMENTS.md comparisons (Table 3 / Table 4).
PAPER_TABLE3: dict = {
    "1.0": (1.00, 1.00, 1, 0),
    "2.1": (1.00, 0.20, 1, 3),
    "2.2": (1.00, 0.20, 1, 1),
    "2.3": (1.00, 1.00, 1, 2),
    "3.1": (1.00, 1.00, 2, 4),
    "3.2": (1.00, 1.00, 3, 3),
    "4.0": (1.00, 1.00, 1, 3),
    "5.0": (0.12, 0.56, 1, 4),
    "6.0": (1.00, 1.00, 2, 0),
    "7.0": (0.50, 1.00, 1, 3),
    "8.0": (1.00, 1.00, 2, 2),
    "9.0": (0.00, 0.00, 0, 6),
    "10.0": (1.00, 1.00, 1, 5),
}

PAPER_TABLE4: dict = {
    # qid: (complexity, n_results, soda_runtime_sec, total_runtime_min)
    "1.0": (3, 1, 1.54, 6),
    "2.1": (4, 4, 0.81, 1),
    "2.2": (12, 2, 1.60, 3),
    "2.3": (12, 3, 1.69, 3),
    "3.1": (12, 6, 3.78, 2),
    "3.2": (12, 6, 3.78, 2),
    "4.0": (16, 4, 4.89, 4),
    "5.0": (4, 4, 1.24, 6),
    "6.0": (5, 2, 0.73, 1),
    "7.0": (20, 4, 4.94, 1),
    "8.0": (8, 4, 2.94, 2),
    "9.0": (30, 6, 7.31, 1),
    "10.0": (25, 6, 2.83, 40),
}
