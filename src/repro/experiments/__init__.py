"""Experiment workload, runner and reporting (Tables 1-5)."""

from repro.experiments.reporting import (
    format_rows,
    format_table1,
    format_table2,
    format_table3,
    format_table4,
)
from repro.experiments.runner import (
    ExperimentRunner,
    QueryOutcome,
    StatementOutcome,
)
from repro.experiments.synthetic_workload import (
    SyntheticQuery,
    build_synthetic_warehouse,
    generate_workload,
    run_scalability_study,
)
from repro.experiments.workload import (
    PAPER_TABLE3,
    PAPER_TABLE4,
    WORKLOAD,
    ExperimentQuery,
    query_by_id,
)

__all__ = [
    "ExperimentQuery",
    "ExperimentRunner",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "QueryOutcome",
    "StatementOutcome",
    "SyntheticQuery",
    "WORKLOAD",
    "build_synthetic_warehouse",
    "format_rows",
    "format_table1",
    "format_table2",
    "format_table3",
    "format_table4",
    "generate_workload",
    "query_by_id",
    "run_scalability_study",
]
