"""Synthetic keyword workloads over generated warehouses.

The paper claims that after the lookup product, *"the remaining steps
are all linear in the size of the meta-data"*.  The finbank warehouse is
too small to test that; this module builds end-to-end SODA runs on
synthetic warehouses at arbitrary schema scale:

* :func:`populate_synthetic` loads a small deterministic data volume
  into a generated definition (every table gets a handful of rows whose
  text values embed the table's name tokens, so base-data lookups work);
* :func:`generate_workload` derives keyword queries from the schema's
  own vocabulary (entity labels, attribute labels, mixed multi-entity
  queries);
* :func:`run_scalability_study` measures lookup/tables/total time per
  query across schema scales.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.soda import Soda, SodaConfig
from repro.sqlengine.database import Database
from repro.warehouse.model import WarehouseDefinition
from repro.warehouse.synthetic import SyntheticConfig, generate_definition
from repro.warehouse.warehouse import Warehouse


def populate_synthetic(
    database: Database,
    definition: WarehouseDefinition,
    rows_per_table: int = 5,
    seed: int = 11,
) -> None:
    """Insert deterministic filler rows into every physical table.

    TEXT columns receive values embedding the column name plus a row
    counter, so that the inverted index has realistic tokens; numeric
    columns receive small deterministic values.
    """
    rng = random.Random(seed)
    for table in definition.physical_tables:
        rows = []
        for row_number in range(rows_per_table):
            row = []
            for column in table.columns:
                type_name = column.sql_type.upper()
                if type_name in ("INT", "INTEGER"):
                    row.append(row_number + 1)
                elif type_name in ("REAL", "FLOAT", "DOUBLE"):
                    row.append(float(rng.randrange(1, 1000)))
                elif type_name == "DATE":
                    row.append(None)
                else:
                    row.append(
                        f"{column.name.replace('_', ' ')} value {row_number}"
                    )
            rows.append(tuple(row))
        database.insert_rows(table.name, rows)


def build_synthetic_warehouse(
    config: SyntheticConfig, rows_per_table: int = 5
) -> Warehouse:
    """A fully searchable synthetic warehouse at the given schema scale."""
    definition = generate_definition(config)
    return Warehouse.build(
        definition,
        populate=lambda db: populate_synthetic(
            db, definition, rows_per_table=rows_per_table
        ),
    )


@dataclass(frozen=True)
class SyntheticQuery:
    """One generated keyword query with its provenance."""

    text: str
    kind: str  # 'entity' | 'attribute' | 'mixed'


def generate_workload(
    definition: WarehouseDefinition,
    count: int = 10,
    seed: int = 23,
) -> list:
    """Keyword queries drawn from the schema's own vocabulary."""
    rng = random.Random(seed)
    entity_labels = [
        (entity.label or entity.name.replace("_", " ").lower())
        for entity in definition.logical_entities
    ]
    attribute_labels = [
        attribute
        for entity in definition.logical_entities
        for attribute in entity.attributes
    ]
    queries: list = []
    while len(queries) < count and entity_labels:
        kind = ("entity", "attribute", "mixed")[len(queries) % 3]
        if kind == "entity":
            text = entity_labels[rng.randrange(len(entity_labels))]
        elif kind == "attribute" and attribute_labels:
            text = attribute_labels[rng.randrange(len(attribute_labels))]
        else:
            kind = "mixed"
            first = entity_labels[rng.randrange(len(entity_labels))]
            second = entity_labels[rng.randrange(len(entity_labels))]
            text = f"{first} {second}"
        queries.append(SyntheticQuery(text=text, kind=kind))
    return queries


@dataclass
class ScalePoint:
    """Measurements for one schema scale."""

    factor: float
    tables: int
    triples: int
    queries: int
    answered: int
    mean_lookup_ms: float
    mean_tables_ms: float
    mean_total_ms: float


def run_scalability_study(
    factors=(0.05, 0.1, 0.2),
    queries_per_scale: int = 6,
    rows_per_table: int = 5,
) -> list:
    """Measure SODA analysis time across synthetic schema scales."""
    points: list = []
    for factor in factors:
        config = SyntheticConfig().scaled(factor)
        warehouse = build_synthetic_warehouse(config, rows_per_table)
        soda = Soda(warehouse, SodaConfig())
        workload = generate_workload(warehouse.definition,
                                     count=queries_per_scale)
        lookup_ms: list = []
        tables_ms: list = []
        total_ms: list = []
        answered = 0
        for query in workload:
            result = soda.search(query.text, execute=False)
            lookup_ms.append(result.timings.lookup * 1000)
            tables_ms.append(result.timings.tables * 1000)
            total_ms.append(result.timings.soda_total * 1000)
            if result.statements:
                answered += 1
        points.append(
            ScalePoint(
                factor=factor,
                tables=len(warehouse.definition.physical_tables),
                triples=len(warehouse.graph),
                queries=len(workload),
                answered=answered,
                mean_lookup_ms=sum(lookup_ms) / len(lookup_ms),
                mean_tables_ms=sum(tables_ms) / len(tables_ms),
                mean_total_ms=sum(total_ms) / len(total_ms),
            )
        )
    return points
