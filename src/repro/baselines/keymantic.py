"""Keymantic (Bergamaschi et al. — SIGMOD 2011), simplified.

Keymantic searches databases whose base data is **not** crawlable (the
"Hidden Web"): it only sees metadata — table and column names — plus
external lexical resources.  A keyword query is answered by computing a
similarity matrix between keywords and schema elements and solving the
assignment problem (we use SciPy's Hungarian implementation, as the
original used a Munkres-style algorithm).  Keywords assigned to a table
or column become structure terms; keywords assigned "into" a column
become value predicates.

Reproduced behaviour from the paper's Table 5 discussion:

* no inverted index — "Sara" can only be guessed into some text column;
* partial synonym support via an external dictionary ("(X)" for domain
  ontologies);
* on very wide schemas the assignment confidence collapses — "for
  complex schemas with thousands of columns, Keymantic is not able to
  select the right columns even given all the available metadata"; we
  reproduce this with a width-dependent confidence threshold.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.baselines.base import BaselineAnswer, KeywordSearchSystem, build_sql
from repro.index.inverted import tokenize_text
from repro.sqlengine.types import SqlType


class Keymantic(KeywordSearchSystem):
    name = "Keymantic"
    features = {
        "base_data": False,  # (NO): no inverted index on the Hidden Web
        "schema": True,
        "inheritance": False,
        "domain_ontology": "partial",  # (X): synonyms via external dictionary
        "predicates": False,
        "aggregates": False,
    }

    #: schemas wider than this dilute the assignment confidence
    wide_schema_columns = 400
    confidence_threshold = 0.45

    def __init__(self, database, inverted=None, synonyms: dict | None = None):
        super().__init__(database, inverted)
        #: term -> schema term it is a synonym of (external dictionary)
        self.synonyms = {k.lower(): v.lower() for k, v in (synonyms or {}).items()}

    # ------------------------------------------------------------------
    def answer(self, text: str) -> BaselineAnswer:
        answer = BaselineAnswer(system=self.name, query_text=text)
        if any(symbol in text for symbol in ("(", ">", "<", "=")):
            answer.supported = False
            answer.note = "operators and aggregates are outside the model"
            return answer

        keywords = self._keyword_groups(text)
        elements = self._schema_elements()
        if not keywords:
            answer.supported = False
            answer.note = "no keywords"
            return answer

        similarity = np.zeros((len(keywords), len(elements)))
        for i, keyword in enumerate(keywords):
            for j, element in enumerate(elements):
                similarity[i, j] = self._similarity(keyword, element)

        rows, cols = linear_sum_assignment(-similarity)
        assignment = list(zip(rows.tolist(), cols.tolist()))
        scores = [similarity[i, j] for i, j in assignment]
        confidence = float(np.mean(scores)) if scores else 0.0

        n_columns = sum(
            len(self.database.catalog.table(name).columns)
            for name in self.database.table_names()
        )
        if n_columns > self.wide_schema_columns:
            confidence *= self.wide_schema_columns / n_columns

        if confidence < self.confidence_threshold:
            answer.supported = False
            answer.note = (
                f"assignment confidence {confidence:.2f} below threshold "
                f"(schema has {n_columns} columns)"
            )
            return answer

        tables: set = set()
        filters: list = []
        for (i, j), score in zip(assignment, scores):
            if score <= 0.0:
                continue
            keyword = keywords[i]
            kind, table, column = elements[j]
            tables.add(table)
            if kind == "value":
                filters.append((table, column, keyword))

        if not tables:
            answer.note = "no schema element received a keyword"
            return answer
        joins = self.join_tree(sorted(tables))
        if joins is None:
            answer.note = "matched schema elements cannot be joined"
            return answer
        involved = set(tables)
        for t1, __, t2, __ in joins:
            involved.add(t1)
            involved.add(t2)
        answer.sqls.append(build_sql(sorted(involved), joins, filters))
        return answer

    # ------------------------------------------------------------------
    def _keyword_groups(self, text: str) -> list:
        """Bigrams that look like schema terms stay together, else words."""
        words = tokenize_text(text)
        groups: list = []
        position = 0
        while position < len(words):
            if position + 1 < len(words):
                bigram = " ".join(words[position:position + 2])
                if self._known_term(bigram):
                    groups.append(bigram)
                    position += 2
                    continue
            groups.append(words[position])
            position += 1
        return groups

    def _known_term(self, term: str) -> bool:
        if term in self.synonyms:
            return True
        wanted = "_".join(term.split())
        for name in self.database.table_names():
            if wanted in (name, name.rstrip("s")):
                return True
            table = self.database.catalog.table(name)
            for column in table.columns:
                if column.name == wanted:
                    return True
        return False

    def _schema_elements(self) -> list:
        """(kind, table, column) triples: structure terms and value slots."""
        elements: list = []
        for name in self.database.table_names():
            table = self.database.catalog.table(name)
            elements.append(("table", name, ""))
            for column in table.columns:
                elements.append(("column", name, column.name))
                if column.sql_type is SqlType.TEXT:
                    elements.append(("value", name, column.name))
        return elements

    def _similarity(self, keyword: str, element: tuple) -> float:
        kind, table, column = element
        target = column or table
        resolved = self.synonyms.get(keyword, keyword)
        score = _token_similarity(resolved, target)
        if kind == "table":
            score = max(score, _token_similarity(resolved, table))
        if kind == "value":
            # without base data, any text column is a weak value candidate
            score = max(score * 0.5, 0.15)
        return score


def _token_similarity(term: str, name: str) -> float:
    """Jaccard over word tokens with plural/underscore normalisation."""
    left = {token.rstrip("s") for token in tokenize_text(term)}
    right = {token.rstrip("s") for token in tokenize_text(name)}
    if not left or not right:
        return 0.0
    return len(left & right) / len(left | right)
